#!/usr/bin/env python
"""Regenerate the ``scenarios/`` corpus from the legacy spec builders.

Each of the six scripted chaos scenarios is serialised to
``scenarios/<name>.json`` with its expectations pinned from a fresh run
(pass verdict, failed-invariant names, payload fingerprint).  Run this
after any intentional simulator behaviour change, then review the
fingerprint diffs like any other golden-file update:

    PYTHONPATH=src python scripts/regen_scenarios.py [corpus-dir]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.chaos import pin_expectations, run_spec, save_scenario  # noqa: E402
from repro.chaos.legacy import corpus_specs  # noqa: E402


def main(root: str) -> int:
    for name, spec in corpus_specs().items():
        outcome = run_spec(spec, verify_determinism=True, sanitize=True)
        pinned = pin_expectations(spec, outcome)
        path = save_scenario(pinned, root)
        status = "pass" if outcome.passed else "FAIL"
        print(f"{name:16} {status}  {outcome.fingerprint[:16]}  -> {path}")
    return 0


if __name__ == "__main__":
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(__file__), "..", "scenarios"
    )
    raise SystemExit(main(os.path.normpath(root)))
