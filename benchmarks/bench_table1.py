"""Table 1: memory write throughput, Normal vs No-lock (5 MB file).

Paper:  filer 115 -> 140 MBps, Linux 138 -> 147 MBps.  Shape: filer
slower under the stock lock, gains more from the fix, gap narrows.
"""


def test_table1_memory_write_throughput(run_experiment):
    run_experiment("tab1")
