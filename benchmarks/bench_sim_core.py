"""Events-per-second micro-benchmark for the simulation core.

The sweeps dispatch ~10^8 events per `run --all`, so the event loop's
per-event overhead bounds everything else.  This bench drives the loop
with the repo's dominant event shape — short self-rescheduling callback
chains (task steps, CPU slot completions, frame deliveries) — and
reports events/sec in ``extra_info`` so future PRs can show sim-core
speedups as a number, not a feeling.

``_SeedSimulator`` below is a faithful replica of the seed event loop
(an :class:`EventHandle` allocated per event, per-event ``until`` and
``cancelled`` checks) kept as the fixed baseline; the fast-lane test
asserts the current core beats it.
"""

import heapq
import time

N_CHAINS = 64
EVENTS_PER_CHAIN = 2_000
TOTAL_EVENTS = N_CHAINS * EVENTS_PER_CHAIN


class _SeedHandle:
    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time, fn, args):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False


class _SeedSimulator:
    """The seed repo's event loop, verbatim in behaviour."""

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._queue = []

    def call_after(self, delay, fn, *args):  # seed spelling: schedule()
        handle = _SeedHandle(self._now + delay, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, (handle.time, self._seq, handle))
        return handle

    def run(self, until=None):
        while self._queue:
            time_, _seq, handle = self._queue[0]
            if until is not None and time_ > until:
                break
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = time_
            handle.fn(*handle.args)
        if until is not None and self._now < until:
            self._now = until
        return self._now


def churn(sim):
    """Run N_CHAINS interleaved self-rescheduling callback chains."""
    left = [EVENTS_PER_CHAIN] * N_CHAINS

    def tick(i):
        left[i] -= 1
        if left[i]:
            sim.call_after(10 + i, tick, i)

    for i in range(N_CHAINS):
        sim.call_after(i, tick, i)
    sim.run()
    assert not any(left)


def test_fast_lane_events_per_second(benchmark, capsys):
    from repro.sim import Simulator

    def body():
        sim = Simulator()
        churn(sim)
        return sim

    sim = benchmark.pedantic(body, rounds=3, iterations=1)
    assert sim.events_processed == TOTAL_EVENTS
    fast_rate = TOTAL_EVENTS / benchmark.stats.stats.min

    # Baseline: best of the same number of timed seed-loop runs.
    seed_elapsed = min(
        _timed(lambda: churn(_SeedSimulator())) for _ in range(3)
    )
    seed_rate = TOTAL_EVENTS / seed_elapsed

    benchmark.extra_info["events_per_second"] = round(fast_rate)
    benchmark.extra_info["seed_events_per_second"] = round(seed_rate)
    benchmark.extra_info["speedup_vs_seed"] = round(fast_rate / seed_rate, 2)
    with capsys.disabled():
        print(
            f"\nsim core: {fast_rate:,.0f} ev/s "
            f"(seed loop {seed_rate:,.0f} ev/s, "
            f"{fast_rate / seed_rate:.2f}x)"
        )
    assert fast_rate > 1.3 * seed_rate


def test_task_stepping_events_per_second(benchmark, capsys):
    """The task layer on top: generator steps through the fast lane."""
    from repro.sim import Simulator

    def body():
        sim = Simulator()

        def worker():
            for _ in range(EVENTS_PER_CHAIN // 2):
                yield sim.timeout(10)

        for i in range(N_CHAINS):
            sim.spawn(worker(), name=f"w{i}", daemon=True)
        sim.run()
        return sim

    sim = benchmark.pedantic(body, rounds=3, iterations=1)
    rate = sim.events_processed / benchmark.stats.stats.min
    benchmark.extra_info["events_per_second"] = round(rate)
    with capsys.disabled():
        print(f"\ntask stepping: {rate:,.0f} ev/s")


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
