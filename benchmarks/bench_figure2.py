"""Figure 2: periodic 19 ms write() latency spikes (stock client, 40 MB).

Paper shape: >19 ms spikes roughly every 85-100 calls (MAX_REQUEST_SOFT
flushes), ~1.4% of calls, inflating the mean several-fold.
"""


def test_figure2_latency_spikes(run_experiment):
    run_experiment("fig2")
