"""Figure 5: latency histograms with the BKL held over sends (30 MB).

Paper shape: the faster server (filer) yields the slower memory writes —
fatter latency tail, equal minimum; a 100 Mbps server is faster still;
lock contention is the cause.
"""


def test_figure5_fast_server_slow_writes(run_experiment):
    run_experiment("fig5")
