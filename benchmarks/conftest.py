"""Shared benchmark plumbing.

Each paper artefact gets one benchmark that runs the corresponding
experiment end to end (deterministic, so a single round is exact),
asserts every shape criterion, prints the paper-vs-measured report, and
stores headline numbers in ``benchmark.extra_info``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run one experiment under pytest-benchmark and grade it."""

    def runner(experiment_id: str, scale: float = 4.0, quick: bool = False):
        from repro.experiments import get_experiment

        def body():
            return get_experiment(experiment_id).run(scale=scale, quick=quick)

        result = benchmark.pedantic(body, rounds=1, iterations=1)
        benchmark.extra_info["experiment"] = experiment_id
        benchmark.extra_info["criteria_passed"] = sum(
            c.passed for c in result.comparison.checks
        )
        benchmark.extra_info["criteria_total"] = len(result.comparison.checks)
        with capsys.disabled():
            print()
            print(result.render())
        failed = result.comparison.failed()
        assert not failed, "failed criteria:\n" + "\n".join(c.row() for c in failed)
        return result

    return runner
