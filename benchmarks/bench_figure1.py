"""Figure 1: Local vs NFS write throughput, stock client (25-450 MB sweep).

Paper shape: local ext2 peaks near memcpy speed and collapses past
client RAM; both NFS curves sit flat at network/server throughput
(~38 MBps filer, ~26 MBps knfsd).  Run at 1/4 memory scale by default
(DESIGN.md §5).
"""


def test_figure1_local_vs_nfs_stock(run_experiment):
    run_experiment("fig1", scale=4.0)
