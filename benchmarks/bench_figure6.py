"""Figure 6: histograms after releasing the BKL around sock_sendmsg.

Paper shape: means drop (149->127 us filer, 113->105 us Linux), max and
jitter clearly reduced, minimum unchanged — the variation was lock wait.
"""


def test_figure6_lock_fix_histograms(run_experiment):
    run_experiment("fig6")
