"""The abstract's headline: "Memory write throughput to NFS files
improves by more than a factor of three."

Runs the before/after pair (stock 2.4.4 vs fully patched client, 30 MB
file on the filer) and asserts the 3x claim, with the per-fix breakdown
printed alongside.
"""

from repro.bench import TestBed
from repro.nfsclient import VARIANT_ORDER
from repro.units import MB

FILE_MB = 30


def run_progression():
    out = {}
    for variant in VARIANT_ORDER:
        bed = TestBed(target="netapp", client=variant)
        result = bed.run_sequential_write(FILE_MB * MB)
        out[variant] = result.write_mbps
    return out


def test_headline_threefold_improvement(benchmark, capsys):
    progression = benchmark.pedantic(run_progression, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nclient progression, memory-write MBps (30 MB vs filer):")
        for variant in VARIANT_ORDER:
            print(f"  {variant:10s} {progression[variant]:7.1f}")
        improvement = progression["nolock"] / progression["stock"]
        print(f"  improvement {improvement:.1f}x (paper: 'more than a factor of three')")
    assert progression["nolock"] > 3 * progression["stock"]
    # And each stage contributes in the paper's order for this size.
    assert progression["noflush"] > progression["stock"]
    assert progression["hashtable"] > progression["noflush"]
    assert progression["nolock"] > progression["hashtable"]
