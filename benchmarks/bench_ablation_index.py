"""Ablation: sorted list vs hash table as outstanding requests grow.

Isolates the paper's §3.4 patch: identical clients except for the
request index, at increasing file sizes (more outstanding requests).
The list client's mean latency must grow with file size while the hash
client's stays flat, and the gap must widen.
"""

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.units import MB, to_us

SIZES_MB = (10, 30, 60)

LIST_CLIENT = NfsClientConfig(eager_flush_limits=False, hashtable_index=False)
HASH_CLIENT = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def run_ablation():
    means = {"list": [], "hash": []}
    for label, cfg in (("list", LIST_CLIENT), ("hash", HASH_CLIENT)):
        for size in SIZES_MB:
            bed = TestBed(target="netapp", client=cfg)
            result = bed.run_sequential_write(size * MB)
            means[label].append(to_us(result.trace.mean_ns(skip_first=1)))
    return means


def test_ablation_request_index(benchmark, capsys):
    means = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nindex ablation, mean write() latency (us) by file size:")
        print(f"  sizes: {SIZES_MB} MB")
        print(f"  list:  {[f'{v:.0f}' for v in means['list']]}")
        print(f"  hash:  {[f'{v:.0f}' for v in means['hash']]}")
    list_means, hash_means = means["list"], means["hash"]
    # List latency grows with outstanding requests (bounded above by the
    # drain equilibrium — see EXPERIMENTS.md fig3 notes)...
    assert list_means[-1] > 1.35 * list_means[0]
    # ...hash latency does not...
    assert hash_means[-1] < 1.2 * hash_means[0]
    # ...and the gap widens monotonically.
    gaps = [l - h for l, h in zip(list_means, hash_means)]
    assert gaps == sorted(gaps)
