"""Ablation: RPC slot-table size and the slow-server paradox.

The transport's bounded window is what turns a fast server into writer
overhead (inline sends + rpciod lock traffic).  Sweeping the slot count
shows the mechanism: more slots = more concurrent wire work per unit
time = more contention with the writer under the stock lock.
"""

from dataclasses import replace

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.units import MB

FILE_MB = 10
BASE = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def run_sweep():
    out = {}
    for slots in (2, 8, 16, 32):
        bed = TestBed(target="netapp", client=replace(BASE, rpc_slots=slots))
        result = bed.run_sequential_write(FILE_MB * MB)
        out[slots] = {
            "write_mbps": result.write_mbps,
            "flush_mbps": result.flush_mbps,
            "bkl_wait_ms": bed.nfs.bkl.stats.total_wait_ns / 1e6,
        }
    return out


def test_ablation_transport_window(benchmark, capsys):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nslot-table sweep (10 MB vs filer, stock lock):")
        for slots, row in sorted(sweep.items()):
            print(
                f"  slots={slots:2d} write {row['write_mbps']:6.1f} MBps  "
                f"flush {row['flush_mbps']:5.1f} MBps  "
                f"bkl wait {row['bkl_wait_ms']:6.1f} ms"
            )
    # A tiny window strangles the wire (flush throughput suffers)...
    assert sweep[2]["flush_mbps"] < sweep[16]["flush_mbps"]
    # ...while end-to-end (flush) throughput saturates by 16 slots.
    assert sweep[32]["flush_mbps"] <= sweep[16]["flush_mbps"] * 1.1
