"""Figure 3: spikes gone, latency grows (no-flush client, 100 MB).

Paper shape: removing the flush thresholds kills the spikes but the
sorted-list index makes latency climb with outstanding requests; the
profiler blames nfs_find_request/nfs_update_request.
"""


def test_figure3_list_scan_growth(run_experiment):
    run_experiment("fig3")
