"""Ablation: §3.4's suggested further improvement — one index search.

"A slight additional improvement here might occur if the search for
incompatible requests was combined with the second search for a
matching request (in nfs_updatepage)."  The `single_search` knob does
exactly that; the gain should be small but real for the list index.
"""

from dataclasses import replace

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.units import MB, to_us

FILE_MB = 30
LIST_CLIENT = NfsClientConfig(eager_flush_limits=False, hashtable_index=False)


def run_pair():
    out = {}
    for label, single in (("double", False), ("single", True)):
        bed = TestBed(
            target="netapp", client=replace(LIST_CLIENT, single_search=single)
        )
        result = bed.run_sequential_write(FILE_MB * MB)
        out[label] = {
            "mean_us": to_us(result.trace.mean_ns(skip_first=1)),
            "write_mbps": result.write_mbps,
            "searches": bed.nfs.index.searches,
        }
    return out


def test_ablation_single_search(benchmark, capsys):
    pair = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nsingle-search ablation (30 MB vs filer, list index):")
        for label, row in pair.items():
            print(
                f"  {label:6s} mean {row['mean_us']:7.1f} us  "
                f"write {row['write_mbps']:6.1f} MBps  "
                f"index searches {row['searches']}"
            )
    assert pair["single"]["searches"] < pair["double"]["searches"]
    # "A slight additional improvement": faster, but not transformative.
    assert pair["single"]["mean_us"] < pair["double"]["mean_us"]
    assert pair["single"]["mean_us"] > 0.5 * pair["double"]["mean_us"]
