"""Figure 4: hash-table index — flat latency, checkpoint gap (100 MB).

Paper shape: latency flat at the stock client's spike-free level;
sustained memory throughput ~4x the stock client; a few-hundred-call
window of reduced jitter coincides with a filer WAFL checkpoint.
"""


def test_figure4_hashtable_flat_latency(run_experiment):
    run_experiment("fig4")
