"""Ablation: send-path locking x CPU count.

§3.5 expects the BKL cost to be an SMP phenomenon: on one CPU the writer
and the daemons time-share anyway, so releasing the lock around
sock_sendmsg buys much less than on two CPUs.
"""

from dataclasses import replace

from repro.bench import TestBed
from repro.config import ClientHwConfig, NfsClientConfig
from repro.units import MB

FILE_MB = 10

HASH = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)
NOLOCK = replace(HASH, release_bkl_for_send=True)


def run_matrix():
    out = {}
    for ncpus in (1, 2):
        hw = replace(ClientHwConfig(), ncpus=ncpus)
        for label, cfg in (("bkl", HASH), ("nolock", NOLOCK)):
            bed = TestBed(target="netapp", client=cfg, hw=hw)
            result = bed.run_sequential_write(FILE_MB * MB)
            out[(ncpus, label)] = result.write_mbps
    return out


def test_ablation_lock_smp(benchmark, capsys):
    matrix = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nlock ablation, memory write MBps (10 MB file vs filer):")
        for (ncpus, label), mbps in sorted(matrix.items()):
            print(f"  {ncpus} cpu {label:7s} {mbps:6.1f}")
    # The fix helps on SMP...
    smp_gain = matrix[(2, "nolock")] / matrix[(2, "bkl")]
    assert smp_gain > 1.1
    # ...more than it helps on a uniprocessor.
    up_gain = matrix[(1, "nolock")] / matrix[(1, "bkl")]
    assert smp_gain > up_gain
    # And 2 CPUs beat 1 once the lock is out of the way.
    assert matrix[(2, "nolock")] > matrix[(1, "nolock")]
