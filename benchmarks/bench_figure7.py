"""Figure 7: Local vs NFS throughput, enhanced client (25-450 MB sweep).

Paper shape: NFS memory writes near local speed while memory lasts and
nearly equal on both servers; the filer sustains high throughput past
client RAM (NVRAM as page-cache extension); far beyond memory the
ordering is filer > Linux server > local disk.
"""


def test_figure7_enhanced_client_sweep(run_experiment):
    run_experiment("fig7", scale=4.0)
