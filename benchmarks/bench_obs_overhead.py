"""Observability overhead: disabled must be free, enabled must be pure.

The disabled path costs one attribute load plus an ``if obs.enabled``
boolean per instrumentation point — this bench measures both modes on
the same workload and records the ratio in ``extra_info`` so future PRs
can see instrumentation creep as a number.

Correctness is asserted the way the simulator can prove it exactly:
the observed run's event count and full write()-latency series are
bit-identical to the unobserved run's (the pure-observer contract);
wall-clock overhead is reported, not gated, because CI machines jitter.
"""

import hashlib
import time

from repro.units import MIB

FILE_BYTES = 4 * MIB


def _run(observe: bool):
    from repro.bench.runner import TestBed

    bed = TestBed(target="linux", client="stock", observe=observe)
    result = bed.run_sequential_write(FILE_BYTES)
    series = ",".join(str(v) for v in result.trace.latencies_ns).encode()
    return bed, (
        bed.sim.events_processed,
        hashlib.sha256(series).hexdigest(),
        result.flush_elapsed_ns,
    )


def test_scoped_key_cache_reuses_interned_keys():
    """Fleet-scoped facades must hit their key cache, not rebuild keys."""
    from repro.obs.core import Observability, ScopedObservability
    from repro.sim import Simulator

    obs = Observability(Simulator(), enabled=True)
    scoped = ScopedObservability(obs, "client3")
    for _ in range(3):
        scoped.count("rpc/retransmits")
    ((key, metric),) = list(obs.metrics.items())
    assert key == "client3/rpc/retransmits"
    assert metric.value == 3
    # The cached key IS the registered key object (no per-call copies).
    assert scoped._keys["rpc/retransmits"] is key


def test_obs_overhead(benchmark, capsys):
    bed, fp_off = benchmark.pedantic(
        lambda: _run(observe=False), rounds=3, iterations=1
    )
    off_elapsed = benchmark.stats.stats.min

    on_elapsed = None
    for _ in range(3):
        started = time.perf_counter()
        bed_on, fp_on = _run(observe=True)
        elapsed = time.perf_counter() - started
        on_elapsed = elapsed if on_elapsed is None else min(on_elapsed, elapsed)

    # The pure-observer contract: identical event count, identical
    # latency series, identical simulated timings.
    assert fp_on == fp_off
    assert bed_on.obs.enabled and not bed.obs.enabled
    assert len(bed_on.obs.metrics) > 20

    # Key interning: every registered metric key must be the interned
    # (single-copy) string — scoped facades cache their prefixed keys,
    # so per-call string building is gone from the instrument hot path.
    import sys

    for key, _metric in bed_on.obs.metrics.items():
        assert key is sys.intern(key), f"metric key {key!r} not interned"

    overhead = on_elapsed / off_elapsed
    benchmark.extra_info["events"] = fp_off[0]
    benchmark.extra_info["events_per_second"] = round(fp_off[0] / off_elapsed)
    benchmark.extra_info["observed_overhead_x"] = round(overhead, 3)
    with capsys.disabled():
        print(
            f"\nobs overhead: off {off_elapsed * 1e3:.0f} ms, "
            f"on {on_elapsed * 1e3:.0f} ms ({overhead:.2f}x), "
            f"fingerprints identical, {len(bed_on.obs.metrics)} interned keys"
        )
