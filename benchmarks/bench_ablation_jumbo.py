"""Ablation: jumbo frames (the paper's §3.5 future-work hypothesis).

"Jumbo packets ... may help by reducing the need for fragmenting and
reassembling large RPC requests in the IP layer."  With a 9000-byte MTU
an 8 KB WRITE needs one fragment instead of six, cutting the modelled
sock_sendmsg cost and the receive-interrupt load.
"""

from repro.bench import TestBed
from repro.config import NetConfig, NfsClientConfig
from repro.units import MB

FILE_MB = 10
CLIENT = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def run_pair():
    out = {}
    for label, jumbo in (("mtu1500", False), ("jumbo9000", True)):
        bed = TestBed(
            target="netapp", client=CLIENT, net=NetConfig.gigabit(jumbo=jumbo)
        )
        result = bed.run_sequential_write(FILE_MB * MB)
        out[label] = {
            "write_mbps": result.write_mbps,
            "sendmsg_ms": bed.client_host.cpus.time_by_label.get("sock_sendmsg", 0)
            / 1e6,
            # WRITE calls fragment on the way to the server; replies are
            # single-fragment either way.
            "rx_frags": bed.server.host.rx_fragments,
        }
    return out


def test_ablation_jumbo_frames(benchmark, capsys):
    pair = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    with capsys.disabled():
        print("\njumbo-frame ablation (10 MB vs filer):")
        for label, row in pair.items():
            print(
                f"  {label:10s} write {row['write_mbps']:6.1f} MBps  "
                f"sendmsg CPU {row['sendmsg_ms']:6.1f} ms  "
                f"rx fragments {row['rx_frags']}"
            )
    assert pair["jumbo9000"]["sendmsg_ms"] < 0.6 * pair["mtu1500"]["sendmsg_ms"]
    assert pair["jumbo9000"]["rx_frags"] < pair["mtu1500"]["rx_frags"]
    assert pair["jumbo9000"]["write_mbps"] >= pair["mtu1500"]["write_mbps"]
