"""Fleet benchmark: aggregate throughput as the client count grows.

The multi-client corollary of the paper's central constraint: "NFS
memory write throughput remains constrained to network/server
throughput" (§3.2).  Runs the full fleet experiment (1-32 clients
against the filer and the knfsd) and additionally times a single
32-client point, recording the aggregate rate and simulator event
throughput in ``extra_info``.
"""

from repro.topology import FleetJobSpec, run_fleet_job
from repro.units import KIB


def test_fleet_experiment(run_experiment):
    run_experiment("fleet", scale=1.0)


def test_fleet_32_clients_saturate_filer(benchmark, capsys):
    spec = FleetJobSpec.homogeneous(32, target="netapp", file_bytes=1024 * KIB)
    point = benchmark.pedantic(
        run_fleet_job, args=(spec,), rounds=1, iterations=1
    )
    benchmark.extra_info["aggregate_mbps"] = round(point.aggregate_mbps, 2)
    benchmark.extra_info["jain"] = round(point.fairness, 4)
    benchmark.extra_info["events"] = point.events_processed
    with capsys.disabled():
        print(
            f"\n32-client fleet: {point.aggregate_mbps:.1f} MBps aggregate, "
            f"Jain {point.fairness:.4f}, "
            f"{point.events_processed} events"
        )
    # The filer's ingest station sets the ceiling, not the client count.
    assert 0.55 * 38.0 <= point.aggregate_mbps <= 1.1 * 38.0
    assert point.fairness >= 0.95
