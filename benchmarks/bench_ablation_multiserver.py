"""Ablation: two mounts, two servers — the paper's future-work claim.

§3.5: "Removing the global kernel lock from the RPC layer will allow a
system with multiple network interfaces to process more than one RPC
request at a time and allow concurrent writes to separate files and to
separate servers from separate client CPUs."  Two writers stream to two
filers through two mounts that share the client's one kernel lock; the
lock-released client must get more aggregate memory-write throughput
out of its two CPUs than the stock one.
"""

from dataclasses import replace

from repro.bench import TestBed
from repro.bench.workloads import run_workload
from repro.config import FilerConfig, NfsClientConfig
from repro.nfsclient import NfsClient
from repro.server import NetappFiler
from repro.units import MB

BYTES_EACH = 4 * MB
HASH = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)
NOLOCK = replace(HASH, release_bkl_for_send=True)


def run_two_servers(cfg):
    bed = TestBed(target="netapp", client=cfg)
    second_server = NetappFiler(
        bed.sim, bed.switch, bed.net, FilerConfig(name="netapp-f85-b")
    )
    second_mount = NfsClient(
        bed.client_host,
        bed.pagecache,
        server=second_server.name,
        behavior=cfg,
        client_port=701,
        bkl=bed.nfs.bkl,
    )
    start = bed.sim.now

    def writer(client, name):
        file = yield from client.open_new(name)
        remaining = BYTES_EACH
        while remaining > 0:
            chunk = min(8192, remaining)
            yield from bed.syscalls.write(file, chunk)
            remaining -= chunk

    run_workload(
        bed,
        [
            ("w1", writer(bed.nfs, "a")),
            ("w2", writer(second_mount, "b")),
        ],
    )
    elapsed = bed.sim.now - start
    return 2 * BYTES_EACH / (elapsed / 1e9) / 1e6


def test_ablation_two_servers(benchmark, capsys):
    def body():
        return {"bkl": run_two_servers(HASH), "nolock": run_two_servers(NOLOCK)}

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    with capsys.disabled():
        print("\ntwo mounts / two filers, aggregate memory-write MBps:")
        for label, mbps in result.items():
            print(f"  {label:7s} {mbps:7.1f}")
    assert result["nolock"] > result["bkl"] * 1.05
