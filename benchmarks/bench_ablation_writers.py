"""Ablation: concurrent writer scaling on the SMP client.

§3.5: "During a test with a single application writer thread contending
with a single flusher thread, we find less than ideal scaling. ... We
suspect that faster servers will exhibit even worse performance on SMP
Linux clients until this issue is properly addressed."  Multiple writer
processes sharing one client quantify that: aggregate memory-write
throughput must rise sub-linearly, and the stock lock must hurt more as
writers are added.
"""

from dataclasses import replace

from repro.bench import TestBed
from repro.bench.workloads import sequential_writers
from repro.config import NfsClientConfig
from repro.units import MB

BYTES_EACH = 4 * MB
HASH = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)
NOLOCK = replace(HASH, release_bkl_for_send=True)


def run_scaling():
    out = {}
    for label, cfg in (("bkl", HASH), ("nolock", NOLOCK)):
        for nwriters in (1, 2, 4):
            bed = TestBed(target="netapp", client=cfg)
            # close=False: measure the memory-write phase, not the drain.
            result = sequential_writers(bed, nwriters, BYTES_EACH, close=False)
            out[(label, nwriters)] = result.total_mbps
    return out


def test_ablation_writer_scaling(benchmark, capsys):
    scaling = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nwriter scaling, aggregate memory-write MBps (filer):")
        for (label, n), mbps in sorted(scaling.items()):
            print(f"  {label:7s} x{n}  {mbps:7.1f}")
    for label in ("bkl", "nolock"):
        # More writers, more aggregate work absorbed...
        assert scaling[(label, 2)] > scaling[(label, 1)] * 0.9
        # ...but far from linear scaling.
        assert scaling[(label, 4)] < scaling[(label, 1)] * 3
    # The lock fix wins at every writer count.
    for n in (1, 2, 4):
        assert scaling[("nolock", n)] > scaling[("bkl", n)]
