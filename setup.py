"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; keeping a setup.py lets ``pip install -e .``
fall back to ``setup.py develop``, which works without it.
"""

from setuptools import setup

setup()
