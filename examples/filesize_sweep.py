#!/usr/bin/env python3
"""File-size sweep: the Figure 1 / Figure 7 curves as ASCII plots.

Sweeps file sizes across the client's memory boundary for local ext2,
the filer and the Linux NFS server, with the stock and the enhanced
client, and plots write-phase throughput.  Shows the paper's headline
picture: the enhanced client writes NFS files at memory speed until RAM
runs out, and the filer's NVRAM stretches that plateau further.

Run:  python examples/filesize_sweep.py [scale]   (default memory scale 8)
"""

import sys

from repro import TestBed
from repro.config import FilerConfig
from repro.experiments import scaled_configs
from repro.units import MB


def sweep(client, sizes_mb, hw, filer_cfg):
    curves = {}
    for target in ("local", "netapp", "linux"):
        row = []
        for size in sizes_mb:
            bed = TestBed(target=target, client=client, hw=hw, filer_config=filer_cfg)
            row.append(bed.run_sequential_write(size * MB).write_mbps)
        curves[target] = row
    return curves


def plot(curves, sizes_mb, height=10):
    peak = max(max(row) for row in curves.values())
    symbols = {"local": "L", "netapp": "F", "linux": "N"}
    lines = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        cells = []
        for i in range(len(sizes_mb)):
            cell = " "
            for target, symbol in symbols.items():
                if curves[target][i] >= threshold:
                    cell = symbol if cell == " " else "*"
            cells.append(cell)
        lines.append(f"{peak * level / height:7.0f} |" + " ".join(cells))
    lines.append(" " * 8 + "+" + "-" * (2 * len(sizes_mb)))
    lines.append(" " * 9 + " ".join(f"{s:<2d}"[0] for s in sizes_mb))
    lines.append("MBps vs file size (MB); L=local ext2, F=filer, N=linux nfsd, *=overlap")
    return "\n".join(lines)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 8.0
    hw, filer_cfg = scaled_configs(scale)
    limit_mb = hw.dirty_limit_bytes / 1e6
    sizes_mb = sorted(
        {max(2, round(limit_mb * f)) for f in (0.2, 0.5, 0.8, 1.1, 1.4, 1.8, 2.4)}
    )
    print(f"client RAM scaled 1/{scale:g}: dirty limit {limit_mb:.0f} MB, "
          f"filer NVRAM {filer_cfg.nvram_bytes / 1e6:.0f} MB")
    for client, figure in (("stock", "Figure 1"), ("enhanced", "Figure 7")):
        print(f"\n=== {figure}: {client} client")
        curves = sweep(client, sizes_mb, hw, filer_cfg)
        print(plot(curves, sizes_mb))
        for target in ("local", "netapp", "linux"):
            row = " ".join(f"{v:6.1f}" for v in curves[target])
            print(f"  {target:7s} {row}")


if __name__ == "__main__":
    main()
