#!/usr/bin/env python3
"""Why the paper benchmarks writes, not reads (§2.3).

"Client O/S caching moderates the performance of application read
requests on the client; writes reflect network efficiencies and
latencies more directly."  This example quantifies that: cached reads
run at memory speed regardless of the server, cold reads ride the
read-ahead pipeline, while writes always face the wire sooner or later.

Run:  python examples/read_vs_write.py
"""

from repro import TestBed
from repro.config import NfsClientConfig
from repro.units import MB

FILE_MB = 8
LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True,
                       release_bkl_for_send=True)


def measure(target: str):
    bed = TestBed(target=target, client=LAZY)
    out = {}

    def body():
        file = yield from bed.nfs.open_new("f")
        # Write phase.
        start = bed.sim.now
        remaining = FILE_MB * MB
        while remaining:
            chunk = min(8192, remaining)
            yield from bed.syscalls.write(file, chunk)
            remaining -= chunk
        out["write"] = FILE_MB * MB / ((bed.sim.now - start) / 1e9)
        yield from bed.syscalls.fsync(file)
        out["flush"] = FILE_MB * MB / ((bed.sim.now - start) / 1e9)

        # Warm read: everything still in the client page cache.
        file.pos = 0
        start = bed.sim.now
        while (yield from bed.syscalls.read(file, 8192)):
            pass
        out["warm read"] = FILE_MB * MB / ((bed.sim.now - start) / 1e9)

        # Cold read: evict, fetch over the wire with read-ahead.
        file.cached_pages.clear()
        file.pos = 0
        start = bed.sim.now
        while (yield from bed.syscalls.read(file, 8192)):
            pass
        out["cold read"] = FILE_MB * MB / ((bed.sim.now - start) / 1e9)
        out["read rpcs"] = bed.nfs.stats.reads_sent

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    if task.error:
        raise task.error
    return out


def main() -> None:
    print(f"{FILE_MB} MB file, 8 KB calls, enhanced client\n")
    print(f"{'':12s} {'write':>9s} {'w+flush':>9s} {'warm rd':>9s} {'cold rd':>9s}")
    for target in ("netapp", "linux", "linux-100"):
        out = measure(target)
        print(f"{target:12s} "
              f"{out['write'] / 1e6:8.1f}M {out['flush'] / 1e6:8.1f}M "
              f"{out['warm read'] / 1e6:8.1f}M {out['cold read'] / 1e6:8.1f}M")
    print("\nWarm reads never touch the wire (identical on every server);"
          "\ncold reads ride read-ahead at near wire speed; writes and"
          "\nespecially flushes expose the server's real throughput —"
          "\nwhich is why the paper's benchmark writes (§2.3).")


if __name__ == "__main__":
    main()
