#!/usr/bin/env python3
"""Why the paper benchmarks writes, not reads (§2.3).

"Client O/S caching moderates the performance of application read
requests on the client; writes reflect network efficiencies and
latencies more directly."  This example quantifies that: cached reads
run at memory speed regardless of the server, cold reads ride the
read-ahead pipeline, while writes always face the wire sooner or later.

The four-phase measurement lives in the registry
(``repro.bench.workloads.ReadVsWriteWorkload``); this file is a thin
wrapper that runs the registered workload per target and tabulates the
throughputs it reports.

Run:  python examples/read_vs_write.py
"""

from repro import TestBed
from repro.bench import get_workload
from repro.bench.workloads import client_workload_body, run_workload
from repro.config import NfsClientConfig
from repro.units import MB

FILE_MB = 8
LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True,
                       release_bkl_for_send=True)


def measure(target: str):
    bed = TestBed(target=target, client=LAZY)
    workload = get_workload("read-vs-write", {"file_bytes": FILE_MB * MB})
    tasks = run_workload(
        bed, [("read-vs-write", client_workload_body(bed, workload))]
    )
    _start, _end, outcome = tasks[0].result
    return outcome.extra


def main() -> None:
    print(f"{FILE_MB} MB file, 8 KB calls, enhanced client\n")
    print(f"{'':12s} {'write':>9s} {'w+flush':>9s} {'warm rd':>9s} {'cold rd':>9s}")
    for target in ("netapp", "linux", "linux-100"):
        out = measure(target)
        print(f"{target:12s} "
              f"{out['write_bps'] / 1e6:8.1f}M {out['flush_bps'] / 1e6:8.1f}M "
              f"{out['warm_read_bps'] / 1e6:8.1f}M "
              f"{out['cold_read_bps'] / 1e6:8.1f}M")
    print("\nWarm reads never touch the wire (identical on every server);"
          "\ncold reads ride read-ahead at near wire speed; writes and"
          "\nespecially flushes expose the server's real throughput —"
          "\nwhich is why the paper's benchmark writes (§2.3).")


if __name__ == "__main__":
    main()
