#!/usr/bin/env python3
"""Database-style workload: small transactions committed with fsync().

The paper's introduction motivates NFS client performance with
"complex corporate applications such as database and mail services" —
workloads that require data permanence *before* the write returns
(§3.6).  This example drives the registered ``database-fsync``
workload over NFS: each commit appends a few KB and fsync()s.  Against
the filer, NVRAM makes the COMMIT-free FILE_SYNC path fast; against
the Linux server each fsync turns into WRITE+COMMIT and a real disk
write.

The workload body itself lives in the registry
(``repro.bench.workloads.DatabaseFsyncWorkload``) so fleets, chaos
scenarios, and open-loop arrival mixes run the exact same generator;
this file is a thin wrapper that runs it on a single bed and prints
the paper's comparison.

Run:  python examples/database_fsync.py
"""

from repro import TestBed
from repro.bench import get_workload
from repro.bench.workloads import client_workload_body, run_workload
from repro.units import to_us

TRANSACTIONS = 400
RECORD_BYTES = 4096


def run_transaction_log(target: str):
    bed = TestBed(target=target, client="enhanced")
    workload = get_workload(
        "database-fsync",
        {"transactions": TRANSACTIONS, "record_bytes": RECORD_BYTES},
    )
    tasks = run_workload(
        bed, [("txlog", client_workload_body(bed, workload))]
    )
    _start, _end, outcome = tasks[0].result
    return bed, outcome


def main() -> None:
    print(f"{TRANSACTIONS} transactions, {RECORD_BYTES} B each, "
          f"fsync() after every commit\n")
    results = {}
    for target in ("netapp", "linux", "local"):
        bed, outcome = run_transaction_log(target)
        total_s = bed.sim.now / 1e9
        tps = outcome.ops / total_s
        results[target] = tps
        commits = outcome.trace
        commits_sent = outcome.extra.get("commits_sent", 0)
        print(f"{target:8s} {tps:8.0f} tx/s   "
              f"commit latency mean {to_us(commits.mean_ns()):7.1f} us  "
              f"p-max {to_us(commits.max_ns()):8.1f} us   "
              f"COMMIT RPCs: {commits_sent}")
    print("\nThe filer acknowledges WRITEs FILE_SYNC from NVRAM - no COMMIT,"
          "\nno disk wait - so synchronous transaction commits run at network"
          "\nlatency. The Linux server pays a COMMIT round trip plus a disk"
          "\nwrite per transaction ('where applications require data"
          "\npermanence before a write() returns, the filer performs better').")
    assert results["netapp"] > results["linux"]


if __name__ == "__main__":
    main()
