#!/usr/bin/env python3
"""Database-style workload: small transactions committed with fsync().

The paper's introduction motivates NFS client performance with
"complex corporate applications such as database and mail services" —
workloads that require data permanence *before* the write returns
(§3.6).  This example drives a transaction log over NFS: each commit
appends a few KB and fsync()s.  Against the filer, NVRAM makes the
COMMIT-free FILE_SYNC path fast; against the Linux server each fsync
turns into WRITE+COMMIT and a real disk write.

Run:  python examples/database_fsync.py
"""

from repro import TestBed
from repro.bench import LatencyTrace
from repro.units import MB, to_us

TRANSACTIONS = 400
RECORD_BYTES = 4096


def run_transaction_log(target: str):
    bed = TestBed(target=target, client="enhanced")
    commit_latency = LatencyTrace()

    def workload():
        file = yield from bed.open_file("txlog")
        for _tx in range(TRANSACTIONS):
            yield from bed.syscalls.write(file, RECORD_BYTES)
            start = bed.sim.now
            yield from bed.syscalls.fsync(file)
            commit_latency.record(start, bed.sim.now)
        yield from bed.syscalls.close(file)

    task = bed.sim.spawn(workload())
    bed.sim.run_until(lambda: task.done)
    if task.error:
        raise task.error
    return bed, commit_latency


def main() -> None:
    print(f"{TRANSACTIONS} transactions, {RECORD_BYTES} B each, "
          f"fsync() after every commit\n")
    results = {}
    for target in ("netapp", "linux", "local"):
        bed, commits = run_transaction_log(target)
        total_s = bed.sim.now / 1e9
        tps = TRANSACTIONS / total_s
        results[target] = tps
        commits_sent = bed.nfs.stats.commits_sent if bed.nfs else "-"
        print(f"{target:8s} {tps:8.0f} tx/s   "
              f"commit latency mean {to_us(commits.mean_ns()):7.1f} us  "
              f"p-max {to_us(commits.max_ns()):8.1f} us   "
              f"COMMIT RPCs: {commits_sent}")
    print("\nThe filer acknowledges WRITEs FILE_SYNC from NVRAM - no COMMIT,"
          "\nno disk wait - so synchronous transaction commits run at network"
          "\nlatency. The Linux server pays a COMMIT round trip plus a disk"
          "\nwrite per transaction ('where applications require data"
          "\npermanence before a write() returns, the filer performs better').")
    assert results["netapp"] > results["linux"]


if __name__ == "__main__":
    main()
