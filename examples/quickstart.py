#!/usr/bin/env python3
"""Quickstart: measure the stock vs enhanced NFS client in one minute.

Builds the paper's test bed (dual-P3 client, gigabit switch, NetApp F85
filer), runs the Bonnie-style sequential write benchmark on the stock
Linux 2.4.4 client and on the fully patched one, and prints what the
paper's abstract promises: memory write throughput improves by more
than a factor of three.

Run:  python examples/quickstart.py
"""

from repro import TestBed
from repro.units import MB, to_us


def measure(variant: str):
    bed = TestBed(target="netapp", client=variant)
    result = bed.run_sequential_write(20 * MB)
    return bed, result


def main() -> None:
    print("Sequential 8 KB writes into a fresh 20 MB NFS file (F85 filer)\n")

    stock_bed, stock = measure("stock")
    enhanced_bed, enhanced = measure("enhanced")

    for name, result in (("stock 2.4.4", stock), ("enhanced", enhanced)):
        trace = result.trace
        spikes = trace.spikes()
        print(f"{name:12s} write {result.write_mbps:6.1f} MBps   "
              f"flush {result.flush_mbps:5.1f} MBps   "
              f"mean write() {to_us(trace.mean_ns(skip_first=1)):6.1f} us   "
              f"{len(spikes)} spikes > 1 ms")

    speedup = enhanced.write_throughput / stock.write_throughput
    print(f"\nmemory write throughput improved {speedup:.1f}x "
          f"(the paper reports 'more than a factor of three')")
    print(f"stock client threshold flushes: {stock_bed.nfs.stats.soft_flushes} "
          f"(each one a ~20 ms write() call)")
    print(f"enhanced client threshold flushes: "
          f"{enhanced_bed.nfs.stats.soft_flushes}")


if __name__ == "__main__":
    main()
