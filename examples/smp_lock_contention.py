#!/usr/bin/env python3
"""SMP lock contention: why a faster server makes writes slower.

Reproduces the §3.5 investigation interactively: 30 MB runs against the
filer, the gigabit Linux server and a 100 Mbps server, before and after
the sock_sendmsg lock fix, printing the latency histograms of Figs. 5/6
plus the evidence the paper cites — BKL wait time and the kernel
profile showing the lock section's CPU share.

Run:  python examples/smp_lock_contention.py
"""

from repro import TestBed, latency_histogram
from repro.units import MB, to_us

FILE_MB = 20


def run(target, variant, profile=False):
    bed = TestBed(target=target, client=variant, profile=profile)
    result = bed.run_sequential_write(FILE_MB * MB)
    return bed, result


def main() -> None:
    print(f"{FILE_MB} MB sequential write, hash-table client\n")
    print("Memory-write throughput by server speed (stock BKL):")
    for target in ("netapp", "linux", "linux-100"):
        _bed, result = run(target, "hashtable")
        print(f"  {target:10s} {result.write_mbps:6.1f} MBps")
    print("  -> the *slowest* server yields the fastest memory writes\n")

    for variant, figure in (("hashtable", "Figure 5 (BKL held)"),
                            ("nolock", "Figure 6 (lock released)")):
        print(f"=== {figure}")
        for target in ("netapp", "linux"):
            bed, result = run(target, variant, profile=(target == "netapp"))
            trace = result.trace
            stats = bed.nfs.bkl.stats
            print(f"{target:8s} mean {to_us(trace.mean_ns(skip_first=1)):6.1f} us  "
                  f"max {to_us(trace.max_ns(skip_first=1)):6.1f} us  "
                  f"jitter {trace.jitter_ns() / 1000:5.1f} us  "
                  f"BKL waits {stats.contended} "
                  f"({stats.total_wait_ns / 1e6:.1f} ms total)")
            if target == "netapp":
                print(latency_histogram(trace.latencies_ns).render(f"{target} {variant}"))
                top = ", ".join(f"{l}={c}" for l, c in bed.profiler.top(4))
                print(f"kernel profile (samples): {top}")
        print()


if __name__ == "__main__":
    main()
