#!/usr/bin/env python3
"""Mail-spool workload: many small files, each fsynced before delivery.

The paper's introduction names "database and mail services" as the
applications whose success hinges on NFS client performance.  A mail
server (sendmail/postfix style) writes each message to its own spool
file and must fsync before acknowledging the SMTP transaction.  This
example delivers a batch of messages over NFS and reports deliveries
per second — another angle on the §3.6 data-permanence story.

The delivery agents live in the registry
(``repro.bench.workloads.MailSpoolWorkload``); this file is a thin
wrapper that runs the registered workload on a single bed per target.

Run:  python examples/mail_spool.py
"""

from repro import TestBed
from repro.bench import get_workload
from repro.bench.workloads import client_workload_body, run_workload

MESSAGES = 150
CONCURRENCY = 4  # delivery agents


def deliver_batch(target: str):
    bed = TestBed(target=target, client="enhanced")
    workload = get_workload(
        "mail-spool", {"messages": MESSAGES, "concurrency": CONCURRENCY}
    )
    tasks = run_workload(
        bed, [("spool", client_workload_body(bed, workload))]
    )
    start, end, outcome = tasks[0].result
    elapsed_s = (end - start) / 1e9
    return outcome.ops / elapsed_s, outcome.bytes_written / elapsed_s / 1e6


def main() -> None:
    print(f"{MESSAGES} messages (2-64 KiB), {CONCURRENCY} delivery agents, "
          f"fsync per message\n")
    for target in ("netapp", "linux", "local"):
        rate, mbps = deliver_batch(target)
        print(f"{target:8s} {rate:8.0f} msgs/s   ({mbps:5.1f} MBps)")
    print("\nPer-message fsync makes delivery latency-bound: the filer's"
          "\nNVRAM answers stable WRITEs at network latency while knfsd"
          "\npays COMMIT plus a disk pass per message.")


if __name__ == "__main__":
    main()
