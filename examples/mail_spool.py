#!/usr/bin/env python3
"""Mail-spool workload: many small files, each fsynced before delivery.

The paper's introduction names "database and mail services" as the
applications whose success hinges on NFS client performance.  A mail
server (sendmail/postfix style) writes each message to its own spool
file and must fsync before acknowledging the SMTP transaction.  This
example delivers a batch of messages over NFS and reports deliveries
per second — another angle on the §3.6 data-permanence story.

Run:  python examples/mail_spool.py
"""

from repro import TestBed
from repro.sim import RngStreams
from repro.units import KIB

MESSAGES = 150
CONCURRENCY = 4  # delivery agents


def deliver_batch(target: str):
    bed = TestBed(target=target, client="enhanced")
    rng = RngStreams(seed=2).stream("mail-sizes")
    sizes = [rng.randrange(2 * KIB, 64 * KIB) for _ in range(MESSAGES)]
    delivered = []
    queue = list(enumerate(sizes))

    def agent(agent_id):
        while queue:
            msg_id, size = queue.pop(0)
            file = yield from bed.open_file(f"spool/msg{msg_id}")
            remaining = size
            while remaining > 0:
                chunk = min(8192, remaining)
                yield from bed.syscalls.write(file, chunk)
                remaining -= chunk
            yield from bed.syscalls.fsync(file)  # SMTP must not lie
            yield from bed.syscalls.close(file)
            delivered.append(msg_id)

    start = bed.sim.now
    tasks = [
        bed.sim.spawn(agent(i), name=f"agent{i}", daemon=True)
        for i in range(CONCURRENCY)
    ]
    bed.sim.run_until(lambda: all(t.done for t in tasks))
    for t in tasks:
        if t.error:
            raise t.error
    elapsed_s = (bed.sim.now - start) / 1e9
    return len(delivered) / elapsed_s, sum(sizes) / elapsed_s / 1e6


def main() -> None:
    print(f"{MESSAGES} messages (2-64 KiB), {CONCURRENCY} delivery agents, "
          f"fsync per message\n")
    for target in ("netapp", "linux", "local"):
        rate, mbps = deliver_batch(target)
        print(f"{target:8s} {rate:8.0f} msgs/s   ({mbps:5.1f} MBps)")
    print("\nPer-message fsync makes delivery latency-bound: the filer's"
          "\nNVRAM answers stable WRITEs at network latency while knfsd"
          "\npays COMMIT plus a disk pass per message.")


if __name__ == "__main__":
    main()
