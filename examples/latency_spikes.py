#!/usr/bin/env python3
"""Trace write() latency through the paper's three diagnoses.

Reproduces the story of Figures 2-4 on one screen: the stock client's
periodic 20 ms flush spikes, the no-flush client's steadily growing
list-scan latency, and the hash-table client's flat profile — each as an
ASCII strip chart of actual (not averaged) per-call latency.

Run:  python examples/latency_spikes.py
"""

from repro import TestBed
from repro.units import MB, to_us

FILE_MB = 20
BUCKETS = 64  # strip-chart columns


def strip_chart(latencies_ns, height=8, cap_us=400.0):
    """Render per-call latency as a down-sampled ASCII chart."""
    chunk = max(1, len(latencies_ns) // BUCKETS)
    columns = []
    for i in range(0, len(latencies_ns), chunk):
        window = latencies_ns[i : i + chunk]
        columns.append(to_us(max(window)))
    rows = []
    for level in range(height, 0, -1):
        threshold = cap_us * level / height
        row = "".join("#" if c >= threshold else " " for c in columns)
        rows.append(f"{threshold:7.0f} us |{row}|")
    rows.append(" " * 11 + "+" + "-" * len(columns) + "+")
    rows.append(" " * 12 + f"write() calls 1..{len(latencies_ns)} "
                f"(column max, capped at {cap_us:.0f} us)")
    return "\n".join(rows)


def main() -> None:
    for variant, story in (
        ("stock", "Fig. 2 — periodic MAX_REQUEST_SOFT flush spikes"),
        ("noflush", "Fig. 3 — flushes removed: list scans grow with backlog"),
        ("hashtable", "Fig. 4 — hash table: flat"),
    ):
        bed = TestBed(target="netapp", client=variant)
        result = bed.run_sequential_write(FILE_MB * MB)
        trace = result.trace
        print(f"=== {variant} client: {story}")
        print(strip_chart(trace.latencies_ns))
        spikes = trace.spikes()
        period = trace.spike_period()
        print(f"mean {to_us(trace.mean_ns()):.1f} us | "
              f"mean excl >1ms {to_us(trace.mean_ns(exclude_above_ns=1_000_000)):.1f} us | "
              f"max {trace.max_ns() / 1e6:.2f} ms | "
              f"{len(spikes)} spikes"
              + (f" every ~{period:.0f} calls" if period else "")
              + f" | slope {trace.growth_slope_ns_per_call():+.1f} ns/call")
        print(f"write throughput {result.write_mbps:.1f} MBps\n")


if __name__ == "__main__":
    main()
