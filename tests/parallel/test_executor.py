"""Unit tests for JobSpec / SweepExecutor mechanics."""

import pickle

import pytest

from repro.cache import ResultCache
from repro.errors import ConfigError
from repro.parallel import JobSpec, PointResult, SweepExecutor, run_job
from repro.bench.workloads import parallel_size_sweep

SMALL = JobSpec(target="netapp", client="stock", file_bytes=1_000_000)


def test_jobspec_is_picklable():
    clone = pickle.loads(pickle.dumps(SMALL))
    assert clone == SMALL
    assert clone.fingerprint(version="x") == SMALL.fingerprint(version="x")


def test_jobs_must_be_positive():
    with pytest.raises(ConfigError):
        SweepExecutor(jobs=0)


def test_run_job_produces_a_complete_point():
    point = run_job(SMALL)
    assert point.file_bytes == SMALL.file_bytes
    assert point.write_elapsed_ns > 0
    assert point.write_mbps > 0
    assert point.events_processed > 0
    # One latency sample per 8 KB write call.
    assert len(point.latencies_ns) == SMALL.file_bytes // SMALL.chunk_bytes + 1
    assert len(point.latency_starts_ns) == len(point.latencies_ns)


def test_point_result_payload_round_trip():
    point = run_job(SMALL)
    clone = PointResult.from_payload(point.to_payload())
    assert clone == point
    assert clone.write_mbps == point.write_mbps


def test_map_preserves_spec_order():
    specs = [
        JobSpec(target="netapp", client="stock", file_bytes=n * 1_000_000)
        for n in (3, 1, 2)
    ]
    results = SweepExecutor(jobs=1).map(specs)
    assert [r.file_bytes for r in results] == [3_000_000, 1_000_000, 2_000_000]


def test_cache_hits_and_misses_interleave(tmp_path):
    cache = ResultCache(str(tmp_path))
    a = SMALL
    b = JobSpec(target="netapp", client="stock", file_bytes=2_000_000)
    first = SweepExecutor(jobs=1, cache=cache).map([a])
    assert cache.stores == 1
    executor = SweepExecutor(jobs=1, cache=cache)
    results = executor.map([b, a, b])
    assert [r.file_bytes for r in results] == [2_000_000, 1_000_000, 2_000_000]
    assert results[1] == first[0]
    # a was served from disk; each b was computed (the second b hits the
    # entry stored moments earlier only on a future map() call).
    assert cache.hits >= 1

    warm = SweepExecutor(jobs=1, cache=cache).map([b, a, b])
    assert warm == results
    assert SweepExecutor(jobs=1, cache=cache).map([a]) == first


def test_parallel_size_sweep_matches_serial_points(tmp_path):
    sizes = [1_000_000, 2_000_000]
    pairs = parallel_size_sweep(
        "netapp", "stock", sizes, cache=ResultCache(str(tmp_path))
    )
    assert [size for size, _ in pairs] == sizes
    for size, point in pairs:
        direct = run_job(
            JobSpec(target="netapp", client="stock", file_bytes=size)
        )
        assert point == direct
