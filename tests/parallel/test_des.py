"""Sharded parallel DES: plan unit tests and the equivalence contract.

The load-bearing property is *bit-identical fingerprints*: for any
shard count, transport, fault schedule or sanitizer setting, a sharded
run must reduce to exactly the serial
:meth:`~repro.topology.fleet.FleetPointResult.run_fingerprint`.
"""

import random

import pytest

from repro.analysis.sanitize.runtime import sanitized
from repro.errors import ConfigError
from repro.faults.link import Duplicate, DropFrames, GilbertElliott
from repro.parallel.des import (
    FleetFaults,
    build_plan,
    run_sharded_fleet,
)
from repro.topology import (
    ClientSpec,
    FleetJobSpec,
    FleetWorkload,
    ServerSpec,
    Topology,
    reduce_fleet,
    run_fleet_job,
)
from repro.units import KIB, ms, us

SMALL = 96 * KIB


def serial_point(spec, faults=None):
    topo = Topology(clients=spec.clients, servers=spec.servers, switch=spec.switch)
    if faults is not None:
        faults.apply_serial(topo)
    workload = FleetWorkload(
        topo,
        spec.file_bytes,
        chunk_bytes=spec.chunk_bytes,
        do_fsync=spec.do_fsync,
        stagger_ns=spec.stagger_ns,
    )
    return reduce_fleet(workload.run(time_limit_ns=spec.time_limit_ns))


# -- plan ---------------------------------------------------------------------


def test_plan_partitions_contiguously_and_balanced():
    spec = FleetJobSpec.homogeneous(10, file_bytes=SMALL)
    plan = build_plan(spec, 4)
    assert plan.nshards == 4
    flat = [i for group in plan.groups for i in group]
    assert flat == list(range(10))
    sizes = [len(g) for g in plan.groups]
    assert max(sizes) - min(sizes) <= 1


def test_plan_clamps_shards_to_client_count():
    spec = FleetJobSpec.homogeneous(3, file_bytes=SMALL)
    assert build_plan(spec, 16).nshards == 3


def test_plan_lookahead_is_min_client_latency():
    from repro.config import NetConfig

    clients = (
        ClientSpec(net=NetConfig.gigabit()),
        ClientSpec(net=NetConfig.fast_ethernet()),
    )
    spec = FleetJobSpec(clients=clients)
    assert build_plan(spec, 2).lookahead_ns == us(25)


def test_plan_rejects_zero_latency_and_local_mounts():
    from repro.config import NetConfig

    zero = FleetJobSpec(
        clients=(ClientSpec(net=NetConfig(latency_ns=0)),)
    )
    with pytest.raises(ConfigError):
        build_plan(zero, 2)
    local = FleetJobSpec(
        clients=(ClientSpec(),), servers=(ServerSpec(kind="local"),)
    )
    with pytest.raises(ConfigError):
        build_plan(local, 2)


def test_fault_routing_splits_by_link_ownership():
    spec = FleetJobSpec.homogeneous(4, file_bytes=SMALL)
    plan = build_plan(spec, 2)
    faults = FleetFaults(
        uplink={"client0": DropFrames([1]), "client3": DropFrames([2])},
        downlink={"client1": DropFrames([3])},
        server_schedules=((0, (("pause_between", (ms(1), ms(2))),)),),
    )
    per_shard, hub = faults.split(plan)
    assert "client0" in per_shard[0].uplink
    assert "client3" in per_shard[1].uplink
    # Downlinks are switch-driven, so they always land hub-side.
    assert "client1" in hub.downlink
    assert not per_shard[0].downlink and not per_shard[1].downlink
    assert hub.server_schedules == faults.server_schedules


# -- equivalence --------------------------------------------------------------


@pytest.mark.parametrize("clients,shards", [(1, 1), (2, 2), (4, 2), (5, 3), (6, 6)])
def test_sharded_matches_serial_across_counts(clients, shards):
    spec = FleetJobSpec.homogeneous(clients, target="netapp", file_bytes=SMALL)
    serial = run_fleet_job(spec)
    out = run_sharded_fleet(spec, shards=shards, transport="inline")
    assert out.point.run_fingerprint() == serial.run_fingerprint()


def test_sharded_matches_serial_linux_target_with_stagger():
    spec = FleetJobSpec.homogeneous(
        4, target="linux", file_bytes=SMALL, stagger_ns=ms(2)
    )
    serial = run_fleet_job(spec)
    out = run_sharded_fleet(spec, shards=2, transport="inline")
    assert out.point.run_fingerprint() == serial.run_fingerprint()


def test_process_transport_matches_serial():
    spec = FleetJobSpec.homogeneous(4, target="netapp", file_bytes=SMALL)
    serial = run_fleet_job(spec)
    out = run_sharded_fleet(spec, shards=2, transport="process")
    assert out.point.run_fingerprint() == serial.run_fingerprint()


def test_run_fleet_job_shards_argument_round_trips():
    spec = FleetJobSpec.homogeneous(3, target="netapp", file_bytes=SMALL)
    assert (
        run_fleet_job(spec, shards=3, transport="inline").run_fingerprint()
        == run_fleet_job(spec).run_fingerprint()
    )


def _burst_faults():
    return FleetFaults(
        uplink={
            "client1": GilbertElliott(random.Random(7), p_good_to_bad=0.02),
        },
        downlink={
            "client2": DropFrames([5, 9]),
            "client0": Duplicate(random.Random(3), probability=0.05, lag_ns=us(40)),
        },
        server_schedules=((0, (("pause_between", (ms(5), ms(8))),)),),
    )


def test_sharded_matches_serial_under_link_and_server_faults():
    spec = FleetJobSpec.homogeneous(3, target="linux", file_bytes=SMALL)
    serial = serial_point(spec, faults=_burst_faults())
    out = run_sharded_fleet(
        spec, shards=3, transport="inline", faults=_burst_faults()
    )
    assert out.point.run_fingerprint() == serial.run_fingerprint()
    # The faults really fired: the fleet retransmitted or dropped.
    assert any(
        row["bytes_received"] > 0 for row in out.point.servers
    )


def test_sharded_matches_serial_under_sanitizers():
    spec = FleetJobSpec.homogeneous(3, target="netapp", file_bytes=64 * KIB)
    with sanitized() as serial_session:
        serial = serial_point(spec)
        serial_groups = {k: len(v) for k, v in serial_session.grouped().items()}
    with sanitized() as shard_session:
        out = run_sharded_fleet(spec, shards=2, transport="process")
        shard_groups = {k: len(v) for k, v in shard_session.grouped().items()}
    assert out.point.run_fingerprint() == serial.run_fingerprint()
    assert shard_groups == serial_groups


def test_sharded_run_exposes_live_hub_servers():
    spec = FleetJobSpec.homogeneous(2, target="netapp", file_bytes=SMALL)
    out = run_sharded_fleet(spec, shards=2, transport="inline")
    assert len(out.servers) == 1
    server = out.servers[0]
    # Durable file state lives hub-side, inspectable like a serial run.
    assert server.bytes_received == out.point.servers[0]["bytes_received"]
    names = {f"client{i}-file" for i in range(2)}
    assert names <= {f.name for f in server.files.values()}


def _observed_serial(spec):
    from repro.obs.core import observed

    with observed() as session:
        point = serial_point(spec)
    assert session.observabilities, "serial observer did not attach"
    return point, session.observabilities[0]


def _observed_sharded(spec, shards, transport):
    from repro.obs.core import observed

    with observed() as session:
        outcome = run_sharded_fleet(spec, shards=shards, transport=transport)
    assert outcome.observability is not None
    assert outcome.observability in session.observabilities
    return outcome.point, outcome.observability


def _export_bundle(obs):
    """The byte-level view of one observer: trace, metrics, timelines."""
    import json

    from repro.obs.export import chrome_trace, prometheus_text
    from repro.obs.slo import evaluate_slos

    trace = json.dumps(chrome_trace(obs), sort_keys=True)
    prom = prometheus_text(obs.metrics)
    timeline = json.dumps(obs.timelines.snapshot(), sort_keys=True)
    slo = json.dumps(evaluate_slos(obs.timelines), sort_keys=True)
    return trace, prom, timeline, slo


@pytest.mark.parametrize(
    "shards,transport", [(2, "inline"), (3, "inline"), (2, "process")]
)
def test_observed_sharded_exports_byte_identical(shards, transport):
    spec = FleetJobSpec.homogeneous(4, target="netapp", file_bytes=SMALL)
    serial, serial_obs = _observed_serial(spec)
    sharded, sharded_obs = _observed_sharded(spec, shards, transport)
    assert sharded.run_fingerprint() == serial.run_fingerprint()
    serial_bundle = _export_bundle(serial_obs)
    sharded_bundle = _export_bundle(sharded_obs)
    for name, a, b in zip(
        ("chrome-trace", "prometheus", "timeline", "slo-report"),
        serial_bundle,
        sharded_bundle,
    ):
        assert a == b, f"{name} export differs serial vs {shards} shards"


def test_observed_sharded_matches_unobserved_fingerprint():
    # Telemetry-on must equal telemetry-off in both engines: the
    # pure-observer replay proof for the sharded path.
    spec = FleetJobSpec.homogeneous(3, target="netapp", file_bytes=SMALL)
    bare = run_sharded_fleet(spec, shards=2, transport="inline")
    assert bare.observability is None
    observed_point, _ = _observed_sharded(spec, 2, "inline")
    assert observed_point.run_fingerprint() == bare.point.run_fingerprint()
    assert observed_point.run_fingerprint() == serial_point(spec).run_fingerprint()


def test_sharded_propagates_time_limit_wedge():
    from repro.errors import SimulationError

    spec = FleetJobSpec.homogeneous(
        2, target="netapp", file_bytes=SMALL, time_limit_ns=us(100)
    )
    with pytest.raises(SimulationError):
        run_sharded_fleet(spec, shards=2, transport="inline")


# -- client events ------------------------------------------------------------


def test_client_event_routing_splits_by_owner():
    spec = FleetJobSpec.homogeneous(4, file_bytes=SMALL)
    plan = build_plan(spec, 2)
    faults = FleetFaults(
        client_events=((0, (ms(1), ms(2), 1)), (3, (ms(3), ms(4), 2))),
    )
    per_shard, hub = faults.split(plan)
    assert per_shard[0].client_events == ((0, (ms(1), ms(2), 1)),)
    assert per_shard[1].client_events == ((3, (ms(3), ms(4), 2)),)
    assert hub.client_events == ()


def test_client_event_out_of_range_rejected():
    spec = FleetJobSpec.homogeneous(2, file_bytes=SMALL)
    plan = build_plan(spec, 2)
    faults = FleetFaults(client_events=((5, (ms(1), ms(2), 1)),))
    with pytest.raises(ConfigError, match="client event targets client 5"):
        faults.split(plan)


def test_sharded_matches_serial_under_client_events():
    spec = FleetJobSpec.homogeneous(3, target="netapp", file_bytes=SMALL)
    event = ((1, (ms(1), ms(30), 1)),)
    serial = serial_point(spec, faults=FleetFaults(client_events=event))
    out = run_sharded_fleet(
        spec,
        shards=3,
        transport="inline",
        faults=FleetFaults(client_events=event),
    )
    assert out.point.run_fingerprint() == serial.run_fingerprint()
    # Starving one client must actually change the interleaving.
    unfaulted = serial_point(spec)
    assert serial.run_fingerprint() != unfaulted.run_fingerprint()
