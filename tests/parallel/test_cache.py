"""Unit tests for the content-addressed result cache."""

import json

import pytest

from repro.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    code_version_token,
    default_cache_dir,
    fingerprint,
)
from repro.config import FilerConfig, NfsClientConfig
from repro.parallel import JobSpec


def spec(**overrides):
    base = dict(target="netapp", client="stock", file_bytes=2_000_000)
    base.update(overrides)
    return JobSpec(**base)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert spec().fingerprint() == spec().fingerprint()

    def test_differs_on_any_field(self):
        base = spec().fingerprint()
        assert spec(file_bytes=4_000_000).fingerprint() != base
        assert spec(target="linux").fingerprint() != base
        assert spec(client="enhanced").fingerprint() != base
        assert spec(do_fsync=False).fingerprint() != base

    def test_nested_config_fields_participate(self):
        a = spec(filer_config=FilerConfig()).fingerprint()
        b = spec(filer_config=FilerConfig(nvram_bytes=1 << 20)).fingerprint()
        assert a != b

    def test_explicit_config_object_vs_variant_name(self):
        named = spec(client="stock").fingerprint()
        explicit = spec(client=NfsClientConfig()).fingerprint()
        assert named != explicit

    def test_code_version_token_changes_key(self):
        assert (
            spec().fingerprint(version="aaaa")
            != spec().fingerprint(version="bbbb")
        )

    def test_token_is_cached_and_hexish(self):
        token = code_version_token()
        assert token == code_version_token()
        assert len(token) == 16
        int(token, 16)  # raises if not hex

    def test_unfingerprintable_value_rejected(self):
        with pytest.raises(TypeError):
            fingerprint(object(), version="x")


class TestResultCache:
    def test_miss_then_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = spec().fingerprint(version="test")
        assert cache.get(key) is None
        payload = {"write_elapsed_ns": 123, "latencies_ns": [1, 2, 3]}
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_survives_new_instance(self, tmp_path):
        key = "ab" + "0" * 62
        ResultCache(str(tmp_path)).put(key, {"x": 1})
        assert ResultCache(str(tmp_path)).get(key) == {"x": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "cd" + "0" * 62
        cache.put(key, {"x": 1})
        cache._path(key).write_text("{ not json")
        assert cache.get(key) is None

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "ef" + "0" * 62
        cache._path(key).parent.mkdir(parents=True)
        cache._path(key).write_text(json.dumps([1, 2]))
        assert cache.get(key) is None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(3):
            cache.put(f"{i:02x}" + "0" * 62, {"i": i})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_no_temp_droppings(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("aa" + "0" * 62, {"x": 1})
        assert not list(tmp_path.rglob("*.tmp"))

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == str(tmp_path / "elsewhere")
