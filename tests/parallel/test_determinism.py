"""Determinism across execution modes.

The contract the whole performance stack rests on: a sweep point is a
pure function of its JobSpec.  Serial in-process execution, process-pool
execution, and a cache round-trip must all yield bit-identical numbers —
including the full latency trace, not just the headline throughput.
"""

from repro.cache import ResultCache
from repro.experiments import ExecutionContext
from repro.experiments.figure1 import run_sweep, sweep_specs
from repro.parallel import JobSpec, PointResult, SweepExecutor

SPECS = [
    JobSpec(target=target, client=client, file_bytes=size)
    for target, client, size in (
        ("netapp", "stock", 2_000_000),
        ("linux", "enhanced", 2_000_000),
        ("local", "stock", 1_000_000),
    )
]


def assert_identical(a: PointResult, b: PointResult):
    assert a.write_mbps == b.write_mbps
    assert a.flush_mbps == b.flush_mbps
    assert a.close_mbps == b.close_mbps
    assert a.latencies_ns == b.latencies_ns
    assert a.latency_starts_ns == b.latency_starts_ns
    assert a == b


def test_serial_vs_pool_bit_identical():
    serial = SweepExecutor(jobs=1).map(SPECS)
    pooled = SweepExecutor(jobs=2).map(SPECS)
    for s, p in zip(serial, pooled):
        assert_identical(s, p)


def test_serial_vs_cache_round_trip_bit_identical(tmp_path):
    cache = ResultCache(str(tmp_path))
    serial = SweepExecutor(jobs=1).map(SPECS)
    cold = SweepExecutor(jobs=1, cache=cache).map(SPECS)
    warm = SweepExecutor(jobs=1, cache=cache).map(SPECS)
    assert cache.stores == len(SPECS)
    assert cache.hits == len(SPECS)
    for s, c, w in zip(serial, cold, warm):
        assert_identical(s, c)
        assert_identical(s, w)


def test_pool_through_cache_round_trip(tmp_path):
    """Pooled misses stored, then served: still identical to serial."""
    cache = ResultCache(str(tmp_path))
    pooled = SweepExecutor(jobs=2, cache=cache).map(SPECS)
    warm = SweepExecutor(jobs=1, cache=cache).map(SPECS)
    serial = SweepExecutor(jobs=1).map(SPECS)
    for s, p, w in zip(serial, pooled, warm):
        assert_identical(s, p)
        assert_identical(s, w)


def test_figure_sweep_identical_across_contexts(tmp_path):
    """The fig1/fig7 sweep front end preserves identity too."""
    kwargs = dict(client_variant="stock", scale=32.0, quick=True)
    serial = run_sweep(**kwargs)
    pooled = run_sweep(**kwargs, context=ExecutionContext(jobs=2))
    ctx = ExecutionContext(cache=ResultCache(str(tmp_path)))
    cold = run_sweep(**kwargs, context=ctx)
    warm = run_sweep(**kwargs, context=ctx)
    assert serial == pooled == cold == warm


def test_sweep_specs_cover_the_grid():
    sizes, specs = sweep_specs("stock", 8.0, True)
    assert len(specs) == 3 * len(sizes)
    assert {s.target for s in specs} == {"local", "netapp", "linux"}
    assert all(s.client == "stock" for s in specs)
