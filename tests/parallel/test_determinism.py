"""Determinism across execution modes.

The contract the whole performance stack rests on: a sweep point is a
pure function of its JobSpec.  Serial in-process execution, process-pool
execution, and a cache round-trip must all yield bit-identical numbers —
including the full latency trace, not just the headline throughput.
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.cache import ResultCache
from repro.config import FilerConfig, MountConfig, NetConfig
from repro.experiments import ExecutionContext
from repro.experiments.figure1 import run_sweep, sweep_specs
from repro.faults import run_scenario_payload
from repro.parallel import JobSpec, PointResult, SweepExecutor
from repro.units import MIB, ms

SPECS = [
    JobSpec(target=target, client=client, file_bytes=size)
    for target, client, size in (
        ("netapp", "stock", 2_000_000),
        ("linux", "enhanced", 2_000_000),
        ("local", "stock", 1_000_000),
    )
]

#: Runs with faults active: packet loss plus filer checkpoint pauses
#: (tiny NVRAM forces a mid-run pause) and a lossy knfsd run.
FAULTED_SPECS = [
    JobSpec(
        target="netapp",
        client="stock",
        file_bytes=2_000_000,
        net=NetConfig(loss_probability=0.02),
        mount=MountConfig(timeo_ns=ms(20), retrans=7),
        filer_config=FilerConfig(nvram_bytes=2 * MIB),
    ),
    JobSpec(
        target="linux",
        client="enhanced",
        file_bytes=1_000_000,
        net=NetConfig(loss_probability=0.01),
        mount=MountConfig(timeo_ns=ms(20), retrans=7),
    ),
]


def assert_identical(a: PointResult, b: PointResult):
    assert a.write_mbps == b.write_mbps
    assert a.flush_mbps == b.flush_mbps
    assert a.close_mbps == b.close_mbps
    assert a.latencies_ns == b.latencies_ns
    assert a.latency_starts_ns == b.latency_starts_ns
    assert a == b


def test_serial_vs_pool_bit_identical():
    serial = SweepExecutor(jobs=1).map(SPECS)
    pooled = SweepExecutor(jobs=2).map(SPECS)
    for s, p in zip(serial, pooled):
        assert_identical(s, p)


def test_serial_vs_cache_round_trip_bit_identical(tmp_path):
    cache = ResultCache(str(tmp_path))
    serial = SweepExecutor(jobs=1).map(SPECS)
    cold = SweepExecutor(jobs=1, cache=cache).map(SPECS)
    warm = SweepExecutor(jobs=1, cache=cache).map(SPECS)
    assert cache.stores == len(SPECS)
    assert cache.hits == len(SPECS)
    for s, c, w in zip(serial, cold, warm):
        assert_identical(s, c)
        assert_identical(s, w)


def test_pool_through_cache_round_trip(tmp_path):
    """Pooled misses stored, then served: still identical to serial."""
    cache = ResultCache(str(tmp_path))
    pooled = SweepExecutor(jobs=2, cache=cache).map(SPECS)
    warm = SweepExecutor(jobs=1, cache=cache).map(SPECS)
    serial = SweepExecutor(jobs=1).map(SPECS)
    for s, p, w in zip(serial, pooled, warm):
        assert_identical(s, p)
        assert_identical(s, w)


def test_figure_sweep_identical_across_contexts(tmp_path):
    """The fig1/fig7 sweep front end preserves identity too."""
    kwargs = dict(client_variant="stock", scale=32.0, quick=True)
    serial = run_sweep(**kwargs)
    pooled = run_sweep(**kwargs, context=ExecutionContext(jobs=2))
    ctx = ExecutionContext(cache=ResultCache(str(tmp_path)))
    cold = run_sweep(**kwargs, context=ctx)
    warm = run_sweep(**kwargs, context=ctx)
    assert serial == pooled == cold == warm


def test_faulted_runs_bit_identical_across_modes(tmp_path):
    """Fault injection must not break the determinism contract: a lossy,
    pause-ridden run replays bit-identically in-process, across a worker
    pool, and through the result cache."""
    serial = SweepExecutor(jobs=1).map(FAULTED_SPECS)
    pooled = SweepExecutor(jobs=2).map(FAULTED_SPECS)
    cache = ResultCache(str(tmp_path))
    cold = SweepExecutor(jobs=1, cache=cache).map(FAULTED_SPECS)
    warm = SweepExecutor(jobs=2, cache=cache).map(FAULTED_SPECS)
    clean = SweepExecutor(jobs=1).map(
        [replace(spec, net=None, mount=None, filer_config=None)
         for spec in FAULTED_SPECS]
    )
    for s, p, c, w, base in zip(serial, pooled, cold, warm, clean):
        # The faults really fired: loss + pauses cost wall-clock time.
        faulted_total = s.write_elapsed_ns + s.flush_elapsed_ns
        assert faulted_total > base.write_elapsed_ns + base.flush_elapsed_ns
        assert_identical(s, p)
        assert_identical(s, c)
        assert_identical(s, w)


def test_fault_scenario_identical_in_process_and_in_worker():
    """A chaos scenario (burst loss + server checkpoint behaviour) is a
    pure function of (name, seed), wherever it runs."""
    first = run_scenario_payload("lossy-burst", seed=5)
    second = run_scenario_payload("lossy-burst", seed=5)
    with ProcessPoolExecutor(max_workers=2) as pool:
        remote = list(
            pool.map(run_scenario_payload, ["lossy-burst"] * 2, [5, 5])
        )
    assert first == second == remote[0] == remote[1]
    assert first["fingerprint"] == remote[1]["fingerprint"]


def test_sweep_specs_cover_the_grid():
    sizes, specs = sweep_specs("stock", 8.0, True)
    assert len(specs) == 3 * len(sizes)
    assert {s.target for s in specs} == {"local", "netapp", "linux"}
    assert all(s.client == "stock" for s in specs)
