"""Filer behaviour under sustained overload: drain-bound throughput."""

from repro.bench import TestBed
from repro.config import FilerConfig, NfsClientConfig
from repro.units import MB, mbps, ms


LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def test_back_to_back_checkpoints_throttle_to_drain_rate():
    """When the RAID drains slower than ingest, NVRAM halves fill faster
    than they empty and sustained throughput becomes drain-bound."""
    slow_drain = FilerConfig(
        nvram_bytes=4 * MB,
        raid_drain_bytes_per_sec=mbps(10),  # slower than 38 MBps ingest
        checkpoint_pause_ns=ms(1),
    )
    bed = TestBed(target="netapp", client=LAZY, filer_config=slow_drain)
    result = bed.run_sequential_write(20 * MB)
    # Flush-inclusive throughput collapses to ~ the drain rate.
    assert result.flush_mbps < 14
    assert bed.server.checkpoints >= 8


def test_fast_drain_keeps_filer_ingest_bound():
    fast_drain = FilerConfig(nvram_bytes=4 * MB, checkpoint_pause_ns=ms(1))
    bed = TestBed(target="netapp", client=LAZY, filer_config=fast_drain)
    result = bed.run_sequential_write(20 * MB)
    assert result.flush_mbps > 25  # near the 38 MBps ingest


def test_checkpoint_windows_are_recorded_in_order():
    config = FilerConfig(nvram_bytes=4 * MB, checkpoint_pause_ns=ms(2))
    bed = TestBed(target="netapp", client=LAZY, filer_config=config)
    bed.run_sequential_write(10 * MB)
    windows = bed.server.checkpoint_windows
    assert windows
    starts = [w[0] for w in windows]
    assert starts == sorted(starts)
    for begin, end in windows:
        assert end - begin == ms(2)
