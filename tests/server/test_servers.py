"""Unit tests for the server models (driven via raw RPC)."""

import pytest

from repro.config import FilerConfig, LinuxServerConfig, NetConfig
from repro.errors import ProtocolError
from repro.net import Host, Switch
from repro.nfs3 import (
    CommitArgs,
    CreateArgs,
    Stable,
    WriteArgs,
    write_call_size,
)
from repro.rpc import RpcCall, UdpTransport
from repro.server import LinuxNfsServer, NetappFiler, SimpleNfsServer
from repro.sim import Simulator
from repro.units import MB, ms, us


class Client:
    """A minimal raw-RPC client for poking servers."""

    def __init__(self, server_cls, server_kwargs=None, net=None):
        self.sim = Simulator()
        switch = Switch(self.sim)
        net = net or NetConfig.gigabit()
        self.host = Host(self.sim, "client", switch, net, ncpus=2)
        self.server = server_cls(self.sim, switch, net, **(server_kwargs or {}))
        sock = self.host.udp.socket(700)
        self.xprt = UdpTransport(self.host, sock, self.server.name, 2049)

    def call(self, proc, args, size=200):
        rpc = RpcCall(self.xprt.next_xid(), "nfs3", proc, args, size)
        return self.xprt.call_and_wait(rpc)

    def run(self, gen):
        # daemon=True: failures land in task.error for re-raising here
        # instead of exploding out of the event loop as TaskFailed.
        task = self.sim.spawn(gen, daemon=True)
        self.sim.run_until(lambda: task.done)
        if task.error:
            raise task.error
        return task.result


def test_filer_acknowledges_file_sync():
    client = Client(NetappFiler)

    def body():
        created = yield from client.call("CREATE", CreateArgs("f"))
        fid = created.result.fileid
        reply = yield from client.call(
            "WRITE", WriteArgs(fid, 0, 8192), size=write_call_size(8192)
        )
        return reply.result

    result = client.run(body())
    assert result.committed is Stable.FILE_SYNC
    assert client.server.active_half_used == 8192


def test_filer_checkpoint_pauses_and_drains():
    config = FilerConfig(nvram_bytes=2 * MB, checkpoint_pause_ns=ms(5))
    client = Client(NetappFiler, {"config": config})

    def body():
        created = yield from client.call("CREATE", CreateArgs("f"))
        fid = created.result.fileid
        # Write 3 MB: crosses the 1 MB half boundary several times.
        offset = 0
        while offset < 3 * MB:
            yield from client.call(
                "WRITE", WriteArgs(fid, offset, 8192), size=write_call_size(8192)
            )
            offset += 8192

    client.run(body())
    client.sim.run_for(ms(50))  # let the last pause window close
    assert client.server.checkpoints >= 2
    for begin, end in client.server.checkpoint_windows:
        assert end - begin == ms(5)
    assert not client.server.paused


def test_filer_commit_is_a_noop():
    client = Client(NetappFiler)

    def body():
        created = yield from client.call("CREATE", CreateArgs("f"))
        fid = created.result.fileid
        yield from client.call(
            "WRITE", WriteArgs(fid, 0, 8192), size=write_call_size(8192)
        )
        before = client.sim.now
        yield from client.call("COMMIT", CommitArgs(fid))
        return client.sim.now - before

    elapsed = client.run(body())
    assert elapsed < ms(1)  # no disk work behind the commit
    assert client.server.commits_handled == 1


def test_linux_server_unstable_then_commit_hits_disk():
    client = Client(LinuxNfsServer)

    def body():
        created = yield from client.call("CREATE", CreateArgs("f"))
        fid = created.result.fileid
        reply = yield from client.call(
            "WRITE", WriteArgs(fid, 0, 8192), size=write_call_size(8192)
        )
        assert reply.result.committed is Stable.UNSTABLE
        before = client.sim.now
        yield from client.call("COMMIT", CommitArgs(fid))
        return client.sim.now - before

    commit_time = client.run(body())
    file = next(iter(client.server.files.values()))
    assert file.dirty_bytes == 0
    assert file.stable_bytes >= 8192
    assert client.server.disk.bytes_written >= 8192
    assert commit_time > 0


def test_linux_server_data_sync_write_forced_to_disk():
    client = Client(LinuxNfsServer)

    def body():
        created = yield from client.call("CREATE", CreateArgs("f"))
        fid = created.result.fileid
        reply = yield from client.call(
            "WRITE",
            WriteArgs(fid, 0, 8192, stable=Stable.FILE_SYNC),
            size=write_call_size(8192),
        )
        return reply.result

    result = client.run(body())
    assert result.committed is Stable.FILE_SYNC
    assert client.server.disk.bytes_written >= 8192


def test_server_ingest_rate_bounds_throughput():
    client = Client(
        SimpleNfsServer, {"ingest_bytes_per_sec": 10 * MB, "name": "slow"}
    )

    def body():
        created = yield from client.call("CREATE", CreateArgs("f"))
        fid = created.result.fileid
        start = client.sim.now
        total = 2 * MB
        offset = 0
        while offset < total:
            yield from client.call(
                "WRITE", WriteArgs(fid, offset, 8192), size=write_call_size(8192)
            )
            offset += 8192
        return total / ((client.sim.now - start) / 1e9)

    rate = client.run(body())
    # Synchronous single-stream calls: bounded by ingest (plus RTT).
    assert rate < 10.5 * MB


def test_unknown_procedure_rejected():
    client = Client(SimpleNfsServer, {"ingest_bytes_per_sec": 10 * MB})

    def body():
        yield from client.call("MKNOD", None)

    with pytest.raises(ProtocolError):
        client.run(body())


def test_stale_file_handle_rejected():
    client = Client(SimpleNfsServer, {"ingest_bytes_per_sec": 10 * MB})

    def body():
        yield from client.call(
            "WRITE", WriteArgs(99, 0, 100), size=write_call_size(100)
        )

    with pytest.raises(ProtocolError):
        client.run(body())


def test_pause_and_resume_stalls_service():
    client = Client(SimpleNfsServer, {"ingest_bytes_per_sec": 100 * MB})
    client.server.pause()
    client.sim.schedule(ms(10), client.server.resume)

    def body():
        created = yield from client.call("CREATE", CreateArgs("f"))
        return client.sim.now

    finished = client.run(body())
    assert finished >= ms(10)
