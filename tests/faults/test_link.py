"""Unit tests for the per-frame link fault models."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    DelayJitter,
    DropFrames,
    Duplicate,
    FaultChain,
    GilbertElliott,
    LinkFault,
)
from repro.sim import RngStreams


def stream(name="fault", seed=42):
    return RngStreams(seed).stream(name)


def test_base_fault_passes_everything():
    fault = LinkFault()
    assert [fault.on_frame(1500) for _ in range(5)] == [[0]] * 5


def test_gilbert_elliott_is_deterministic_per_stream():
    a = GilbertElliott(stream(), p_good_to_bad=0.1, p_bad_to_good=0.3)
    b = GilbertElliott(stream(), p_good_to_bad=0.1, p_bad_to_good=0.3)
    verdicts_a = [a.on_frame(1500) for _ in range(500)]
    verdicts_b = [b.on_frame(1500) for _ in range(500)]
    assert verdicts_a == verdicts_b
    assert a.frames_dropped == b.frames_dropped > 0
    assert a.bursts == b.bursts > 0


def test_gilbert_elliott_drops_in_bursts():
    """Forced into the bad state forever: every frame after the first
    transition is lost, and it all counts as one burst."""
    fault = GilbertElliott(
        stream(), p_good_to_bad=1.0, p_bad_to_good=0.0, loss_bad=1.0
    )
    for _ in range(20):
        assert fault.on_frame(1500) == []
    assert fault.frames_seen == 20
    assert fault.frames_dropped == 20
    assert fault.bursts == 1
    assert fault.in_bad_state


def test_gilbert_elliott_lossless_good_state():
    fault = GilbertElliott(stream(), p_good_to_bad=0.0)
    assert all(fault.on_frame(1500) == [0] for _ in range(100))
    assert fault.frames_dropped == 0
    assert fault.bursts == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"p_good_to_bad": -0.1},
        {"p_bad_to_good": 1.5},
        {"loss_good": 2.0},
        {"loss_bad": -1.0},
    ],
)
def test_gilbert_elliott_rejects_bad_probabilities(kwargs):
    with pytest.raises(ConfigError):
        GilbertElliott(stream(), **kwargs)


def test_delay_jitter_stays_in_bounds():
    fault = DelayJitter(stream(), max_jitter_ns=1000)
    delays = [fault.on_frame(1500) for _ in range(200)]
    assert all(len(d) == 1 and 0 <= d[0] <= 1000 for d in delays)
    assert any(d[0] > 0 for d in delays)


def test_delay_jitter_zero_and_negative():
    assert DelayJitter(stream(), max_jitter_ns=0).on_frame(64) == [0]
    with pytest.raises(ConfigError):
        DelayJitter(stream(), max_jitter_ns=-1)


def test_duplicate_always_and_never():
    always = Duplicate(stream(), probability=1.0, lag_ns=7)
    assert always.on_frame(64) == [0, 7]
    assert always.duplicated == 1
    never = Duplicate(stream(), probability=0.0)
    assert all(never.on_frame(64) == [0] for _ in range(50))
    assert never.duplicated == 0


@pytest.mark.parametrize("kwargs", [{"probability": 1.1}, {"probability": -0.1},
                                    {"probability": 0.5, "lag_ns": -1}])
def test_duplicate_rejects_bad_config(kwargs):
    with pytest.raises(ConfigError):
        Duplicate(stream(), **kwargs)


def test_drop_frames_hits_exact_ordinals():
    fault = DropFrames({0, 2, 5})
    verdicts = [fault.on_frame(64) for _ in range(7)]
    assert verdicts == [[], [0], [], [0], [0], [], [0]]
    assert fault.seen == 7
    assert fault.dropped == 3


def test_chain_drop_wins():
    chain = FaultChain([DropFrames({0}), Duplicate(stream(), probability=1.0)])
    assert chain.on_frame(64) == []


def test_chain_downstream_faults_rule_on_each_copy():
    """Later links see each delivered copy as its own frame: dropping
    ordinal 0 after a duplicator kills the original, not the copy."""
    chain = FaultChain(
        [Duplicate(stream(), probability=1.0, lag_ns=5), DropFrames({0})]
    )
    assert chain.on_frame(64) == [5]


def test_chain_delays_add_and_duplicates_multiply():
    chain = FaultChain(
        [
            Duplicate(stream("a"), probability=1.0, lag_ns=5),
            Duplicate(stream("b"), probability=1.0, lag_ns=11),
        ]
    )
    # Two duplicators: four copies, lags combined pairwise.
    assert sorted(chain.on_frame(64)) == [0, 5, 11, 16]
