"""End-to-end fault scenarios and the harness around them."""

import io

import pytest

from repro.errors import ConfigError
from repro.faults import (
    SCENARIOS,
    ServerFaultSchedule,
    SlotStarvation,
    run_scenario,
    run_scenario_payload,
)
from repro.experiments.cli import main, run_fault_scenarios
from repro.sim import Simulator
from repro.units import ms


def test_registry_has_the_full_scenario_suite():
    assert set(SCENARIOS) == {
        "lossy-burst",
        "server-restart",
        "soft-timeout",
        "jukebox",
        "slot-starvation",
        "monotone-loss",
    }
    assert all(SCENARIOS[name].description for name in SCENARIOS)


def test_jukebox_scenario_passes():
    outcome = run_scenario("jukebox", seed=1, verify_determinism=False)
    assert outcome.passed
    names = {inv.name for inv in outcome.invariants}
    assert "jukebox-injected" in names
    assert "no-duplicate-ingest" in names


def test_soft_timeout_scenario_surfaces_eio():
    outcome = run_scenario("soft-timeout", seed=1, verify_determinism=False)
    assert outcome.passed
    by_name = {inv.name: inv for inv in outcome.invariants}
    assert by_name["eio-surfaced"].ok
    assert by_name["syscall-saw-eio"].ok


def test_determinism_invariant_appended_when_verifying():
    outcome = run_scenario("slot-starvation", seed=2, verify_determinism=True)
    assert outcome.passed
    by_name = {inv.name: inv for inv in outcome.invariants}
    assert by_name["deterministic"].ok


def test_payload_is_seed_sensitive_and_repeatable():
    one = run_scenario_payload("lossy-burst", seed=1)
    again = run_scenario_payload("lossy-burst", seed=1)
    other = run_scenario_payload("lossy-burst", seed=9)
    assert one == again
    assert one["fingerprint"] != other["fingerprint"]


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigError):
        run_scenario("no-such-chaos")
    with pytest.raises(ConfigError):
        run_scenario_payload("no-such-chaos")


def test_cli_runner_prints_verdicts():
    out = io.StringIO()
    ok = run_fault_scenarios(["jukebox"], seed=1, verify=False, out=out)
    assert ok
    text = out.getvalue()
    assert text.startswith("PASS jukebox")
    assert "[ok      ] jukebox-injected" in text


def test_cli_faults_list(capsys):
    assert main(["faults", "--list"]) == 0
    captured = capsys.readouterr().out
    for name in SCENARIOS:
        assert name in captured


def test_cli_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["faults", "--scenario", "bogus"])


def test_schedule_rejects_empty_windows():
    class _Server:
        sim = Simulator()

        @staticmethod
        def pause():
            raise AssertionError("must not schedule")

    schedule = ServerFaultSchedule(_Server())
    with pytest.raises(ConfigError):
        schedule.pause_between(ms(5), ms(5))
    with pytest.raises(ConfigError):
        schedule.jukebox_between(ms(10), ms(2))


def test_slot_starvation_rejects_bad_config():
    sim = Simulator()
    with pytest.raises(ConfigError):
        SlotStarvation(sim, None, ms(2), ms(1))
    with pytest.raises(ConfigError):
        SlotStarvation(sim, None, ms(1), ms(2), slots=0)
