"""Tests for unit conversions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units


def test_time_conversions_round_trip():
    assert units.us(1) == 1_000
    assert units.ms(1) == 1_000_000
    assert units.seconds(1) == 1_000_000_000
    assert units.to_us(units.us(123.5)) == pytest.approx(123.5)
    assert units.to_ms(units.ms(7)) == 7
    assert units.to_seconds(units.seconds(2.5)) == 2.5


def test_data_sizes():
    assert units.kib(1) == 1024
    assert units.mib(2) == 2 * 1024 * 1024
    assert units.PAGE_SIZE == 4096
    assert units.pages(1) == 1
    assert units.pages(4096) == 1
    assert units.pages(4097) == 2
    assert units.pages(8192) == 2


def test_rates():
    assert units.mbps(1) == 1_000_000
    assert units.gbit(1) == 125_000_000
    assert units.mbit(100) == 12_500_000
    assert units.to_mbps(38_000_000) == 38.0


def test_transfer_time():
    # 1 MB at 1 MB/s = 1 second.
    assert units.transfer_time(1_000_000, 1_000_000) == units.seconds(1)
    assert units.transfer_time(0, 100) == 0
    assert units.transfer_time(1, 1e12) == 1  # floor of 1 ns
    with pytest.raises(ValueError):
        units.transfer_time(10, 0)


def test_throughput():
    assert units.throughput(1_000_000, units.seconds(1)) == 1_000_000
    assert units.throughput(100, 0) == 0.0


@given(
    st.integers(min_value=1, max_value=10**12),
    st.floats(min_value=1e3, max_value=1e12, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_transfer_throughput_inverse(nbytes, rate):
    elapsed = units.transfer_time(nbytes, rate)
    assert elapsed >= 1
    recovered = units.throughput(nbytes, elapsed)
    if elapsed >= 1000:
        # With a long enough transfer, ns rounding error is negligible.
        assert recovered == pytest.approx(rate, rel=0.01)
    else:
        # Very short transfers round up to at least 1 ns, only ever
        # underestimating throughput.
        assert recovered <= rate * 1.5
