"""Unit tests for the NVRAM model."""

import pytest

from repro.errors import ResourceError
from repro.hw import Nvram
from repro.sim import Simulator


def test_reserve_and_release():
    sim = Simulator()
    nv = Nvram(sim, 100)

    def worker():
        yield from nv.reserve(70)
        assert nv.available == 30

    sim.spawn(worker())
    sim.run()
    nv.release(70)
    assert nv.available == 100
    assert nv.total_in == 70
    assert nv.peak_used == 70


def test_reserve_blocks_when_full():
    sim = Simulator()
    nv = Nvram(sim, 100)
    log = []

    def filler():
        yield from nv.reserve(100)

    def drainer():
        yield sim.timeout(100)
        nv.release(40)

    def waiter():
        yield sim.timeout(1)
        yield from nv.reserve(40)
        log.append(sim.now)

    sim.spawn(filler())
    sim.spawn(drainer())
    sim.spawn(waiter())
    sim.run()
    assert log == [100]


def test_bad_reservations_rejected():
    sim = Simulator()
    nv = Nvram(sim, 100)

    def too_big():
        yield from nv.reserve(101)

    task = sim.spawn(too_big(), daemon=True)
    sim.run()
    assert isinstance(task.error, ResourceError)
    with pytest.raises(ResourceError):
        nv.release(1)
