"""Unit and property tests for the memory pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResourceError
from repro.hw import MemoryPool
from repro.sim import Simulator


def test_try_alloc_and_free():
    sim = Simulator()
    pool = MemoryPool(sim, 100)
    assert pool.try_alloc(60)
    assert pool.used == 60
    assert not pool.try_alloc(50)
    pool.free(20)
    assert pool.try_alloc(50)
    assert pool.available == 10
    assert pool.peak_used == 90


def test_alloc_blocks_until_free():
    sim = Simulator()
    pool = MemoryPool(sim, 100)
    log = []

    def hog():
        yield from pool.alloc(100)
        yield sim.timeout(50)
        pool.free(100)

    def waiter():
        yield sim.timeout(1)
        yield from pool.alloc(30)
        log.append(sim.now)

    sim.spawn(hog())
    sim.spawn(waiter())
    sim.run()
    assert log == [50]
    assert pool.alloc_blocks == 1


def test_alloc_larger_than_capacity_rejected():
    sim = Simulator()
    pool = MemoryPool(sim, 100)

    def worker():
        yield from pool.alloc(101)

    task = sim.spawn(worker(), daemon=True)
    sim.run()
    assert isinstance(task.error, ResourceError)


def test_over_free_rejected():
    sim = Simulator()
    pool = MemoryPool(sim, 100)
    pool.try_alloc(10)
    with pytest.raises(ResourceError):
        pool.free(11)


def test_negative_sizes_rejected():
    sim = Simulator()
    pool = MemoryPool(sim, 100)
    with pytest.raises(ResourceError):
        pool.try_alloc(-1)
    with pytest.raises(ResourceError):
        pool.free(-1)
    with pytest.raises(ResourceError):
        MemoryPool(sim, 0)


def test_waiters_count():
    sim = Simulator()
    pool = MemoryPool(sim, 10)
    pool.try_alloc(10)

    def waiter():
        yield from pool.alloc(5)

    sim.spawn(waiter())
    sim.run()
    assert pool.waiters == 1
    pool.free(10)
    sim.run()
    assert pool.waiters == 0


@given(st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_usage_never_exceeds_capacity(sizes):
    sim = Simulator()
    pool = MemoryPool(sim, 100)
    peaks = []

    def worker(nbytes, hold):
        yield from pool.alloc(nbytes)
        peaks.append(pool.used)
        yield sim.timeout(hold)
        pool.free(nbytes)

    for i, nbytes in enumerate(sizes):
        sim.spawn(worker(nbytes, (i * 13) % 29 + 1))
    sim.run()
    assert all(p <= 100 for p in peaks)
    assert pool.used == 0
    assert pool.total_allocated == sum(sizes)
