"""Unit tests for disk and RAID models."""

import pytest

from repro.errors import ResourceError
from repro.hw import Disk, RaidGroup
from repro.sim import Simulator
from repro.units import seconds


def test_sequential_write_time_is_bandwidth_bound():
    sim = Simulator()
    disk = Disk(sim, transfer_bytes_per_sec=1_000_000, seek_ns=5_000_000)

    def worker():
        yield from disk.write(1_000_000, sequential=True)

    sim.spawn(worker())
    end = sim.run()
    assert end == seconds(1.0)
    assert disk.bytes_written == 1_000_000


def test_random_write_pays_seek():
    sim = Simulator()
    disk = Disk(sim, transfer_bytes_per_sec=1_000_000, seek_ns=5_000_000)

    def worker():
        yield from disk.write(1_000_000, sequential=False)

    sim.spawn(worker())
    end = sim.run()
    assert end == seconds(1.0) + 5_000_000


def test_disk_serialises_concurrent_ops():
    sim = Simulator()
    disk = Disk(sim, transfer_bytes_per_sec=1_000_000)
    finished = []

    def worker(tag):
        yield from disk.write(500_000)
        finished.append((tag, sim.now))

    sim.spawn(worker(0))
    sim.spawn(worker(1))
    sim.run()
    assert finished == [(0, seconds(0.5)), (1, seconds(1.0))]
    assert disk.ops == 2


def test_read_accounting():
    sim = Simulator()
    disk = Disk(sim, transfer_bytes_per_sec=2_000_000)

    def worker():
        yield from disk.read(1_000_000)

    sim.spawn(worker())
    sim.run()
    assert disk.bytes_read == 1_000_000
    assert disk.bytes_written == 0


def test_raid_aggregates_data_spindles():
    sim = Simulator()
    raid = RaidGroup(sim, ndisks=9, per_disk_bytes_per_sec=1_000_000)
    # 9 disks, one parity -> 8 data spindles worth of bandwidth.
    assert raid.transfer_bytes_per_sec == 8_000_000

    def worker():
        yield from raid.write(8_000_000)

    sim.spawn(worker())
    end = sim.run()
    assert end == seconds(1.0)


def test_invalid_configs_rejected():
    sim = Simulator()
    with pytest.raises(ResourceError):
        Disk(sim, transfer_bytes_per_sec=0)
    with pytest.raises(ResourceError):
        Disk(sim, transfer_bytes_per_sec=10, seek_ns=-1)
    with pytest.raises(ResourceError):
        RaidGroup(sim, ndisks=1, per_disk_bytes_per_sec=10)
