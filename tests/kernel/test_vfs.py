"""Tests for VFS page splitting and the syscall layer."""

from repro.config import NetConfig
from repro.kernel import SyscallLayer, VfsFile, generic_file_write, page_segments
from repro.net import Host, Switch
from repro.sim import Simulator
from repro.units import PAGE_SIZE


class RecordingFile(VfsFile):
    """Collects commit_write calls; instant fsync/close."""

    def __init__(self):
        super().__init__(fileid=1, name="rec")
        self.commits = []

    def commit_write(self, page_index, offset_in_page, nbytes):
        self.commits.append((page_index, offset_in_page, nbytes))
        return
        yield  # pragma: no cover

    def fsync(self):
        return
        yield  # pragma: no cover

    def release(self):
        return
        yield  # pragma: no cover


def make_host():
    sim = Simulator()
    switch = Switch(sim)
    return sim, Host(sim, "client", switch, NetConfig.gigabit(), ncpus=2)


def test_page_segments_aligned():
    assert page_segments(0, 8192) == [(0, 0, PAGE_SIZE), (1, 0, PAGE_SIZE)]


def test_page_segments_unaligned():
    segs = page_segments(PAGE_SIZE - 100, 300)
    assert segs == [(0, PAGE_SIZE - 100, 100), (1, 0, 200)]
    assert sum(s[2] for s in segs) == 300


def test_page_segments_small_write():
    assert page_segments(10, 20) == [(0, 10, 20)]


def test_generic_file_write_splits_and_advances():
    sim, host = make_host()
    f = RecordingFile()

    def worker():
        yield from generic_file_write(host, f, 8192)
        yield from generic_file_write(host, f, 8192)

    sim.spawn(worker())
    sim.run()
    assert f.commits == [
        (0, 0, PAGE_SIZE),
        (1, 0, PAGE_SIZE),
        (2, 0, PAGE_SIZE),
        (3, 0, PAGE_SIZE),
    ]
    assert f.pos == 16384
    assert f.size == 16384


def test_copy_cost_charged_per_page():
    sim, host = make_host()
    f = RecordingFile()

    def worker():
        yield from generic_file_write(host, f, 8192)

    sim.spawn(worker())
    sim.run()
    assert host.cpus.time_by_label["copy_from_user"] == 2 * host.costs.page_copy


def test_syscall_layer_records_latency():
    sim, host = make_host()
    f = RecordingFile()
    recorded = []

    class Sink:
        def record(self, start, end):
            recorded.append(end - start)

    syscalls = SyscallLayer(host, instrument=True, latency_sink=Sink())

    def worker():
        yield from syscalls.write(f, 8192)
        yield from syscalls.fsync(f)
        yield from syscalls.close(f)

    sim.spawn(worker())
    sim.run()
    assert len(recorded) == 1
    expected = (
        host.costs.syscall_overhead
        + 2 * host.costs.page_copy
        + host.costs.instrumentation
    )
    assert recorded[0] == expected
    assert syscalls.write_calls == 1
    assert syscalls.bytes_written == 8192
    assert f.closed


def test_uninstrumented_syscalls_skip_overhead():
    sim, host = make_host()
    f = RecordingFile()
    times = []

    class Sink:
        def record(self, start, end):
            times.append(end - start)

    syscalls = SyscallLayer(host, instrument=False, latency_sink=Sink())

    def worker():
        yield from syscalls.write(f, 4096)

    sim.spawn(worker())
    sim.run()
    assert times[0] == host.costs.syscall_overhead + host.costs.page_copy
