"""Tests for the BKL and the send-path lock policies."""

import gc

from repro.kernel import (
    BigKernelLock,
    NoLockPolicy,
    SendUnlockedPolicy,
    StockLockPolicy,
)
from repro.sim import Simulator
from repro.units import us


def test_break_all_and_reacquire():
    sim = Simulator()
    bkl = BigKernelLock(sim)
    log = []

    def owner():
        yield from bkl.acquire("outer")
        yield from bkl.acquire("inner")
        depth = bkl.break_all()
        assert depth == 2
        assert not bkl.locked
        yield sim.timeout(us(10))
        yield from bkl.reacquire(depth, "back")
        assert bkl.depth == 2
        log.append("reacquired")
        bkl.release()
        bkl.release()
        assert not bkl.locked

    sim.spawn(owner())
    sim.run()
    assert log == ["reacquired"]


def test_break_all_by_non_owner_is_noop():
    sim = Simulator()
    bkl = BigKernelLock(sim)

    def holder():
        yield from bkl.acquire("h")
        yield sim.timeout(us(10))
        bkl.release()

    def other():
        yield sim.timeout(us(1))
        assert bkl.break_all() == 0
        yield from bkl.reacquire(0, "nothing")  # no-op

    sim.spawn(holder())
    sim.spawn(other())
    sim.run()


def test_stock_policy_serialises_sends_against_lock_holders():
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = StockLockPolicy(bkl)
    send_done = []

    def hog():
        yield from bkl.acquire("hog")
        yield sim.timeout(us(100))
        bkl.release()

    def sender():
        yield sim.timeout(us(1))

        def body():
            yield sim.timeout(us(10))

        yield from policy.wire_send("send", body())
        send_done.append(sim.now)

    sim.spawn(hog())
    sim.spawn(sender())
    sim.run()
    # The send had to wait for the 100 µs lock hold.
    assert send_done == [us(110)]


def test_unlocked_policy_sends_without_the_lock():
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = SendUnlockedPolicy(bkl)
    log = []

    def sender():
        yield from bkl.acquire("writer")

        def body():
            assert not bkl.held_by_current()
            log.append("sent unlocked")
            yield sim.timeout(us(10))

        yield from policy.wire_send("send", body())
        assert bkl.held_by_current()
        assert bkl.depth == 1
        bkl.release()

    sim.spawn(sender())
    sim.run()
    assert log == ["sent unlocked"]


def test_unlocked_policy_allows_writer_progress_during_send():
    """The paper's fix: another thread can take the BKL while a send is
    in flight."""
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = SendUnlockedPolicy(bkl)
    progress = []

    def daemon():
        yield from bkl.acquire("daemon")

        def body():
            yield sim.timeout(us(100))  # long sock_sendmsg

        yield from policy.wire_send("daemon-send", body())
        bkl.release()

    def writer():
        yield sim.timeout(us(5))
        yield from bkl.acquire("writer")
        progress.append(sim.now)
        bkl.release()

    sim.spawn(daemon())
    sim.spawn(writer())
    sim.run()
    # Writer got the lock during the send, not after it.
    assert progress[0] < us(100)


def test_stock_policy_blocks_writer_during_send():
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = StockLockPolicy(bkl)
    progress = []

    def daemon():
        yield from bkl.acquire("daemon")

        def body():
            yield sim.timeout(us(100))

        yield from policy.wire_send("daemon-send", body())
        bkl.release()

    def writer():
        yield sim.timeout(us(5))
        yield from bkl.acquire("writer")
        progress.append(sim.now)
        bkl.release()

    sim.spawn(daemon())
    sim.spawn(writer())
    sim.run()
    assert progress[0] >= us(100)


def test_reacquire_outside_task_context_returns_early():
    """The generator-cleanup path: when a finally-clause drives
    ``reacquire`` with no current task (GC of an abandoned simulation),
    it must return without touching the lock."""
    sim = Simulator()
    bkl = BigKernelLock(sim)
    assert sim.current_task is None
    # Driving the generator to completion must neither raise nor lock.
    steps = list(bkl.reacquire(2, "cleanup"))
    assert steps == []
    assert not bkl.locked
    assert bkl.depth == 0


def test_gc_of_abandoned_send_unlocked_simulation():
    """Abandon a simulation while a wire_send is parked between
    ``break_all`` and ``reacquire``; collecting the generators runs the
    finally-clause outside task context and must not raise."""
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = SendUnlockedPolicy(bkl)
    reached = []

    def sender():
        yield from bkl.acquire("writer")

        def body():
            reached.append("sending")
            yield sim.timeout(us(100))  # never finishes: run stops below
            reached.append("sent")

        yield from policy.wire_send("send", body())
        bkl.release()

    sim.spawn(sender())
    # Run only until the send is in flight (the BKL is dropped), then
    # abandon everything — as a test harness dropping a wedged run does.
    sim.run(until=us(10))
    assert reached == ["sending"]
    assert not bkl.locked  # break_all dropped it for the send
    del sim, bkl, policy
    gc.collect()  # GeneratorExit through wire_send's finally: no errors


def test_gc_of_abandoned_simulation_with_held_lock():
    """Same, but the task is parked *inside* a bkl.hold body: the
    hold's finally must skip the release when current_task is None."""
    sim = Simulator()
    bkl = BigKernelLock(sim)

    def holder():
        def body():
            yield sim.timeout(us(100))

        yield from bkl.hold("holder", body())

    sim.spawn(holder())
    sim.run(until=us(10))
    assert bkl.locked
    del sim, bkl
    gc.collect()


def test_nolock_policy_passthrough():
    sim = Simulator()
    policy = NoLockPolicy()
    log = []

    def worker():
        def body():
            yield sim.timeout(us(1))
            return "x"

        result = yield from policy.wire_send("a", body())
        log.append(result)

        def body2():
            yield sim.timeout(us(1))
            return "y"

        result = yield from policy.critical("b", body2())
        log.append(result)

    sim.spawn(worker())
    sim.run()
    assert log == ["x", "y"]
