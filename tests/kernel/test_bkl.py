"""Tests for the BKL and the send-path lock policies."""

from repro.kernel import (
    BigKernelLock,
    NoLockPolicy,
    SendUnlockedPolicy,
    StockLockPolicy,
)
from repro.sim import Simulator
from repro.units import us


def test_break_all_and_reacquire():
    sim = Simulator()
    bkl = BigKernelLock(sim)
    log = []

    def owner():
        yield from bkl.acquire("outer")
        yield from bkl.acquire("inner")
        depth = bkl.break_all()
        assert depth == 2
        assert not bkl.locked
        yield sim.timeout(us(10))
        yield from bkl.reacquire(depth, "back")
        assert bkl.depth == 2
        log.append("reacquired")
        bkl.release()
        bkl.release()
        assert not bkl.locked

    sim.spawn(owner())
    sim.run()
    assert log == ["reacquired"]


def test_break_all_by_non_owner_is_noop():
    sim = Simulator()
    bkl = BigKernelLock(sim)

    def holder():
        yield from bkl.acquire("h")
        yield sim.timeout(us(10))
        bkl.release()

    def other():
        yield sim.timeout(us(1))
        assert bkl.break_all() == 0
        yield from bkl.reacquire(0, "nothing")  # no-op

    sim.spawn(holder())
    sim.spawn(other())
    sim.run()


def test_stock_policy_serialises_sends_against_lock_holders():
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = StockLockPolicy(bkl)
    send_done = []

    def hog():
        yield from bkl.acquire("hog")
        yield sim.timeout(us(100))
        bkl.release()

    def sender():
        yield sim.timeout(us(1))

        def body():
            yield sim.timeout(us(10))

        yield from policy.wire_send("send", body())
        send_done.append(sim.now)

    sim.spawn(hog())
    sim.spawn(sender())
    sim.run()
    # The send had to wait for the 100 µs lock hold.
    assert send_done == [us(110)]


def test_unlocked_policy_sends_without_the_lock():
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = SendUnlockedPolicy(bkl)
    log = []

    def sender():
        yield from bkl.acquire("writer")

        def body():
            assert not bkl.held_by_current()
            log.append("sent unlocked")
            yield sim.timeout(us(10))

        yield from policy.wire_send("send", body())
        assert bkl.held_by_current()
        assert bkl.depth == 1
        bkl.release()

    sim.spawn(sender())
    sim.run()
    assert log == ["sent unlocked"]


def test_unlocked_policy_allows_writer_progress_during_send():
    """The paper's fix: another thread can take the BKL while a send is
    in flight."""
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = SendUnlockedPolicy(bkl)
    progress = []

    def daemon():
        yield from bkl.acquire("daemon")

        def body():
            yield sim.timeout(us(100))  # long sock_sendmsg

        yield from policy.wire_send("daemon-send", body())
        bkl.release()

    def writer():
        yield sim.timeout(us(5))
        yield from bkl.acquire("writer")
        progress.append(sim.now)
        bkl.release()

    sim.spawn(daemon())
    sim.spawn(writer())
    sim.run()
    # Writer got the lock during the send, not after it.
    assert progress[0] < us(100)


def test_stock_policy_blocks_writer_during_send():
    sim = Simulator()
    bkl = BigKernelLock(sim)
    policy = StockLockPolicy(bkl)
    progress = []

    def daemon():
        yield from bkl.acquire("daemon")

        def body():
            yield sim.timeout(us(100))

        yield from policy.wire_send("daemon-send", body())
        bkl.release()

    def writer():
        yield sim.timeout(us(5))
        yield from bkl.acquire("writer")
        progress.append(sim.now)
        bkl.release()

    sim.spawn(daemon())
    sim.spawn(writer())
    sim.run()
    assert progress[0] >= us(100)


def test_nolock_policy_passthrough():
    sim = Simulator()
    policy = NoLockPolicy()
    log = []

    def worker():
        def body():
            yield sim.timeout(us(1))
            return "x"

        result = yield from policy.wire_send("a", body())
        log.append(result)

        def body2():
            yield sim.timeout(us(1))
            return "y"

        result = yield from policy.critical("b", body2())
        log.append(result)

    sim.spawn(worker())
    sim.run()
    assert log == ["x", "y"]
