"""Tests for dirty-memory accounting and writer throttling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ResourceError
from repro.kernel import PageCache
from repro.sim import Simulator
from repro.units import us


def test_charge_and_uncharge():
    sim = Simulator()
    pc = PageCache(sim, dirty_limit_bytes=100, background_bytes=50)

    def writer():
        yield from pc.charge(60)
        assert pc.dirty_bytes == 60
        pc.uncharge(10)
        assert pc.dirty_bytes == 50

    sim.spawn(writer())
    sim.run()
    assert pc.peak_dirty == 60


def test_writer_throttles_at_dirty_limit():
    sim = Simulator()
    pc = PageCache(sim, dirty_limit_bytes=100, background_bytes=50)
    done = []

    def writer():
        yield from pc.charge(100)
        yield from pc.charge(20)  # must wait for uncharge
        done.append(sim.now)

    def cleaner():
        yield sim.timeout(us(100))
        pc.uncharge(50)

    sim.spawn(writer())
    sim.spawn(cleaner())
    sim.run()
    assert done == [us(100)]
    assert pc.throttled_count == 1
    assert pc.throttled_ns == us(100)


def test_pressure_listener_fires_over_background():
    sim = Simulator()
    pc = PageCache(sim, dirty_limit_bytes=100, background_bytes=50)
    kicks = []
    pc.on_pressure(lambda: kicks.append(sim.now))

    def writer():
        yield from pc.charge(40)
        assert kicks == []
        yield from pc.charge(40)  # crosses background threshold
        assert kicks

    sim.spawn(writer())
    sim.run()


def test_pressure_fires_while_blocked():
    sim = Simulator()
    pc = PageCache(sim, dirty_limit_bytes=100, background_bytes=50)
    kicks = []
    pc.on_pressure(lambda: kicks.append(sim.now))

    def writer():
        yield from pc.charge(100)
        yield from pc.charge(1)

    def cleaner():
        yield sim.timeout(us(10))
        pc.uncharge(100)

    sim.spawn(writer())
    sim.spawn(cleaner())
    sim.run()
    assert kicks  # blocked charge kicked write-back
    assert pc.dirty_bytes == 1


def test_bad_values_rejected():
    sim = Simulator()
    with pytest.raises(ResourceError):
        PageCache(sim, dirty_limit_bytes=0, background_bytes=0)
    with pytest.raises(ResourceError):
        PageCache(sim, dirty_limit_bytes=10, background_bytes=20)
    pc = PageCache(sim, dirty_limit_bytes=100, background_bytes=10)
    with pytest.raises(ResourceError):
        pc.uncharge(1)


@given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=25))
@settings(max_examples=50, deadline=None)
def test_dirty_bytes_never_exceed_limit(chunks):
    sim = Simulator()
    pc = PageCache(sim, dirty_limit_bytes=64, background_bytes=32)
    observed = []

    def writer():
        for chunk in chunks:
            yield from pc.charge(min(chunk, 64))
            observed.append(pc.dirty_bytes)

    def cleaner():
        while True:
            yield sim.timeout(us(5))
            if pc.dirty_bytes:
                pc.uncharge(pc.dirty_bytes)

    sim.spawn(writer())
    sim.spawn(cleaner(), daemon=True)
    sim.run(until=us(10_000))
    assert all(v <= 64 for v in observed)
    assert len(observed) == len(chunks)
