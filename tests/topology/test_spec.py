"""Spec validation: kinds, config matching, legacy conversion."""

import pytest

from repro.config import FilerConfig, LinuxServerConfig, LocalFsConfig
from repro.errors import ConfigError
from repro.topology import SERVER_KINDS, ClientSpec, ServerSpec


def test_server_kinds_match_testbed():
    from repro.bench import SERVER_KINDS as BENCH_KINDS

    assert SERVER_KINDS == BENCH_KINDS == ("netapp", "linux", "linux-100", "local")


def test_unknown_kind_rejected():
    with pytest.raises(ConfigError, match="unknown server kind"):
        ServerSpec(kind="solaris")


@pytest.mark.parametrize(
    "kind,good,bad",
    [
        ("netapp", FilerConfig(), LinuxServerConfig()),
        ("linux", LinuxServerConfig(), FilerConfig()),
        ("linux-100", LinuxServerConfig(), LocalFsConfig()),
        ("local", LocalFsConfig(), FilerConfig()),
    ],
)
def test_config_type_must_match_kind(kind, good, bad):
    assert ServerSpec(kind, good).config is good
    with pytest.raises(ConfigError, match="takes a"):
        ServerSpec(kind, bad)


def test_from_legacy_picks_the_matching_config():
    filer = FilerConfig(nvram_bytes=4_000_000)
    spec = ServerSpec.from_legacy("netapp", filer_config=filer)
    assert spec.kind == "netapp" and spec.config is filer
    linux = LinuxServerConfig(write_gathering=True)
    assert ServerSpec.from_legacy("linux-100", linux_config=linux).config is linux
    assert ServerSpec.from_legacy("linux").config is None


def test_from_legacy_rejects_mismatched_kwarg():
    # The old TestBed silently ignored these; now the error names the
    # ServerSpec replacement.
    with pytest.raises(ConfigError, match=r"server=ServerSpec\('linux'"):
        ServerSpec.from_legacy("linux", filer_config=FilerConfig())
    with pytest.raises(ConfigError, match="local_config is ignored"):
        ServerSpec.from_legacy("netapp", local_config=LocalFsConfig())
    with pytest.raises(ConfigError, match="unknown target"):
        ServerSpec.from_legacy("ramdisk")


def test_client_spec_validation():
    with pytest.raises(ConfigError, match="server index"):
        ClientSpec(server=-1)
    with pytest.raises(ConfigError, match="start_offset_ns"):
        ClientSpec(start_offset_ns=-1)
    with pytest.raises(ConfigError, match="chunk_bytes"):
        ClientSpec(chunk_bytes=-4096)


def test_replicate_builds_homogeneous_fleets():
    specs = ClientSpec(client="enhanced").replicate(5)
    assert len(specs) == 5
    assert all(s.client == "enhanced" for s in specs)
    with pytest.raises(ConfigError, match="count"):
        ClientSpec().replicate(0)


def test_specs_are_picklable_and_fingerprintable():
    import pickle

    from repro.cache import fingerprint
    from repro.topology import FleetJobSpec

    spec = FleetJobSpec.homogeneous(3, target="linux", file_bytes=1 << 20)
    assert pickle.loads(pickle.dumps(spec)) == spec
    assert fingerprint(spec) == fingerprint(pickle.loads(pickle.dumps(spec)))
    other = FleetJobSpec.homogeneous(4, target="linux", file_bytes=1 << 20)
    assert fingerprint(spec) != fingerprint(other)
