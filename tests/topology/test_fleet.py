"""Fleet workloads: concurrency, staggering, fairness, cache roundtrip."""

import pytest

from repro.errors import ConfigError
from repro.parallel.executor import result_from_payload
from repro.topology import (
    ClientSpec,
    FleetJobSpec,
    FleetWorkload,
    ServerSpec,
    Topology,
    run_fleet_job,
)
from repro.units import KIB, us

FILE = 128 * KIB


def test_fleet_runs_every_client_to_completion():
    topo = Topology(clients=4)
    fleet = FleetWorkload(topo, FILE).run()
    assert len(fleet.clients) == 4
    assert fleet.total_bytes == 4 * FILE
    assert all(c.result.file_bytes == FILE for c in fleet.clients)
    # Everything landed on the one server (file data plus RPC headers).
    assert topo.server().bytes_received >= 4 * FILE
    assert fleet.span_ns > 0
    assert 0.0 < fleet.fairness <= 1.0
    assert "4 client(s)" in fleet.summary()


def test_identical_clients_share_fairly():
    topo = Topology(clients=4)
    fleet = FleetWorkload(topo, FILE).run()
    assert fleet.fairness >= 0.95
    shares = fleet.servers[0]["ingest_shares"]
    assert set(shares) == {"client0", "client1", "client2", "client3"}
    assert sum(shares.values()) == pytest.approx(1.0)
    # Emergent FIFO fairness: every client near 1/4 of the ingest.
    for share in shares.values():
        assert share == pytest.approx(0.25, abs=0.05)


def test_contention_beats_one_client_but_not_linearly():
    solo = FleetWorkload(Topology(clients=1), FILE).run()
    quad = FleetWorkload(Topology(clients=4), FILE).run()
    assert quad.aggregate_mbps > solo.aggregate_mbps
    assert quad.aggregate_mbps < 4 * solo.aggregate_mbps
    # The contended port actually queued frames.
    assert quad.servers[0]["downlink_queue_ns"] > solo.servers[0]["downlink_queue_ns"]


def test_stagger_shifts_start_times():
    topo = Topology(clients=3)
    fleet = FleetWorkload(topo, FILE, stagger_ns=us(500)).run()
    starts = [c.start_ns for c in fleet.clients]
    assert starts == [0, us(500), us(1000)]


def test_spec_start_offset_adds_to_stagger():
    topo = Topology(
        clients=(ClientSpec(), ClientSpec(start_offset_ns=us(100)))
    )
    fleet = FleetWorkload(topo, FILE, stagger_ns=us(500)).run()
    assert [c.start_ns for c in fleet.clients] == [0, us(600)]


def test_per_client_chunk_override_mixes_write_sizes():
    topo = Topology(
        clients=(ClientSpec(), ClientSpec(chunk_bytes=32 * KIB))
    )
    fleet = FleetWorkload(topo, FILE, chunk_bytes=8 * KIB).run()
    assert fleet.clients[0].result.chunk_bytes == 8 * KIB
    assert fleet.clients[1].result.chunk_bytes == 32 * KIB
    # Fewer, larger write() calls for the override client.
    assert len(fleet.clients[1].result.trace) < len(fleet.clients[0].result.trace)


def test_split_fleet_across_two_servers():
    topo = Topology(
        clients=(
            ClientSpec(server=0),
            ClientSpec(server=0),
            ClientSpec(server=1),
        ),
        servers=(ServerSpec("netapp"), ServerSpec("linux")),
    )
    fleet = FleetWorkload(topo, FILE).run()
    assert [row["name"] for row in fleet.servers] == ["netapp-f85", "linux-nfsd"]
    filer, knfsd = fleet.servers
    assert set(filer["ingest_shares"]) == {"client0", "client1"}
    assert set(knfsd["ingest_shares"]) == {"client2"}
    assert knfsd["ingest_shares"]["client2"] == pytest.approx(1.0)


def test_workload_validates_inputs():
    topo = Topology(clients=1)
    with pytest.raises(ConfigError, match="file_bytes"):
        FleetWorkload(topo, 0)
    with pytest.raises(ConfigError, match="stagger_ns"):
        FleetWorkload(topo, FILE, stagger_ns=-1)


def test_time_limit_stops_a_runaway_fleet():
    from repro.errors import SimulationError

    topo = Topology(clients=2)
    with pytest.raises(SimulationError, match="time limit"):
        FleetWorkload(topo, FILE).run(time_limit_ns=us(1))


def test_point_result_payload_roundtrip():
    point = run_fleet_job(FleetJobSpec.homogeneous(2, file_bytes=FILE))
    payload = point.to_payload()
    assert payload["__kind__"] == "fleet"
    revived = result_from_payload(payload)
    assert type(revived).__name__ == "FleetPointResult"
    assert revived.run_fingerprint() == point.run_fingerprint()
    assert revived.aggregate_mbps == point.aggregate_mbps
    assert revived.fairness == point.fairness
    assert revived.client_mbps() == point.client_mbps()


def test_unknown_payload_kind_is_an_error():
    with pytest.raises(ConfigError, match="unknown kind"):
        result_from_payload({"__kind__": "warp-drive"})


def test_legacy_payload_without_kind_is_a_point_result():
    payload = {
        "file_bytes": FILE,
        "chunk_bytes": 8192,
        "write_elapsed_ns": 1000,
        "flush_elapsed_ns": 2000,
        "close_elapsed_ns": 3000,
        "events_processed": 42,
        "latency_starts_ns": [],
        "latencies_ns": [],
    }
    revived = result_from_payload(payload)
    assert type(revived).__name__ == "PointResult"
    assert revived.file_bytes == FILE
