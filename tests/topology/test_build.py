"""Topology assembly: ports, naming, multi-server wiring."""

import pytest

from repro.config import FilerConfig, MountConfig
from repro.errors import ConfigError
from repro.topology import ClientSpec, ServerSpec, Topology
from repro.units import KIB


def test_int_clients_builds_homogeneous_fleet():
    topo = Topology(clients=4)
    assert len(topo.clients) == 4
    names = [stack.name for stack in topo.clients]
    assert names == ["client0", "client1", "client2", "client3"]
    # Every host plus the server own a switch port, in attachment order.
    port_names = [p.name for p in topo.switch.ports()]
    assert port_names == names + ["netapp-f85"]
    assert len(topo.switch) == 5


def test_single_client_keeps_historical_name():
    topo = Topology(clients=1)
    assert topo.client().name == "client"
    assert topo.client().target == "netapp"


def test_client_names_can_be_explicit_and_must_be_unique():
    topo = Topology(
        clients=(ClientSpec(name="alice"), ClientSpec(name="bob"))
    )
    assert [s.name for s in topo.clients] == ["alice", "bob"]
    with pytest.raises(ConfigError, match="already attached"):
        Topology(clients=(ClientSpec(name="alice"), ClientSpec(name="alice")))


def test_server_index_out_of_range_rejected():
    with pytest.raises(ConfigError, match="only 1 server"):
        Topology(clients=(ClientSpec(server=1),))


def test_local_kind_builds_ext2_without_server():
    topo = Topology(clients=1, servers=(ServerSpec("local"),))
    stack = topo.client()
    assert stack.ext2 is not None
    assert stack.nfs is None
    assert topo.server() is None
    assert stack.target == "local"
    # Only the client host is on the switch — no server port.
    assert [p.name for p in topo.switch.ports()] == ["client"]


def test_duplicate_server_names_get_index_suffix():
    topo = Topology(
        clients=(ClientSpec(server=0), ClientSpec(server=1)),
        servers=(ServerSpec("netapp"), ServerSpec("netapp")),
    )
    server_names = [s.name for s in topo.servers]
    assert server_names == ["netapp-f85", "netapp-f85-1"]
    # Each client mounts the server its spec points at.
    assert topo.client(0).server is topo.server(0)
    assert topo.client(1).server is topo.server(1)
    assert topo.client(0).nfs.xprt.server != topo.client(1).nfs.xprt.server


def test_explicit_server_name_overrides_config_name():
    topo = Topology(
        clients=1, servers=(ServerSpec("netapp", FilerConfig(), name="filer-a"),)
    )
    assert topo.server().name == "filer-a"
    assert topo.switch.port("filer-a") is not None


def test_empty_topology_rejected():
    with pytest.raises(ConfigError, match="at least one client"):
        Topology(clients=())
    with pytest.raises(ConfigError, match="at least one server"):
        Topology(clients=1, servers=())


def test_per_client_mount_and_variant():
    topo = Topology(
        clients=(
            ClientSpec(client="stock"),
            ClientSpec(client="enhanced", mount=MountConfig(wsize=32768)),
        )
    )
    assert topo.client(0).client_config != topo.client(1).client_config
    assert topo.client(1).mount.wsize == 32768


def test_run_sequential_write_targets_one_client():
    topo = Topology(clients=2)
    result = topo.run_sequential_write(64 * KIB, client=1)
    assert result.file_bytes == 64 * KIB
    # Only client1's file landed on the server.
    assert topo.server().bytes_received >= 64 * KIB
    assert topo.client(0).syscalls.write_calls == 0
