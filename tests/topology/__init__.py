"""Topology API tests."""
