"""Multi-client determinism: one spec, one outcome — everywhere.

The fleet contract mirrors the single-client one: the same
:class:`FleetJobSpec` must reduce to the same content hash whether it
runs in-process, through a process pool, out of a warm result cache, or
under observers/sanitizers.  Per-link faults must perturb the run — and
perturb it identically every time.
"""

import hashlib

from repro.analysis.sanitize.runtime import sanitized
from repro.cache import ResultCache
from repro.faults.link import DropFrames
from repro.obs.core import observed
from repro.parallel.executor import SweepExecutor
from repro.topology import (
    FleetJobSpec,
    FleetWorkload,
    Topology,
    reduce_fleet,
    run_fleet_job,
)
from repro.units import KIB

SPEC = FleetJobSpec.homogeneous(3, file_bytes=192 * KIB)


def test_same_spec_same_fingerprint_across_runs():
    first = run_fleet_job(SPEC)
    second = run_fleet_job(SPEC)
    assert first.run_fingerprint() == second.run_fingerprint()
    assert first.events_processed == second.events_processed


def test_pool_and_cache_modes_bit_identical(tmp_path):
    specs = [
        FleetJobSpec.homogeneous(n, file_bytes=128 * KIB) for n in (1, 2, 3)
    ]
    serial = [p.run_fingerprint() for p in SweepExecutor(jobs=1).map(specs)]
    pooled = [p.run_fingerprint() for p in SweepExecutor(jobs=2).map(specs)]
    assert pooled == serial

    cache = ResultCache(tmp_path)
    cold = [
        p.run_fingerprint() for p in SweepExecutor(jobs=1, cache=cache).map(specs)
    ]
    warm = [
        p.run_fingerprint() for p in SweepExecutor(jobs=1, cache=cache).map(specs)
    ]
    assert cold == serial
    assert warm == serial
    assert cache.hits == len(specs)


def test_fleet_unperturbed_by_observers_and_sanitizers():
    baseline = run_fleet_job(SPEC).run_fingerprint()
    with observed():
        assert run_fleet_job(SPEC).run_fingerprint() == baseline
    with sanitized():
        assert run_fleet_job(SPEC).run_fingerprint() == baseline
    # Both at once — the CLI's --sanitize path.
    with observed():
        with sanitized():
            assert run_fleet_job(SPEC).run_fingerprint() == baseline


def _faulted_fingerprint(drop_frames):
    topo = Topology(clients=3)
    if drop_frames:
        topo.switch.install_fault("client1", uplink=DropFrames(drop_frames))
    fleet = FleetWorkload(topo, 192 * KIB).run()
    return reduce_fleet(fleet).run_fingerprint()


def test_per_link_fault_perturbs_one_client_deterministically():
    clean = _faulted_fingerprint(None)
    faulted = _faulted_fingerprint([4, 5, 6])
    assert faulted != clean, "dropped frames left no trace"
    assert _faulted_fingerprint([4, 5, 6]) == faulted
    # A different shot pattern is a different — still deterministic — run.
    other = _faulted_fingerprint([10])
    assert other != faulted
    assert _faulted_fingerprint([10]) == other


def test_faulted_client_pays_while_the_others_dont():
    topo = Topology(clients=3)
    clean = FleetWorkload(topo, 192 * KIB).run()
    topo2 = Topology(clients=3)
    topo2.switch.install_fault("client1", uplink=DropFrames(range(4, 12)))
    faulted = FleetWorkload(topo2, 192 * KIB).run()
    # client1 retransmits through its major timeout; the victims' own
    # close paths shift only through shared-server scheduling.
    assert (
        faulted.clients[1].result.close_elapsed_ns
        > clean.clients[1].result.close_elapsed_ns
    )


def test_run_fingerprint_is_sha256_of_payload():
    point = run_fleet_job(FleetJobSpec.homogeneous(1, file_bytes=64 * KIB))
    digest = point.run_fingerprint()
    assert len(digest) == 64
    int(digest, 16)  # hex
    # Stable against payload key ordering; hashes the simulated outcome
    # only — events_processed is engine bookkeeping, not behaviour, and
    # sharded runs may dispatch differently while matching the digest.
    import json

    payload = point.to_payload()
    payload.pop("events_processed")
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert digest == hashlib.sha256(blob.encode()).hexdigest()
