"""TestBed is a shim over a 1-client Topology — same surface, same bits."""

import pytest

from repro.bench import TestBed
from repro.config import FilerConfig, LinuxServerConfig, NetConfig
from repro.errors import ConfigError
from repro.topology import ServerSpec, Topology
from repro.units import KIB


def _result_tuple(result):
    return (
        result.write_elapsed_ns,
        result.flush_elapsed_ns,
        result.close_elapsed_ns,
        tuple(result.trace.latencies_ns),
    )


def test_testbed_exposes_historical_surface():
    bed = TestBed(target="netapp")
    for attr in (
        "target",
        "hw",
        "net",
        "mount",
        "client_config",
        "sim",
        "switch",
        "client_host",
        "pagecache",
        "server",
        "nfs",
        "ext2",
        "syscalls",
        "profiler",
        "sanitizer",
        "obs",
    ):
        assert hasattr(bed, attr), attr
    assert bed.target == "netapp"
    assert bed.nfs is not None and bed.ext2 is None
    assert bed.client_host.name == "client"


def test_testbed_accepts_server_spec():
    filer = FilerConfig(nvram_bytes=2 * 1024 * 1024)
    bed = TestBed(server=ServerSpec("netapp", filer))
    assert bed.server.config is filer
    assert bed.target == "netapp"


def test_server_and_legacy_kwargs_conflict():
    with pytest.raises(ConfigError, match="not both"):
        TestBed(server=ServerSpec("netapp"), filer_config=FilerConfig())


def test_target_must_agree_with_server_kind():
    with pytest.raises(ConfigError, match="contradicts"):
        TestBed(target="linux", server=ServerSpec("netapp"))
    # Matching target is fine.
    assert TestBed(target="linux", server=ServerSpec("linux")).target == "linux"


def test_server_must_be_a_server_spec():
    with pytest.raises(ConfigError, match="must be a ServerSpec"):
        TestBed(server=FilerConfig())


def test_legacy_kwargs_warn_but_work():
    with pytest.warns(DeprecationWarning, match="ServerSpec"):
        bed = TestBed(target="linux", linux_config=LinuxServerConfig())
    assert bed.target == "linux"


def test_mismatched_legacy_kwarg_is_an_error():
    # The old TestBed silently ignored a filer_config on a linux target.
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ConfigError, match="ignored by target"):
            TestBed(target="linux", filer_config=FilerConfig())


def test_testbed_bit_identical_to_one_client_topology():
    for target in ("netapp", "linux", "local"):
        bed = TestBed(target=target)
        via_shim = _result_tuple(bed.run_sequential_write(256 * KIB))
        topo = Topology(clients=1, servers=(ServerSpec(target),))
        with pytest.warns(DeprecationWarning, match="run_workload"):
            direct = _result_tuple(topo.run_sequential_write(256 * KIB))
        assert via_shim == direct, target


#: The shim's exact timings, pinned: (write, flush, close elapsed ns,
#: first 16 hex chars of the latency-trace digest).  These are the
#: bit-for-bit compatibility contract for the deprecated
#: ``run_sequential_write`` surface across the workload-registry
#: redesign — a change here is a behaviour change, not a refactor.
PINNED_SEQUENTIAL_WRITE = {
    "netapp": (2440562, 7413023, 7419023, "a009e2a97c2fef4d"),
    "linux": (2190443, 21520083, 21526083, "37fe3c5af29141f8"),
}


def _pin_tuple(result):
    import hashlib

    digest = hashlib.sha256(
        repr(tuple(result.trace.latencies_ns)).encode()
    ).hexdigest()[:16]
    return (
        result.write_elapsed_ns,
        result.flush_elapsed_ns,
        result.close_elapsed_ns,
        digest,
    )


def test_deprecated_shim_fingerprints_pinned():
    for target, pinned in PINNED_SEQUENTIAL_WRITE.items():
        topo = Topology(clients=1, servers=(ServerSpec(target),))
        with pytest.warns(DeprecationWarning):
            result = topo.run_sequential_write(256 * KIB)
        assert _pin_tuple(result) == pinned, target


def test_run_workload_matches_deprecated_shim():
    params = {"file_bytes": 256 * KIB, "file_name": "testfile"}
    for target, pinned in PINNED_SEQUENTIAL_WRITE.items():
        topo = Topology(clients=1, servers=(ServerSpec(target),))
        result = topo.run_workload("sequential-write", params)
        assert _pin_tuple(result) == pinned, target


#: A 4-client netapp fleet's reduced fingerprint, pinned across the
#: workload-registry redesign (verified identical to the pre-registry
#: FleetWorkload writer).
PINNED_FLEET_FINGERPRINT = (
    "6762011a3ba78f15af2faf70607c64a3842872424441992821d320a2fe8dc622"
)


def test_fleet_fingerprint_pinned():
    from repro.topology import FleetJobSpec, run_fleet_job

    spec = FleetJobSpec.homogeneous(4, target="netapp", file_bytes=96 * KIB)
    assert run_fleet_job(spec).run_fingerprint() == PINNED_FLEET_FINGERPRINT


def test_fleet_client_body_shim_matches_registry():
    """The legacy per-client writer generator is a bit-identical shim."""
    from repro.bench.workloads import client_workload_body, get_workload
    from repro.topology.fleet import fleet_client_body

    def run(body_factory):
        topo = Topology(clients=1, servers=(ServerSpec("netapp"),))
        stack = topo.clients[0]
        task = topo.sim.spawn(body_factory(stack), daemon=True)
        topo.sim.run_until(lambda: task.done)
        assert task.error is None
        return task.result

    legacy = run(
        lambda stack: fleet_client_body(stack, 0, 8192, 96 * KIB, True)
    )
    workload = get_workload(
        "sequential-write", {"file_bytes": 96 * KIB, "chunk_bytes": 8192}
    )
    registry = run(lambda stack: client_workload_body(stack, workload))
    assert legacy[0] == registry[0] and legacy[1] == registry[1]
    assert _result_tuple(legacy[2]) == _result_tuple(registry[2])


def test_legacy_net_inheritance_reaches_the_server():
    # Historical behaviour: the server's port shared the client's
    # NetConfig; a slow client link slows the server's downlink too.
    slow = NetConfig.fast_ethernet()
    bed = TestBed(target="netapp", net=slow)
    assert bed.switch.port(bed.server.name).net == slow
    # But an explicit ServerSpec keeps its own default link.
    bed2 = TestBed(net=slow, server=ServerSpec("netapp"))
    assert bed2.switch.port(bed2.server.name).net != slow
