"""TestBed is a shim over a 1-client Topology — same surface, same bits."""

import pytest

from repro.bench import TestBed
from repro.config import FilerConfig, LinuxServerConfig, NetConfig
from repro.errors import ConfigError
from repro.topology import ServerSpec, Topology
from repro.units import KIB


def _result_tuple(result):
    return (
        result.write_elapsed_ns,
        result.flush_elapsed_ns,
        result.close_elapsed_ns,
        tuple(result.trace.latencies_ns),
    )


def test_testbed_exposes_historical_surface():
    bed = TestBed(target="netapp")
    for attr in (
        "target",
        "hw",
        "net",
        "mount",
        "client_config",
        "sim",
        "switch",
        "client_host",
        "pagecache",
        "server",
        "nfs",
        "ext2",
        "syscalls",
        "profiler",
        "sanitizer",
        "obs",
    ):
        assert hasattr(bed, attr), attr
    assert bed.target == "netapp"
    assert bed.nfs is not None and bed.ext2 is None
    assert bed.client_host.name == "client"


def test_testbed_accepts_server_spec():
    filer = FilerConfig(nvram_bytes=2 * 1024 * 1024)
    bed = TestBed(server=ServerSpec("netapp", filer))
    assert bed.server.config is filer
    assert bed.target == "netapp"


def test_server_and_legacy_kwargs_conflict():
    with pytest.raises(ConfigError, match="not both"):
        TestBed(server=ServerSpec("netapp"), filer_config=FilerConfig())


def test_target_must_agree_with_server_kind():
    with pytest.raises(ConfigError, match="contradicts"):
        TestBed(target="linux", server=ServerSpec("netapp"))
    # Matching target is fine.
    assert TestBed(target="linux", server=ServerSpec("linux")).target == "linux"


def test_server_must_be_a_server_spec():
    with pytest.raises(ConfigError, match="must be a ServerSpec"):
        TestBed(server=FilerConfig())


def test_legacy_kwargs_warn_but_work():
    with pytest.warns(DeprecationWarning, match="ServerSpec"):
        bed = TestBed(target="linux", linux_config=LinuxServerConfig())
    assert bed.target == "linux"


def test_mismatched_legacy_kwarg_is_an_error():
    # The old TestBed silently ignored a filer_config on a linux target.
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ConfigError, match="ignored by target"):
            TestBed(target="linux", filer_config=FilerConfig())


def test_testbed_bit_identical_to_one_client_topology():
    for target in ("netapp", "linux", "local"):
        bed = TestBed(target=target)
        via_shim = _result_tuple(bed.run_sequential_write(256 * KIB))
        topo = Topology(clients=1, servers=(ServerSpec(target),))
        direct = _result_tuple(topo.run_sequential_write(256 * KIB))
        assert via_shim == direct, target


def test_legacy_net_inheritance_reaches_the_server():
    # Historical behaviour: the server's port shared the client's
    # NetConfig; a slow client link slows the server's downlink too.
    slow = NetConfig.fast_ethernet()
    bed = TestBed(target="netapp", net=slow)
    assert bed.switch.port(bed.server.name).net == slow
    # But an explicit ServerSpec keeps its own default link.
    bed2 = TestBed(net=slow, server=ServerSpec("netapp"))
    assert bed2.switch.port(bed2.server.name).net != slow
