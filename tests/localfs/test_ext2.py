"""Tests for the local ext2 + bdflush model."""

from repro.bench import TestBed
from repro.config import ClientHwConfig, LocalFsConfig, scaled
from repro.units import MB, PAGE_SIZE, seconds


def run_local(nbytes, hw=None, do_fsync=True, local_config=None):
    bed = TestBed(target="local", client="stock", hw=hw, local_config=local_config)
    result = bed.run_sequential_write(nbytes, do_fsync=do_fsync)
    return bed, result


def test_memory_speed_writes_within_cache():
    bed, result = run_local(10 * MB, do_fsync=False)
    # 10 MB untouched by the 15 MB/s disk: far faster than disk speed.
    assert result.write_mbps > 100


def test_close_leaves_dirty_data_cached():
    """§2.3: ext2 does not flush on close."""
    bed, result = run_local(10 * MB, do_fsync=False)
    assert bed.pagecache.dirty_bytes > 0
    # write and close throughput nearly identical - close did no I/O.
    assert result.close_mbps > 0.9 * result.write_mbps


def test_fsync_forces_disk_writeback():
    bed, result = run_local(10 * MB, do_fsync=True)
    file = next(iter(bed.ext2._files.values()))
    assert not file.dirty_pages
    assert bed.ext2.disk.bytes_written >= 10 * MB
    # Flush throughput collapses toward disk speed.
    assert result.flush_mbps < 20
    assert result.write_mbps > 5 * result.flush_mbps


def test_writer_throttles_once_cache_full():
    hw = scaled(ClientHwConfig(), 16)  # 16 MB client
    bed, result = run_local(30 * MB, hw=hw, do_fsync=False)
    assert bed.pagecache.throttled_count > 0
    assert bed.pagecache.peak_dirty <= hw.dirty_limit_bytes
    # Cumulative write throughput degrades toward disk speed.
    assert result.write_mbps < 60


def test_bdflush_starts_at_background_threshold():
    hw = scaled(ClientHwConfig(), 8)  # 32 MB client, background ~8 MB
    bed, result = run_local(12 * MB, hw=hw, do_fsync=False)
    # The benchmark ends at memory speed; give bdflush simulated time to
    # drain the above-background dirty data it was kicked about.
    bed.sim.run_for(seconds(2))
    assert bed.ext2.pages_written_back > 0
    assert bed.pagecache.dirty_bytes < 12 * MB


def test_bdflush_idle_below_threshold():
    bed, result = run_local(1 * MB, do_fsync=False)
    assert bed.ext2.pages_written_back == 0


def test_overwrite_same_pages_does_not_recharge():
    bed = TestBed(target="local", client="stock")
    sim = bed.sim

    def body():
        file = yield from bed.ext2.open_new("f")
        yield from bed.syscalls.write(file, 8192)
        first = bed.pagecache.dirty_bytes
        file.pos = 0  # rewind and overwrite
        yield from bed.syscalls.write(file, 8192)
        return first, bed.pagecache.dirty_bytes

    task = sim.spawn(body())
    sim.run_until(lambda: task.done)
    first, second = task.result
    assert first == second == 2 * PAGE_SIZE


def test_disk_rate_config_respected():
    fast = LocalFsConfig(disk_bytes_per_sec=100 * MB)
    bed, result = run_local(10 * MB, do_fsync=True, local_config=fast)
    slow_bed, slow_result = run_local(10 * MB, do_fsync=True)
    assert result.flush_elapsed_ns < slow_result.flush_elapsed_ns
