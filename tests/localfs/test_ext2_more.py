"""Additional ext2 coverage: fsync/bdflush interplay, read-ahead."""

from repro.bench import TestBed
from repro.config import ClientHwConfig, scaled
from repro.units import MB, PAGE_SIZE, seconds


def drive(bed, gen):
    task = bed.sim.spawn(gen, daemon=True)
    bed.sim.run_until(lambda: task.done)
    if task.error:
        raise task.error
    return task.result


def test_fsync_concurrent_with_bdflush_completes():
    """fsync while bdflush is already writing the same file out."""
    hw = scaled(ClientHwConfig(), 8)
    bed = TestBed(target="local", client="stock", hw=hw)

    def body():
        file = yield from bed.ext2.open_new("f")
        remaining = 12 * MB  # crosses the background threshold
        while remaining:
            chunk = min(8192, remaining)
            yield from bed.syscalls.write(file, chunk)
            remaining -= chunk
        # bdflush is now racing; fsync must still drain everything.
        yield from bed.syscalls.fsync(file)
        return len(file.dirty_pages)

    assert drive(bed, body()) == 0
    assert bed.ext2.disk.bytes_written >= 12 * MB


def test_aged_pages_written_back_without_pressure():
    bed = TestBed(target="local", client="stock")

    def body():
        file = yield from bed.ext2.open_new("f")
        yield from bed.syscalls.write(file, 64 * 1024)
        # Far below the background threshold: only ageing flushes it.
        yield bed.sim.timeout(seconds(35))
        return bed.ext2.pages_written_back

    written = drive(bed, body())
    assert written == 16  # 64 KiB = 16 pages


def test_ext2_readahead_batches_disk_reads():
    bed = TestBed(target="local", client="stock")

    def body():
        file = yield from bed.ext2.open_new("f")
        remaining = 64 * PAGE_SIZE
        while remaining:
            yield from bed.syscalls.write(file, PAGE_SIZE)
            remaining -= PAGE_SIZE
        file.dirty_pages.clear()
        file.cached_pages.clear()
        bed.pagecache.uncharge(bed.pagecache.dirty_bytes)  # simulate eviction
        file.pos = 0
        ops_before = bed.ext2.disk.ops
        while (yield from bed.syscalls.read(file, PAGE_SIZE)):
            pass
        return bed.ext2.disk.ops - ops_before

    read_ops = drive(bed, body())
    assert read_ops == 2  # 64 pages / 32-page read-ahead


def test_disk_busy_accounting():
    bed = TestBed(target="local", client="stock")
    bed.run_sequential_write(1 * MB, do_fsync=True)
    disk = bed.ext2.disk
    assert disk.busy_ns > 0
    assert disk.ops >= 1
    assert disk.bytes_written >= 1 * MB
