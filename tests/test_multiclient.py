"""Multiple client machines against one server.

§2.1: NFS is "client makes right" — the server stays simple and
scalable.  Several independent client machines should saturate the
server's ingest rate, with the bottleneck visibly moving from client
scalability to server throughput.
"""

from repro.config import ClientHwConfig, NetConfig, NfsClientConfig
from repro.kernel import PageCache, SyscallLayer
from repro.net import Host, Switch
from repro.nfsclient import NfsClient
from repro.server import NetappFiler
from repro.sim import Simulator
from repro.units import MB, mbps

LAZY = NfsClientConfig(
    eager_flush_limits=False, hashtable_index=True, release_bkl_for_send=True
)


def build_world(nclients):
    sim = Simulator()
    switch = Switch(sim)
    net = NetConfig.gigabit()
    server = NetappFiler(sim, switch, net)
    hw = ClientHwConfig()
    clients = []
    for i in range(nclients):
        host = Host(sim, f"client{i}", switch, net, ncpus=hw.ncpus, costs=hw.costs)
        pagecache = PageCache(
            sim, hw.dirty_limit_bytes, hw.dirty_background_bytes,
            name=f"pc{i}",
        )
        nfs = NfsClient(host, pagecache, server=server.name, behavior=LAZY)
        clients.append((host, nfs, SyscallLayer(host)))
    return sim, server, clients


def run_writers(sim, clients, bytes_each):
    done = []

    def writer(nfs, syscalls, tag):
        file = yield from nfs.open_new(f"f{tag}")
        remaining = bytes_each
        while remaining > 0:
            chunk = min(8192, remaining)
            yield from syscalls.write(file, chunk)
            remaining -= chunk
        yield from syscalls.close(file)
        done.append(tag)

    start = sim.now
    for i, (_host, nfs, syscalls) in enumerate(clients):
        sim.spawn(writer(nfs, syscalls, i), daemon=True)
    sim.run_until(lambda: len(done) == len(clients))
    return sim.now - start


def test_clients_share_server_fairly_and_saturate_it():
    sim, server, clients = build_world(3)
    elapsed = run_writers(sim, clients, 3 * MB)
    total = 9 * MB
    agg = total / (elapsed / 1e9)
    # Aggregate end-to-end throughput lands at the server's ingest rate.
    assert 0.6 * mbps(38) < agg <= 1.1 * mbps(38)
    assert server.bytes_received == total
    sizes = sorted(f.size for f in server.files.values())
    assert sizes == [3 * MB] * 3


def test_one_client_vs_three_server_bound():
    sim1, _server1, clients1 = build_world(1)
    t1 = run_writers(sim1, clients1, 3 * MB)
    sim3, _server3, clients3 = build_world(3)
    t3 = run_writers(sim3, clients3, 3 * MB)
    # Three clients move 3x the data in roughly 3x the time: the server,
    # not the clients, is the bottleneck.
    assert t3 > 2.0 * t1
