"""Arrival-spec parsing and validation."""

import pytest

from repro.errors import ConfigError
from repro.traffic import ArrivalSpec, MixEntry, SizeSpec, parse_arrivals
from repro.units import ms


def test_defaults_round_trip():
    spec = ArrivalSpec()
    assert ArrivalSpec.from_dict(spec.to_dict()) == spec


def test_full_round_trip():
    spec = ArrivalSpec(
        process="mmpp",
        rate_per_s=40.0,
        burst_rate_per_s=400.0,
        mean_idle_ns=ms(20),
        mean_burst_ns=ms(10),
        duration_ns=ms(80),
        sizes=SizeSpec(dist="lognormal", bytes=65536, sigma=1.2),
        mix=(
            MixEntry(workload="sequential-write", weight=3.0),
            MixEntry(
                workload="database-fsync",
                weight=1.0,
                params=(("transactions", 20),),
            ),
        ),
        diurnal=(0.5, 1.0, 2.0),
        max_sessions=64,
    )
    assert ArrivalSpec.from_dict(spec.to_dict()) == spec


def test_compact_form_comma_separated():
    spec = parse_arrivals(
        "process=poisson,rate=40,duration_ms=100,dist=lognormal,"
        "bytes=131072,sigma=1.2,workload=database-fsync,"
        "diurnal=0.5/1.0/2.0"
    )
    assert spec.process == "poisson"
    assert spec.rate_per_s == 40.0
    assert spec.duration_ns == ms(100)
    assert spec.sizes.dist == "lognormal"
    assert spec.sizes.bytes == 131072
    assert spec.mix == (MixEntry(workload="database-fsync"),)
    assert spec.diurnal == (0.5, 1.0, 2.0)


def test_compact_form_space_separated():
    spec = parse_arrivals("rate=300 duration_ms=80 dist=fixed bytes=65536")
    assert spec.rate_per_s == 300.0
    assert spec.duration_ns == ms(80)
    assert spec.sizes.bytes == 65536


def test_compact_form_json():
    spec = parse_arrivals('{"process": "poisson", "rate_per_s": 25.0}')
    assert spec.rate_per_s == 25.0


def test_compact_rejects_unknown_key():
    with pytest.raises(ConfigError, match="unknown arrival spec key"):
        parse_arrivals("rate=40,bogus=1")


def test_compact_rejects_bad_value():
    with pytest.raises(ConfigError, match="bad value"):
        parse_arrivals("rate=fast")


def test_compact_rejects_bare_token():
    with pytest.raises(ConfigError, match="key=value"):
        parse_arrivals("poisson")


def test_empty_spec_rejected():
    with pytest.raises(ConfigError, match="empty"):
        parse_arrivals("   ")


def test_bad_json_rejected():
    with pytest.raises(ConfigError, match="bad arrival spec JSON"):
        parse_arrivals("{not json")


def test_unknown_dict_key_rejected():
    with pytest.raises(ConfigError, match="unknown"):
        ArrivalSpec.from_dict({"process": "poisson", "surprise": 1})


def test_unknown_process_rejected():
    with pytest.raises(ConfigError, match="process"):
        ArrivalSpec(process="periodic")


def test_mmpp_needs_burst_rate():
    with pytest.raises(ConfigError, match="burst_rate_per_s"):
        ArrivalSpec(process="mmpp")


def test_negative_rate_rejected():
    with pytest.raises(ConfigError, match="rate_per_s"):
        ArrivalSpec(rate_per_s=-1.0)


def test_empty_mix_rejected():
    with pytest.raises(ConfigError, match="mix"):
        ArrivalSpec(mix=())


def test_size_bounds_validated():
    with pytest.raises(ConfigError, match="min_bytes"):
        SizeSpec(min_bytes=1 << 20, max_bytes=4096)


def test_unknown_dist_rejected():
    with pytest.raises(ConfigError, match="dist"):
        SizeSpec(dist="zipf")
