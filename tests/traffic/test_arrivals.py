"""Fixed-seed stability of the arrival and size draws.

The pinned sequences below are the bit-reproducibility contract for
the traffic layer: any change to the draw layout (order, count, or
distribution of RNG consumption) shows up here before it silently
changes every open-loop fleet fingerprint.
"""

from repro.sim import RngStreams
from repro.traffic import ArrivalSpec, SizeSpec, arrival_times, draw_size
from repro.units import ms

SEED = 7


def _stream(name="traffic/client0/arrivals"):
    return RngStreams(SEED).stream(name)


def test_poisson_sequence_pinned():
    spec = ArrivalSpec(process="poisson", rate_per_s=200.0, duration_ns=ms(100))
    times = arrival_times(spec, _stream())
    assert len(times) == 13
    assert times[:5] == [53443, 2618975, 3295385, 5896899, 17556104]
    assert times == sorted(times)
    assert all(0 <= t < ms(100) for t in times)


def test_mmpp_sequence_pinned():
    spec = ArrivalSpec(
        process="mmpp",
        rate_per_s=50.0,
        burst_rate_per_s=800.0,
        mean_idle_ns=ms(30),
        mean_burst_ns=ms(10),
        duration_ns=ms(100),
    )
    times = arrival_times(spec, _stream())
    assert len(times) == 50
    assert times[:5] == [378903, 1003033, 2303115, 5371644, 5480193]


def test_diurnal_sequence_pinned():
    spec = ArrivalSpec(
        process="poisson",
        rate_per_s=200.0,
        duration_ns=ms(100),
        diurnal=(0.25, 1.0, 2.0),
    )
    times = arrival_times(spec, _stream())
    assert len(times) == 19
    assert times[:5] == [31700614, 40274234, 52789556, 54610998, 55057685]


def test_diurnal_shifts_load_toward_heavy_phase():
    spec = ArrivalSpec(
        process="poisson",
        rate_per_s=400.0,
        duration_ns=ms(90),
        diurnal=(0.25, 1.0, 4.0),
    )
    times = arrival_times(spec, _stream())
    third = ms(30)
    early = sum(1 for t in times if t < third)
    late = sum(1 for t in times if t >= 2 * third)
    assert late > early


def test_arrivals_deterministic_per_stream():
    spec = ArrivalSpec(process="poisson", rate_per_s=300.0, duration_ns=ms(50))
    assert arrival_times(spec, _stream()) == arrival_times(spec, _stream())
    # A different client's stream draws a different sample path.
    other = RngStreams(SEED).stream("traffic/client1/arrivals")
    assert arrival_times(spec, other) != arrival_times(spec, _stream())


def test_max_sessions_truncates():
    spec = ArrivalSpec(
        process="poisson", rate_per_s=2000.0, duration_ns=ms(100),
        max_sessions=5,
    )
    assert len(arrival_times(spec, _stream())) == 5


def test_lognormal_draws_pinned():
    sizes = SizeSpec(
        dist="lognormal", bytes=65536, sigma=1.0,
        min_bytes=4096, max_bytes=1 << 20,
    )
    rng = RngStreams(SEED).stream("traffic/client0/sizes")
    assert [draw_size(sizes, rng) for _ in range(4)] == [
        106067, 184835, 279297, 424778,
    ]


def test_pareto_draws_pinned():
    sizes = SizeSpec(
        dist="pareto", bytes=32768, alpha=1.5,
        min_bytes=4096, max_bytes=1 << 20,
    )
    rng = RngStreams(SEED).stream("traffic/client0/sizes")
    assert [draw_size(sizes, rng) for _ in range(4)] == [
        74103, 40276, 120170, 46493,
    ]


def test_fixed_draws_consume_no_randomness():
    sizes = SizeSpec(dist="fixed", bytes=131072)
    rng = RngStreams(SEED).stream("traffic/client0/sizes")
    before = rng.random()
    rng = RngStreams(SEED).stream("traffic/client0/sizes")
    assert draw_size(sizes, rng) == 131072
    assert rng.random() == before


def test_draws_respect_clamp():
    sizes = SizeSpec(
        dist="pareto", bytes=32768, alpha=1.1,
        min_bytes=16384, max_bytes=65536,
    )
    rng = RngStreams(SEED).stream("traffic/client0/sizes")
    draws = [draw_size(sizes, rng) for _ in range(200)]
    assert all(16384 <= d <= 65536 for d in draws)
