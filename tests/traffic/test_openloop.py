"""Open-loop session planning and the fleet equivalence contracts.

Three properties carry the PR: per-client plans are pure functions of
(spec, client, seed); an open-loop fleet reduces to the same
fingerprint serial and sharded — with faults active; and observing a
run changes nothing.
"""

import random

import pytest

from repro.faults.link import DropFrames, Duplicate
from repro.parallel.des import FleetFaults, run_sharded_fleet
from repro.topology import FleetJobSpec, run_fleet_job
from repro.traffic import ArrivalSpec, MixEntry, SizeSpec, plan_sessions
from repro.units import ms, us

ARRIVALS = ArrivalSpec(
    process="poisson",
    rate_per_s=150.0,
    duration_ns=ms(60),
    sizes=SizeSpec(
        dist="lognormal", bytes=49152, sigma=0.8,
        min_bytes=4096, max_bytes=262144,
    ),
)


def _fleet_spec(clients=3, arrivals=ARRIVALS, **kwargs):
    return FleetJobSpec.homogeneous(
        clients, target="netapp", arrivals=arrivals, **kwargs
    )


# -- planning -----------------------------------------------------------------


def test_plan_is_deterministic():
    a = plan_sessions(ARRIVALS, "client0", 1)
    b = plan_sessions(ARRIVALS, "client0", 1)
    assert a == b and len(a) > 0


def test_plan_varies_by_client_and_seed():
    base = plan_sessions(ARRIVALS, "client0", 1)
    assert plan_sessions(ARRIVALS, "client1", 1) != base
    assert plan_sessions(ARRIVALS, "client0", 2) != base


def test_plan_sessions_ordered_and_sized():
    plan = plan_sessions(ARRIVALS, "client0", 1)
    times = [s.time_ns for s in plan]
    assert times == sorted(times)
    for session in plan:
        params = dict(session.params)
        assert 4096 <= params["file_bytes"] <= 262144
        assert params["file_name"] == f"session{session.index}"


def test_mix_weights_drive_workload_choice():
    mixed = ArrivalSpec(
        process="poisson",
        rate_per_s=400.0,
        duration_ns=ms(100),
        mix=(
            MixEntry(workload="sequential-write", weight=9.0),
            MixEntry(
                workload="database-fsync",
                weight=1.0,
                params=(("transactions", 5),),
            ),
        ),
    )
    plan = plan_sessions(mixed, "client0", 1)
    kinds = [s.workload for s in plan]
    assert kinds.count("sequential-write") > kinds.count("database-fsync")
    assert "database-fsync" in kinds  # the light entry still appears
    fsync = next(s for s in plan if s.workload == "database-fsync")
    assert dict(fsync.params)["transactions"] == 5


# -- fleet equivalence --------------------------------------------------------


def _faults():
    return FleetFaults(
        downlink={
            "client1": DropFrames([3, 7]),
            "client0": Duplicate(
                random.Random(5), probability=0.05, lag_ns=us(40)
            ),
        },
    )


def test_open_loop_serial_vs_sharded_fingerprints():
    spec = _fleet_spec()
    serial = run_fleet_job(spec)
    for shards in (2, 3):
        out = run_sharded_fleet(spec, shards=shards, transport="inline")
        assert out.point.run_fingerprint() == serial.run_fingerprint()


def test_open_loop_serial_vs_sharded_under_faults():
    spec = _fleet_spec()
    serial = run_sharded_fleet(
        spec, shards=1, transport="inline", faults=_faults()
    )
    sharded = run_sharded_fleet(
        spec, shards=3, transport="inline", faults=_faults()
    )
    assert (
        sharded.point.run_fingerprint() == serial.point.run_fingerprint()
    )


def test_open_loop_seed_changes_fingerprint():
    base = run_fleet_job(_fleet_spec())
    reseeded = run_fleet_job(_fleet_spec(seed=2))
    assert base.run_fingerprint() != reseeded.run_fingerprint()


def test_open_loop_sessions_complete():
    spec = _fleet_spec()
    point = run_fleet_job(spec)
    for row in point.clients:
        assert row["ops"] == row["extra"]["sessions"] > 0
        assert row["file_bytes"] == row["extra"]["offered_bytes"] > 0


def test_observed_open_loop_is_a_pure_observer():
    from repro.obs.core import observed

    spec = _fleet_spec()
    bare = run_fleet_job(spec)
    with observed() as session:
        watched = run_fleet_job(spec)
    assert watched.run_fingerprint() == bare.run_fingerprint()
    obs = session.observabilities[0]
    # The arrival layer's intent made it into the (client-prefixed)
    # timelines.
    keys = set(dict(obs.timelines.items()))
    assert any(k.endswith("traffic/offered_bytes") for k in keys)
    assert any(k.endswith("traffic/sessions") for k in keys)


def test_observed_slo_report_has_load_curves():
    from repro.obs.core import observed
    from repro.obs.slo import evaluate_slos

    spec = _fleet_spec(clients=4)
    with observed() as session:
        run_fleet_job(spec)
    report = evaluate_slos(session.observabilities[0].timelines)
    offered = report["load"]["offered_bytes"]
    goodput = report["load"]["goodput_bytes"]
    assert offered and goodput
    assert sum(n for _, n in offered) > 0
    assert sum(n for _, n in goodput) > 0


def test_arrivals_excludes_fixed_workload():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        FleetJobSpec.homogeneous(
            2,
            arrivals=ARRIVALS,
            workload=("database-fsync", ()),
        )
