"""Tests for configuration validation and the scaling helper."""

import pytest

from repro.config import (
    ClientHwConfig,
    CpuCosts,
    MAX_REQUEST_HARD,
    MAX_REQUEST_SOFT,
    MountConfig,
    NetConfig,
    NfsClientConfig,
    scaled,
)
from repro.errors import ConfigError


def test_paper_constants():
    assert MAX_REQUEST_SOFT == 192
    assert MAX_REQUEST_HARD == 256


def test_client_hw_defaults_match_paper():
    hw = ClientHwConfig()
    assert hw.ncpus == 2
    assert hw.ram_bytes == 256 * 1024 * 1024
    assert hw.cache_bytes < hw.ram_bytes
    assert hw.dirty_limit_bytes < hw.cache_bytes
    assert hw.dirty_background_bytes < hw.dirty_limit_bytes


def test_client_hw_validation():
    with pytest.raises(ConfigError):
        ClientHwConfig(ncpus=0)
    with pytest.raises(ConfigError):
        ClientHwConfig(ram_bytes=100, reserved_bytes=100)
    with pytest.raises(ConfigError):
        ClientHwConfig(dirty_limit_fraction=0.0)


def test_sock_sendmsg_cost_matches_paper():
    assert CpuCosts().sock_sendmsg == 50_000  # 50 us, §3.5


def test_net_config_presets():
    gige = NetConfig.gigabit()
    assert gige.mtu == 1500
    jumbo = NetConfig.gigabit(jumbo=True)
    assert jumbo.mtu == 9000
    fast = NetConfig.fast_ethernet()
    assert fast.bandwidth_bytes_per_sec < gige.bandwidth_bytes_per_sec
    with pytest.raises(ConfigError):
        NetConfig(mtu=40)


def test_mount_config_validation():
    mount = MountConfig()
    assert mount.wsize == 8192
    assert mount.nfs_version == 3
    with pytest.raises(ConfigError):
        MountConfig(wsize=5000)
    with pytest.raises(ConfigError):
        MountConfig(nfs_version=4)


def test_client_config_labels():
    assert NfsClientConfig().label() == "stock-flush+list+bkl"
    enhanced = NfsClientConfig(
        eager_flush_limits=False, hashtable_index=True, release_bkl_for_send=True
    )
    assert enhanced.label() == "lazy-flush+hash+nolock"


def test_scaled_shrinks_capacity_not_costs():
    hw = ClientHwConfig()
    small = scaled(hw, 4)
    assert small.ram_bytes == hw.ram_bytes // 4
    assert small.reserved_bytes == hw.reserved_bytes // 4
    assert small.costs == hw.costs
    assert small.ncpus == hw.ncpus
    with pytest.raises(ConfigError):
        scaled(hw, 0)
