"""Property tests for the adaptive (srtt/rttvar) RPC timeout.

Two contracts, fuzzed with hypothesis:

* the derived retransmit timeout never leaves the ``[min_ns, max_ns]``
  envelope, whatever round-trip samples arrive;
* Karn's rule holds end to end — under fuzzed service jitter and
  forced retransmits, only replies to never-retransmitted calls feed
  the estimator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpc import UdpTransport
from repro.rpc.xprt import RttEstimator
from repro.units import ms, us

from .helpers import EchoWorld

NS_HOUR = 3_600 * 10**9


@given(
    st.lists(
        st.integers(min_value=0, max_value=NS_HOUR), min_size=0, max_size=200
    )
)
@settings(max_examples=100, deadline=None)
def test_timeout_never_leaves_envelope(samples):
    est = RttEstimator(initial_ns=ms(700))
    assert est.timeout_ns() == ms(700)  # pre-sample: the mount's timeo
    for rtt in samples:
        est.observe(rtt)
        assert est.min_ns <= est.timeout_ns() <= est.max_ns
    assert est.samples == len(samples)


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=50, deadline=None)
def test_timeout_floor_holds_for_fast_servers(rtt_ns):
    """Sub-floor RTTs must still clamp up to min_ns, never below."""
    est = RttEstimator(initial_ns=ms(700))
    for _ in range(32):
        est.observe(rtt_ns)
    assert est.timeout_ns() == est.min_ns


def test_timeout_cap_holds_for_glacial_servers():
    est = RttEstimator(initial_ns=ms(700))
    for _ in range(8):
        est.observe(10 * est.max_ns)
    assert est.timeout_ns() == est.max_ns


class JitterWorld(EchoWorld):
    """Echo world with a fixed per-call service time (keyed by tag), so
    concurrent handlers cannot race on a single shared ``service_ns``."""

    def __init__(self, service_table, **kwargs):
        self.service_table = service_table
        super().__init__(**kwargs)

    def _handle(self, call):
        while self.paused:
            yield self.sim.timeout(us(50))
        yield self.sim.timeout(self.service_table[call.args])
        self.served.append(call.args)
        return ("echo", call.args), 128


@given(
    st.lists(
        st.integers(min_value=10, max_value=300),  # fast service, us
        min_size=4,
        max_size=12,
    ),
    st.integers(min_value=2, max_value=4),  # index stride of slow calls
)
@settings(max_examples=12, deadline=None)
def test_karn_rule_under_fuzzed_jitter(service_us, stride):
    """Replies to retransmitted calls never update the estimator, and
    the envelope holds at every reply — under fuzzed service jitter
    with the retransmit timer short enough to fire on slow calls."""
    # Every stride-th call takes 3 ms against a 1 ms timer (guaranteed
    # retransmit); the rest reply well inside it (clean samples).
    table = {
        i: ms(3) if i % stride == 0 else us(fast)
        for i, fast in enumerate(service_us)
    }
    world = JitterWorld(
        table,
        timeo_ns=ms(1),
        adaptive_timeo=True,
        retrans=7,
    )
    events = []
    original = UdpTransport._handle_reply

    def spy(self, reply):
        req = self.in_flight.get(reply.xid)
        retries = None if req is None else req.retries
        before = sum(e.samples for e in self.rtt.values())
        yield from original(self, reply)
        after = sum(e.samples for e in self.rtt.values())
        events.append((retries, after - before))
        for est in self.rtt.values():
            if est.samples:
                assert est.min_ns <= est.timeout_ns() <= est.max_ns

    UdpTransport._handle_reply = spy
    try:

        def client():
            reqs = []
            for i in range(len(service_us)):
                req = yield from world.xprt.submit(world.make_call(i))
                reqs.append(req)
            for req in reqs:
                yield req.completion

        world.sim.spawn(client())
        world.sim.run()
    finally:
        UdpTransport._handle_reply = original

    assert events, "no replies observed"
    for retries, delta in events:
        if retries is None or retries > 0:
            # Duplicate or retransmitted xid: Karn forbids the sample.
            assert delta == 0, (retries, delta)
        else:
            assert delta in (0, 1)
    # The fuzz actually exercised both arms.
    assert any(delta == 1 for _, delta in events)
    assert world.xprt.stats.retransmits >= 1
    kept = sum(delta for _, delta in events)
    assert sum(e.samples for e in world.xprt.rtt.values()) == kept


def test_retransmitted_replies_are_discarded_deterministically():
    """Scripted twin of the fuzz case: a server pause guarantees every
    in-flight call retransmits; their eventual replies must leave the
    estimator untouched, and the next clean call must feed it."""
    world = EchoWorld(
        service_ns=us(100), timeo_ns=ms(1), adaptive_timeo=True, retrans=7
    )
    world.paused = True

    def unpause():
        yield world.sim.timeout(ms(10))
        world.paused = False

    def client():
        req = yield from world.xprt.submit(world.make_call(0))
        yield req.completion
        clean = yield from world.xprt.submit(world.make_call(1))
        yield clean.completion

    world.sim.spawn(unpause())
    world.sim.spawn(client())
    world.sim.run()
    assert world.xprt.stats.retransmits >= 1
    # Only the clean second call may have contributed a sample.
    assert sum(e.samples for e in world.xprt.rtt.values()) <= 1
