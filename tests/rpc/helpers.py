"""Shared fixtures for RPC-layer tests: a client, a switch, an echo server."""

from repro.config import NetConfig
from repro.net import Host, Switch
from repro.rpc import RpcCall, RpcServer, UdpTransport
from repro.sim import Simulator
from repro.units import us

NFS_PORT = 2049


class EchoWorld:
    """Client and echo server wired through a switch.

    The server handler waits ``service_ns`` per request, so tests can
    emulate fast and slow servers.
    """

    def __init__(self, service_ns=us(100), slots=16, timeo_ns=700_000_000,
                 lock_policy=None, net=None, **xprt_kwargs):
        self.sim = Simulator()
        self.switch = Switch(self.sim)
        net = net or NetConfig.gigabit()
        self.client_host = Host(self.sim, "client", self.switch, net, ncpus=2)
        self.server_host = Host(self.sim, "server", self.switch, net, ncpus=2)
        self.service_ns = service_ns
        self.served = []
        self.server = RpcServer(
            self.server_host, NFS_PORT, self._handle, name="echo"
        )
        sock = self.client_host.udp.socket(800)
        self.xprt = UdpTransport(
            self.client_host,
            sock,
            "server",
            NFS_PORT,
            slots=slots,
            timeo_ns=timeo_ns,
            lock_policy=lock_policy,
            **xprt_kwargs,
        )
        self.paused = False

    def _handle(self, call):
        while self.paused:
            yield self.sim.timeout(us(50))
        yield self.sim.timeout(self.service_ns)
        self.served.append(call.args)
        return ("echo", call.args), 128

    def make_call(self, tag, size=8392):
        return RpcCall(xid=self.xprt.next_xid(), prog="test", proc="ECHO",
                       args=tag, size=size)
