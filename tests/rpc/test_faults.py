"""Transport behaviour under injected faults: retransmission, DRC,
congestion-window recovery, soft/hard mounts, adaptive timeouts,
jukebox, duplicate replies."""

import pytest

from repro.errors import EioError, JukeboxError, ProtocolError
from repro.faults import DropFrames, Duplicate, GilbertElliott, SlotStarvation
from repro.rpc import RpcCall, RpcServer, UdpTransport
from repro.sim import RngStreams
from repro.units import ms, us

from .helpers import EchoWorld


def test_retransmit_under_burst_loss():
    """A hard mount rides out Gilbert-Elliott burst loss on the reply
    path: every call completes, via retransmits answered from the DRC."""
    world = EchoWorld(timeo_ns=ms(5))
    fault = GilbertElliott(
        RngStreams(3).stream("burst"), p_good_to_bad=0.2, p_bad_to_good=0.3
    )
    world.switch.install_fault("client", downlink=fault)

    def client():
        for i in range(30):
            reply = yield from world.xprt.call_and_wait(world.make_call(i))
            assert reply.result == ("echo", i)

    world.sim.spawn(client())
    world.sim.run()
    assert fault.frames_dropped > 0
    assert world.xprt.stats.retransmits >= 1
    assert world.xprt.stats.completed == 30
    # Dropped replies were re-served from the duplicate request cache:
    # the server never executed a call twice.
    assert len(world.served) == 30
    assert world.server.drc_hits >= 1


def test_reply_served_from_drc_after_retransmit():
    """Lose exactly the first reply frame: the retransmitted call must be
    answered from the server's DRC, not re-executed."""
    world = EchoWorld(timeo_ns=ms(5))
    world.switch.install_fault("server", uplink=DropFrames({0}))
    results = []

    def client():
        reply = yield from world.xprt.call_and_wait(world.make_call("once"))
        results.append(reply.result)

    world.sim.spawn(client())
    world.sim.run()
    assert results == [("echo", "once")]
    assert world.xprt.stats.retransmits == 1
    assert len(world.served) == 1  # executed exactly once
    assert world.server.drc_hits == 1


def test_cwnd_halves_on_timeout_and_recovers():
    world = EchoWorld(timeo_ns=ms(5), slots=16)
    # First reply lost: one timeout halves cwnd from 2.0 to its floor.
    world.switch.install_fault("server", uplink=DropFrames({0}))
    samples = []

    def sampler():
        # Catch the window between the timeout (~5 ms) and the
        # DRC-served reply to the retransmit re-growing cwnd.
        while world.sim.now < ms(6):
            samples.append(world.xprt.cwnd)
            yield world.sim.timeout(us(100))

    def client():
        yield from world.xprt.call_and_wait(world.make_call("lossy"))
        reqs = []
        for i in range(60):
            req = yield from world.xprt.submit(world.make_call(i))
            reqs.append(req)
        for req in reqs:
            yield req.completion

    world.sim.spawn(client())
    world.sim.spawn(sampler())
    world.sim.run()
    assert world.xprt.stats.retransmits == 1
    assert 1.0 in samples  # halved to the floor after the timeout
    assert world.xprt.cwnd > UdpTransport.INITIAL_CWND  # recovered past start


def test_duplicate_reply_counted_not_reprocessed():
    """Every reply frame delivered twice: the transport must count the
    duplicate xid and complete each call exactly once."""
    world = EchoWorld()
    dup = Duplicate(RngStreams(1).stream("dup"), probability=1.0, lag_ns=us(3))
    world.switch.install_fault("client", downlink=dup)
    results = []

    def client():
        for i in range(5):
            reply = yield from world.xprt.call_and_wait(world.make_call(i))
            results.append(reply.result)

    world.sim.spawn(client())
    world.sim.run()
    assert len(results) == 5
    assert world.xprt.stats.completed == 5
    assert world.xprt.stats.duplicate_replies == 5
    assert dup.duplicated >= 5


def test_soft_mount_fails_with_eio_after_major_timeout():
    world = EchoWorld(timeo_ns=ms(2), retrans=2, soft=True)
    world.server.drop_incoming = True  # server is gone for good
    errors = []

    def client():
        try:
            yield from world.xprt.call_and_wait(world.make_call("doomed"))
        except EioError as err:
            errors.append(err)

    world.sim.spawn(client())
    world.sim.run()
    assert len(errors) == 1
    stats = world.xprt.stats
    assert stats.major_timeouts == 1
    assert stats.soft_failures == 1
    # retrans minor timeouts were used up before giving up.
    assert stats.retransmits == 2
    assert world.xprt.outstanding == 0


def test_soft_failure_invokes_on_error_callback():
    world = EchoWorld(timeo_ns=ms(2), retrans=1, soft=True)
    world.server.drop_incoming = True
    seen = []

    def on_error(reply):
        seen.append(reply.result.code)
        return
        yield  # pragma: no cover

    def client():
        req = yield from world.xprt.submit(
            world.make_call("cb"), on_error=on_error
        )
        yield req.completion

    world.sim.spawn(client())
    world.sim.run()
    assert seen == ["ETIMEDOUT"]


def test_hard_mount_retries_past_major_timeout():
    """Hard semantics: the retrans cap only restarts the backoff cycle;
    the call survives a server outage longer than the whole budget."""
    world = EchoWorld(timeo_ns=ms(2), retrans=2)
    world.server.drop_incoming = True

    def heal():
        yield world.sim.timeout(ms(60))
        world.server.drop_incoming = False

    results = []

    def client():
        reply = yield from world.xprt.call_and_wait(world.make_call("persist"))
        results.append(reply.result)

    world.sim.spawn(client())
    world.sim.spawn(heal())
    world.sim.run()
    assert results == [("echo", "persist")]
    stats = world.xprt.stats
    assert stats.major_timeouts >= 1
    assert stats.soft_failures == 0
    assert stats.retransmits > 2  # kept going past the retrans budget


def test_adaptive_timeout_learns_rtt():
    world = EchoWorld(service_ns=us(100), timeo_ns=ms(700), adaptive_timeo=True)

    def client():
        for i in range(20):
            yield from world.xprt.call_and_wait(world.make_call(i))

    world.sim.spawn(client())
    world.sim.run()
    est = world.xprt.rtt["meta"]  # ECHO is not a READ/WRITE/COMMIT
    assert est.samples == 20
    # The learned timeout reflects the ~sub-ms RTT, not the 700 ms base.
    assert est.timeout_ns() < ms(50)
    assert est.timeout_ns() >= est.min_ns


def test_adaptive_timeout_karns_rule_skips_retransmitted_samples():
    world = EchoWorld(timeo_ns=ms(5), adaptive_timeo=True)
    world.switch.install_fault("server", uplink=DropFrames({0}))

    def client():
        yield from world.xprt.call_and_wait(world.make_call("retrans"))
        yield from world.xprt.call_and_wait(world.make_call("clean"))

    world.sim.spawn(client())
    world.sim.run()
    # Only the un-retransmitted call contributed a sample.
    assert world.xprt.stats.retransmits == 1
    assert world.xprt.rtt["meta"].samples == 1


def test_jukebox_reply_retried_after_delay():
    from repro.config import NetConfig
    from repro.net import Host, Switch
    from repro.sim import Simulator

    sim = Simulator()
    switch = Switch(sim)
    net = NetConfig.gigabit()
    client_host = Host(sim, "client", switch, net, ncpus=2)
    server_host = Host(sim, "server", switch, net, ncpus=2)
    attempts = []

    def handler(call):
        attempts.append(sim.now)
        if len(attempts) == 1:
            raise JukeboxError("media offline")
        return ("ok", call.args), 128
        yield  # pragma: no cover

    server = RpcServer(server_host, 2049, handler, name="jbox")
    xprt = UdpTransport(
        client_host,
        client_host.udp.socket(800),
        "server",
        2049,
        jukebox_delay_ns=ms(10),
    )
    results = []

    def client():
        call = RpcCall(xid=xprt.next_xid(), prog="t", proc="WRITE", args="d", size=500)
        reply = yield from xprt.call_and_wait(call)
        results.append(reply.result)

    sim.spawn(client())
    sim.run()
    assert results == [("ok", "d")]
    assert len(attempts) == 2
    assert attempts[1] - attempts[0] >= ms(10)  # waited the jukebox delay
    assert xprt.stats.jukebox_retries == 1
    assert server.jukebox_replies == 1
    # Jukebox errors are not server faults, and must not poison the DRC.
    assert server.errors == 0


def test_slot_starvation_window_caps_in_flight():
    world = EchoWorld(service_ns=us(300), slots=16)
    SlotStarvation(world.sim, world.xprt, us(10), ms(3), slots=1)
    peaks = []

    def client():
        reqs = []
        for i in range(30):
            req = yield from world.xprt.submit(world.make_call(i))
            reqs.append(req)
            peaks.append((world.sim.now, len(world.xprt.in_flight)))
        for req in reqs:
            yield req.completion

    def watcher():
        while world.sim.now < ms(3):
            assert len(world.xprt.in_flight) <= 1
            yield world.sim.timeout(us(50))

    world.sim.spawn(client())
    world.sim.spawn(watcher())
    world.sim.run()
    assert world.xprt.stats.completed == 30
    assert world.xprt.stats.backlog_peak >= 10
    assert world.xprt.slot_override is None  # restored


def test_invalid_retrans_rejected():
    from repro.config import NetConfig
    from repro.net import Host, Switch
    from repro.sim import Simulator

    sim = Simulator()
    switch = Switch(sim)
    host = Host(sim, "h", switch, NetConfig.gigabit())
    with pytest.raises(ProtocolError):
        UdpTransport(host, host.udp.socket(1), "s", 2049, retrans=0)
