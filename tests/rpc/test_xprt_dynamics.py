"""Transport dynamics: congestion window and wire-send recording."""

from repro.units import ms, us

from .helpers import EchoWorld


def run_calls(world, n, size=500, gap=us(50)):
    def client():
        reqs = []
        for i in range(n):
            req = yield from world.xprt.submit(world.make_call(i, size=size))
            reqs.append(req)
            if gap:
                yield world.sim.timeout(gap)
        for req in reqs:
            yield req.completion

    world.sim.spawn(client())
    world.sim.run()


def test_cwnd_additive_increase_shape():
    """cwnd grows fast when small, slower as it rises (1/cwnd steps)."""
    world = EchoWorld(service_ns=us(10), slots=16)
    samples = []
    original = world.xprt._on_reply_cwnd

    def sampling():
        original()
        samples.append(world.xprt.cwnd)

    world.xprt._on_reply_cwnd = sampling
    run_calls(world, 60)
    deltas = [b - a for a, b in zip(samples, samples[1:]) if b > a]
    # Early increments larger than late ones (concave growth).
    assert deltas[0] > deltas[-1]
    assert samples[-1] <= 16


def test_cwnd_never_exceeds_slots():
    world = EchoWorld(service_ns=us(10), slots=4)
    run_calls(world, 80)
    assert world.xprt.cwnd <= 4


def test_timeout_halves_cwnd_with_floor():
    world = EchoWorld(service_ns=us(100), timeo_ns=ms(1))
    world.paused = True

    def unpause():
        yield world.sim.timeout(ms(40))
        world.paused = False

    world.sim.spawn(unpause())
    run_calls(world, 1, gap=0)
    assert world.xprt.cwnd >= 1.0  # floor holds after repeated backoff
    assert world.xprt.stats.retransmits >= 3


def test_send_times_recorded_and_gap_computed():
    world = EchoWorld(service_ns=us(10))
    run_calls(world, 10, gap=us(200))
    assert len(world.xprt.send_times) == 10
    gap = world.xprt.max_send_gap_ns()
    assert us(150) < gap < us(400)
    # Restricting the horizon excludes later sends.
    first_two_gap = world.xprt.max_send_gap_ns(up_to=list(world.xprt.send_times)[1])
    assert first_two_gap <= gap


def test_send_gap_empty_and_single():
    world = EchoWorld()
    assert world.xprt.max_send_gap_ns() == 0
    run_calls(world, 1, gap=0)
    assert world.xprt.max_send_gap_ns() == 0
