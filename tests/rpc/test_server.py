"""Unit tests for the RPC server dispatcher."""

from repro.rpc import RpcCall
from repro.rpc.messages import RpcError
from repro.rpc.server import DRC_SIZE
from repro.units import ms, us

from .helpers import EchoWorld


def test_thread_pool_bounds_concurrency():
    world = EchoWorld(service_ns=ms(1))
    active_peak = []
    orig_handle = world._handle
    active = [0]

    def counting_handle(call):
        active[0] += 1
        active_peak.append(active[0])
        try:
            result = yield from orig_handle(call)
        finally:
            active[0] -= 1
        return result

    world.server.handler = counting_handle

    def client():
        reqs = []
        for i in range(30):
            req = yield from world.xprt.submit(world.make_call(i, size=200))
            reqs.append(req)
        for req in reqs:
            yield req.completion

    world.sim.spawn(client())
    world.sim.run()
    assert max(active_peak) <= 8  # default nthreads


def test_handler_exception_becomes_error_reply():
    world = EchoWorld()

    def broken(call):
        raise ValueError("corrupt args")
        yield  # pragma: no cover

    world.server.handler = broken
    replies = []

    def client():
        req = yield from world.xprt.submit(world.make_call("x"))
        reply = yield req.completion
        replies.append(reply)

    world.sim.spawn(client())
    world.sim.run()
    assert len(replies) == 1
    assert replies[0].is_error
    assert isinstance(replies[0].result, RpcError)
    assert world.server.errors == 1


def test_drc_eviction_is_bounded():
    world = EchoWorld(service_ns=us(1))

    def client():
        reqs = []
        for i in range(DRC_SIZE + 50):
            req = yield from world.xprt.submit(world.make_call(i, size=200))
            reqs.append(req)
            if len(world.xprt.in_flight) > 8:
                yield reqs[-1].completion
        for req in reqs:
            yield req.completion

    world.sim.spawn(client())
    world.sim.run()
    assert len(world.server._drc) <= DRC_SIZE
    assert world.server.requests_handled == DRC_SIZE + 50
