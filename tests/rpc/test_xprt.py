"""Unit/integration tests for the RPC transport."""

import pytest

from repro.errors import ProtocolError
from repro.rpc import RpcCall, UdpTransport
from repro.sim import Simulator
from repro.units import ms, us

from .helpers import EchoWorld


def test_single_call_round_trip():
    world = EchoWorld()
    results = []

    def client():
        reply = yield from world.xprt.call_and_wait(world.make_call("hi"))
        results.append(reply.result)

    world.sim.spawn(client())
    world.sim.run()
    assert results == [("echo", "hi")]
    assert world.xprt.stats.completed == 1
    assert world.xprt.stats.retransmits == 0


def test_window_limits_in_flight():
    world = EchoWorld(service_ns=us(500), slots=4)
    in_flight_peaks = []

    def client():
        reqs = []
        for i in range(20):
            req = yield from world.xprt.submit(world.make_call(i))
            reqs.append(req)
            in_flight_peaks.append(len(world.xprt.in_flight))
        for req in reqs:
            yield req.completion

    world.sim.spawn(client())
    world.sim.run()
    assert max(in_flight_peaks) <= 4
    assert world.xprt.stats.completed == 20
    assert len(world.served) == 20


def test_backlog_sent_by_rpciod_not_caller():
    world = EchoWorld(service_ns=us(500), slots=2)

    def client():
        reqs = []
        for i in range(10):
            req = yield from world.xprt.submit(world.make_call(i))
            reqs.append(req)
        for req in reqs:
            yield req.completion

    world.sim.spawn(client())
    world.sim.run()
    stats = world.xprt.stats
    assert stats.sent_inline == 2  # initial congestion window
    assert stats.sent_by_rpciod == 8
    assert 0 < stats.inline_fraction < 1
    assert stats.backlog_peak >= 1


def test_cwnd_grows_toward_slot_limit():
    world = EchoWorld(service_ns=us(50), slots=16)

    def client():
        reqs = []
        for i in range(100):
            req = yield from world.xprt.submit(world.make_call(i))
            reqs.append(req)
        for req in reqs:
            yield req.completion

    world.sim.spawn(client())
    world.sim.run()
    assert world.xprt.cwnd > UdpTransport.INITIAL_CWND
    assert world.xprt.cwnd <= 16


def test_retransmit_on_server_pause():
    world = EchoWorld(service_ns=us(100), timeo_ns=ms(5))
    world.paused = True

    def unpause():
        yield world.sim.timeout(ms(20))
        world.paused = False

    results = []

    def client():
        reply = yield from world.xprt.call_and_wait(world.make_call("slow"))
        results.append(reply.result)

    world.sim.spawn(client())
    world.sim.spawn(unpause())
    world.sim.run()
    assert results == [("echo", "slow")]
    assert world.xprt.stats.retransmits >= 1
    # Duplicate-request cache means the server executed it exactly once.
    assert len(world.served) == 1


def test_retransmit_halves_cwnd():
    world = EchoWorld(service_ns=us(100), timeo_ns=ms(2))
    world.paused = True

    def unpause():
        yield world.sim.timeout(ms(30))
        world.paused = False

    def client():
        yield from world.xprt.call_and_wait(world.make_call("x"))

    world.sim.spawn(client())
    world.sim.spawn(unpause())
    world.sim.run()
    # Backoff happened at least once, so cwnd dipped to its floor.
    assert world.xprt.stats.retransmits >= 2


def test_on_complete_callback_runs_before_completion_event():
    world = EchoWorld()
    order = []

    def on_complete(reply):
        order.append("callback")
        return
        yield  # pragma: no cover

    def client():
        req = yield from world.xprt.submit(world.make_call("cb"), on_complete)
        yield req.completion
        order.append("awaited")

    world.sim.spawn(client())
    world.sim.run()
    assert order == ["callback", "awaited"]


def test_outstanding_counts_backlog_and_in_flight():
    world = EchoWorld(service_ns=ms(5), slots=2)

    def client():
        for i in range(6):
            yield from world.xprt.submit(world.make_call(i))

    world.sim.spawn(client())
    world.sim.run(until=us(300))
    assert world.xprt.outstanding == 6
    world.sim.run()
    assert world.xprt.outstanding == 0


def test_zero_slots_rejected():
    sim = Simulator()
    from repro.config import NetConfig
    from repro.net import Host, Switch

    switch = Switch(sim)
    host = Host(sim, "h", switch, NetConfig.gigabit())
    sock = host.udp.socket(1)
    with pytest.raises(ProtocolError):
        UdpTransport(host, sock, "s", 2049, slots=0)


def test_xids_unique_and_monotonic():
    world = EchoWorld()
    xids = [world.make_call(i).xid for i in range(100)]
    assert xids == sorted(xids)
    assert len(set(xids)) == 100


def test_slow_server_reduces_inline_sends():
    """The slow-server paradox's mechanism: a slower server keeps the
    window full, pushing sends out of the submitting thread."""
    fractions = {}
    for label, service in (("fast", us(10)), ("slow", us(2000))):
        world = EchoWorld(service_ns=service, slots=4)

        def client(world=world):
            reqs = []
            for i in range(50):
                req = yield from world.xprt.submit(world.make_call(i, size=500))
                reqs.append(req)
                yield world.sim.timeout(us(100))  # writer keeps producing
            for req in reqs:
                yield req.completion

        world.sim.spawn(client())
        world.sim.run()
        fractions[label] = world.xprt.stats.inline_fraction
    assert fractions["slow"] < fractions["fast"]
