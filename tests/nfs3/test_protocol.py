"""Tests for NFSv3 protocol types and wire sizing."""

import pytest

from repro.nfs3 import (
    CommitArgs,
    Stable,
    WriteArgs,
    commit_call_size,
    commit_reply_size,
    write_call_size,
    write_reply_size,
)


def test_stable_ordering_matches_rfc():
    assert Stable.UNSTABLE < Stable.DATA_SYNC < Stable.FILE_SYNC
    assert int(Stable.UNSTABLE) == 0
    assert int(Stable.FILE_SYNC) == 2


def test_write_args_validation():
    args = WriteArgs(fileid=1, offset=0, count=8192)
    assert args.stable is Stable.UNSTABLE
    with pytest.raises(ValueError):
        WriteArgs(fileid=1, offset=0, count=0)
    with pytest.raises(ValueError):
        WriteArgs(fileid=1, offset=-1, count=10)


def test_write_call_size_includes_payload():
    small = write_call_size(1)
    big = write_call_size(8192)
    assert big - small == 8191
    assert small > 100  # headers


def test_reply_and_commit_sizes_are_small():
    assert write_reply_size() < 300
    assert commit_call_size() < 300
    assert commit_reply_size() < 300
    assert CommitArgs(fileid=1).count == 0  # whole-file commit
