"""Dashboard rendering: sparklines, ASCII and HTML builders."""

from repro.obs.report import render_ascii, render_html, sparkline
from repro.obs.slo import SloSpec, evaluate_slos
from repro.obs.timeseries import TimelineRegistry

MS = 1_000_000


def test_sparkline_levels_and_width():
    assert sparkline([]) == ""
    assert sparkline([0, 0, 0]) == "▁▁▁"
    line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
    assert len(line) == 8
    assert line[-1] == "█"
    assert list(line) == sorted(line)  # monotone input, monotone levels
    # Downsampling to width keeps the peak visible (bucket-max).
    wide = sparkline(list(range(1000)) + [10_000], width=60)
    assert len(wide) == 60
    assert wide[-1] == "█"


def _registry_and_report():
    registry = TimelineRegistry(window_ns=10 * MS)
    lat = registry.windowed_histogram("client0/syscall/write_latency_us")
    queue = registry.windowed_gauge("net/client0-up/queue_ns")
    for wi in range(6):
        now = wi * 10 * MS
        lat.record_windowed_value(now, 5000 if wi == 4 else 40)
        queue.record_windowed_gauge(now, wi * 100)
    spec = SloSpec(
        name="writes", metric="syscall/write_latency_us",
        threshold=100.0, target=0.9,
    )
    return registry, evaluate_slos(registry, [spec])


def test_render_ascii_sections():
    registry, report = _registry_and_report()
    text = render_ascii(registry, report)
    assert "== timelines ==" in text
    assert "client0/syscall/write_latency_us" in text
    assert "net/client0-up/queue_ns" in text
    assert "== slo verdicts ==" in text
    assert "writes" in text
    assert "== percentiles ==" in text
    assert "p99.9" in text


def test_render_ascii_without_report():
    registry, _ = _registry_and_report()
    text = render_ascii(registry)
    assert "== timelines ==" in text
    assert "slo verdicts" not in text


def test_render_html_standalone_page():
    registry, report = _registry_and_report()
    page = render_html(registry, report, title="unit<test>")
    assert page.startswith("<!DOCTYPE html>")
    assert "unit&lt;test&gt;" in page  # titles are escaped
    assert "<polyline" in page
    assert "SLO verdicts" in page
    assert page.count("<svg") == len(registry.items())
