"""The SLO engine: specs, verdicts, burn rates, knees, attribution."""

import pytest

from repro.errors import ConfigError
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO_REPORT_SCHEMA,
    SloSpec,
    evaluate_slos,
)
from repro.obs.timeseries import TimelineRegistry

MS = 1_000_000


def test_slospec_round_trip():
    spec = SloSpec(
        name="x",
        metric="syscall/write_latency_us",
        threshold=100.0,
        target=0.9,
        burn_windows_ns=(20 * MS, 40 * MS),
        burn_factor=2.0,
    )
    assert SloSpec.from_dict(spec.to_dict()) == spec


def test_slospec_rejects_unknown_keys():
    with pytest.raises(ConfigError, match="unknown key"):
        SloSpec.from_dict({"name": "x", "metric": "m", "threshold": 1, "oops": 2})


def _overload_registry():
    """Six healthy 10 ms windows, then two overloaded ones.

    Latency jumps 50 us -> 1000 us in windows 6-7 while the RPC slot
    gauge rises with it (the attribution signal) and offered load grows
    monotonically (the knee input).
    """
    registry = TimelineRegistry(window_ns=10 * MS)
    lat = registry.windowed_histogram("client0/syscall/write_latency_us")
    offered = registry.windowed_counter("client0/syscall/write_bytes")
    ingest = registry.windowed_counter("server/s/ingest_bytes")
    slots = registry.windowed_gauge("client0/rpc/slots_in_flight")
    for wi in range(8):
        now = wi * 10 * MS
        value = 1000 if wi >= 6 else 50
        for _ in range(10):
            lat.record_windowed_value(now, value)
        offered.record_windowed_count(now, n=(wi + 1) * 1000)
        ingest.record_windowed_count(now, n=(wi + 1) * 900)
        slots.record_windowed_gauge(now, 15 if wi >= 6 else 2)
    return registry


SPEC = SloSpec(
    name="write-lat",
    metric="syscall/write_latency_us",
    threshold=100.0,
    target=0.8,
    burn_windows_ns=(20 * MS, 40 * MS),
)


def test_violated_slo_with_attribution_and_alerts():
    report = evaluate_slos(_overload_registry(), [SPEC])
    assert report["schema"] == SLO_REPORT_SCHEMA
    (row,) = report["slos"]
    assert row["samples"] == 80 and row["good"] == 60
    assert row["attained"] == pytest.approx(0.75)
    assert row["verdict"] == "violated"
    # Per-window percentiles cover every populated window.
    assert len(row["windows"]) == 8
    assert all({"p50", "p99", "p99.9"} <= set(w) for w in row["windows"])
    # One contiguous violation span over windows 6-7, attributed to the
    # concurrent RPC slot spike.
    (violation,) = row["violations"]
    assert violation["start_ns"] == 6 * 10 * MS
    assert violation["end_ns"] == 8 * 10 * MS
    assert violation["attribution"]["signal"] == "client0/rpc/slots_in_flight"
    assert violation["attribution"]["z"] > 0
    # Both burn windows exceed the budget over 6-7, so they alert.
    assert len(row["burn"]) == 2
    assert row["alerts"] == [[6 * 10 * MS, 8 * 10 * MS]]


def test_ok_verdict_when_target_met():
    easy = SloSpec(
        name="easy", metric="syscall/write_latency_us",
        threshold=100.0, target=0.7,
    )
    report = evaluate_slos(_overload_registry(), [easy])
    (row,) = report["slos"]
    assert row["verdict"] == "ok"
    assert row["attained"] >= 0.7


def test_knee_and_load_curves():
    report = evaluate_slos(_overload_registry(), [SPEC])
    knee = report["knee"]
    assert knee is not None
    # The latency curve bends where overload sets in (window 6+).
    assert knee["window_start_ns"] >= 5 * 10 * MS
    assert knee["p99"] >= 50
    offered = report["load"]["offered_bytes"]
    goodput = report["load"]["goodput_bytes"]
    assert len(offered) == 8 and len(goodput) == 8
    assert all(g[1] <= o[1] for o, g in zip(offered, goodput))
    assert set(report["timelines"]) == {
        "client0/syscall/write_latency_us",
        "client0/syscall/write_bytes",
        "server/s/ingest_bytes",
        "client0/rpc/slots_in_flight",
    }


def test_no_data_verdict():
    report = evaluate_slos(
        TimelineRegistry(window_ns=10 * MS),
        [SloSpec(name="x", metric="missing/metric", threshold=1.0)],
    )
    (row,) = report["slos"]
    assert row["verdict"] == "no-data"
    assert row["attained"] is None
    assert report["knee"] is None


def test_default_slos_shape():
    assert len(DEFAULT_SLOS) == 1
    assert DEFAULT_SLOS[0].metric == "syscall/write_latency_us"
    assert 0 < DEFAULT_SLOS[0].target < 1
