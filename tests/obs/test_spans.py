"""Span model, Chrome-trace export, and causal nesting.

The ISSUE's acceptance criterion: running ``repro-nfs trace`` on the
Figure 1 configuration must emit valid Chrome trace JSON in which a
single ``write()`` span's children cover page dirtying, coalescing, RPC
send (and retransmits when faulted), server execution, and the reply.
"""

import pytest

from repro.bench.runner import TestBed
from repro.obs import (
    build_spans,
    chrome_trace,
    span_children,
    span_descendants,
    validate_chrome_trace,
)
from repro.units import MIB


@pytest.fixture(scope="module")
def fig1_obs():
    """One observed Figure 1-configuration run (linux target, stock)."""
    bed = TestBed(target="linux", client="stock", observe=True)
    bed.run_sequential_write(2 * MIB)
    return bed.obs


def test_chrome_trace_validates(fig1_obs):
    trace = chrome_trace(fig1_obs)
    spans = validate_chrome_trace(trace)
    assert spans  # non-empty
    # Counter events for the sampled series exist too.
    kinds = {e["ph"] for e in trace["traceEvents"]}
    assert {"M", "X", "C"} <= kinds


def test_write_span_children_cover_the_write_path(fig1_obs):
    spans = build_spans(fig1_obs.tracer)
    write_roots = [
        s for s in spans.values() if s.parent == 0 and s.name == "write"
    ]
    assert len(write_roots) >= 100
    covered = set()
    for root in write_roots:
        covered |= {d.name for d in span_descendants(spans, root.sid)}
    # The causal chain the tentpole promises: page dirty -> coalesce ->
    # RPC WRITE -> wire send -> frames -> server op -> reply processing.
    assert {
        "page_dirty",
        "coalesce",
        "WRITE",
        "frame",
        "server_WRITE",
        "rpc_reply",
    } <= covered
    assert any(name.startswith("rpc_send") for name in covered)


def test_span_nesting_follows_begin_order(fig1_obs):
    spans = build_spans(fig1_obs.tracer)
    for span in spans.values():
        assert span.end is not None, f"span {span.sid} never ended"
        assert span.end >= span.start
        if span.parent:
            parent = spans[span.parent]
            assert parent.start <= span.start


def test_fsync_and_commit_spans_present(fig1_obs):
    spans = build_spans(fig1_obs.tracer)
    names = {s.name for s in spans.values()}
    # The linux target acknowledges UNSTABLE, so the flush path COMMITs.
    assert "fsync" in names
    assert "COMMIT" in names


def test_metrics_cover_every_layer(fig1_obs):
    snap = fig1_obs.metrics.snapshot()
    assert snap["syscall/write_calls"] == 2 * MIB // 8192
    assert snap["syscall/write_bytes"] == 2 * MIB
    assert snap["nfs/requests_created"] == 2 * MIB // 4096
    assert snap["server/bytes_received"] == 2 * MIB
    assert snap["rpc/submitted/WRITE"] >= 1
    assert snap["rpc/submitted/COMMIT"] >= 1
    assert snap["net/frames_sent"] > 0
    assert snap["pagecache/bytes_charged"] == 2 * MIB
    assert snap["coalesce/bytes"] == 2 * MIB


def test_flush_reasons_partition_flushed_pages(fig1_obs):
    snap = fig1_obs.metrics.snapshot()
    flushed = sum(
        v for k, v in snap.items() if k.startswith("flush/pages/")
    )
    # Every page is flushed exactly once, whatever the trigger.
    assert flushed == 2 * MIB // 4096


def test_validate_rejects_dangling_parent():
    with pytest.raises(ValueError, match="dangling"):
        validate_chrome_trace(
            {
                "traceEvents": [
                    {
                        "ph": "X",
                        "pid": 1,
                        "tid": 1,
                        "name": "x",
                        "ts": 0,
                        "dur": 1,
                        "args": {"span": 1, "parent": 99},
                    }
                ]
            }
        )


def test_validate_rejects_duplicate_span_ids():
    event = {
        "ph": "X",
        "pid": 1,
        "tid": 1,
        "name": "x",
        "ts": 0,
        "dur": 1,
        "args": {"span": 1, "parent": 0},
    }
    with pytest.raises(ValueError, match="duplicate"):
        validate_chrome_trace({"traceEvents": [event, dict(event)]})
