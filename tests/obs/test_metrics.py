"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


def test_counter_accumulates():
    reg = MetricsRegistry()
    reg.counter("rpc/submitted").inc()
    reg.counter("rpc/submitted").inc(4)
    assert reg.counter("rpc/submitted").value == 5


def test_gauge_tracks_max():
    reg = MetricsRegistry()
    g = reg.gauge("pagecache/dirty_bytes")
    g.set(10)
    g.set(100)
    g.set(40)
    assert g.value == 40
    assert g.max_value == 100


def test_histogram_buckets_and_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("coalesce/group_pages", bounds=(1, 4, 16))
    for v in (1, 2, 4, 5, 100):
        h.observe(v)
    assert h.count == 5
    assert h.total == 112
    rows = h.cumulative()
    assert rows[-1][0] == "+Inf"
    assert rows[-1][1] == 5
    # le=1 -> 1 sample, le=4 -> 3 samples, le=16 -> 4 samples.
    assert [c for _, c in rows] == [1, 3, 4, 5]


def test_histogram_default_bounds():
    reg = MetricsRegistry()
    h = reg.histogram("x/y")
    assert h.bounds == DEFAULT_BUCKETS


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("a/b")
    with pytest.raises(TypeError):
        reg.gauge("a/b")
    with pytest.raises(TypeError):
        reg.histogram("a/b")


def test_items_sorted_and_snapshot():
    reg = MetricsRegistry()
    reg.counter("z/last").inc()
    reg.counter("a/first").inc(2)
    reg.histogram("m/h", bounds=(1,)).observe(3)
    assert [k for k, _ in reg.items()] == ["a/first", "m/h", "z/last"]
    snap = reg.snapshot()
    assert snap["a/first"] == 2
    assert snap["m/h_count"] == 1
    assert snap["m/h_sum"] == 3
