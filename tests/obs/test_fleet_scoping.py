"""Fleet observability: the client-id dimension.

Multi-client topologies give each stack a scoped view of the one root
observer: metric keys grow a ``{client}/`` prefix and spans carry a
``client=`` attribute, so per-client rates fall out of one snapshot.  A
single-client topology keeps the historical unprefixed keys — existing
dashboards read the same names they always did.
"""

from repro.obs.core import observed
from repro.obs.export import build_spans
from repro.topology import FleetWorkload, Topology
from repro.units import KIB


def test_fleet_metrics_carry_client_prefix():
    with observed() as session:
        topo = Topology(clients=2)
        FleetWorkload(topo, 64 * KIB).run()
    assert len(session.observabilities) == 1
    snapshot = session.observabilities[0].metrics.snapshot()
    client0 = [k for k in snapshot if k.startswith("client0/")]
    client1 = [k for k in snapshot if k.startswith("client1/")]
    assert client0 and client1
    # The same per-client instruments exist under both prefixes.
    assert {k[len("client0/") :] for k in client0} == {
        k[len("client1/") :] for k in client1
    }
    # Identical clients, identical work.
    assert snapshot["client0/syscall/write_calls"] == snapshot[
        "client1/syscall/write_calls"
    ]


def test_single_client_topology_keeps_unprefixed_keys():
    with observed() as session:
        topo = Topology(clients=1)
        topo.run_sequential_write(64 * KIB)
    snapshot = session.observabilities[0].metrics.snapshot()
    assert "syscall/write_calls" in snapshot
    assert not any(k.startswith("client/") for k in snapshot)


def test_fleet_spans_carry_client_attribute():
    with observed() as session:
        topo = Topology(clients=2)
        FleetWorkload(topo, 64 * KIB).run()
    spans = build_spans(session.observabilities[0].tracer)
    clients = {
        span.attrs.get("client")
        for span in spans.values()
        if span.component == "syscall"
    }
    assert clients == {"client0", "client1"}
