"""Windowed telemetry primitives: histograms, timelines, merging."""

import pytest

from repro.analysis.stats import percentile_of_sorted
from repro.errors import ConfigError
from repro.obs.timeseries import (
    DEFAULT_RETENTION,
    TIMELINE_SCHEMA,
    LogLinearHistogram,
    TimelineRegistry,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)

MS = 1_000_000


# -- log-linear histogram ----------------------------------------------------


def test_bucket_relative_error_bound():
    hist = LogLinearHistogram(subbucket_bits=5)
    for value in [1, 31, 32, 33, 100, 1023, 1024, 65_537, 10**9]:
        rep = hist.bucket_representative(hist.bucket_index(value))
        assert abs(rep - value) <= max(1, value * 2**-5)


def test_bucket_index_monotone_and_clamped():
    hist = LogLinearHistogram(subbucket_bits=2, max_value=1 << 10)
    indices = [hist.bucket_index(v) for v in range(0, 1 << 10)]
    assert indices == sorted(indices)
    assert hist.bucket_index(-5) == hist.bucket_index(0)
    assert hist.bucket_index(1 << 20) == hist.bucket_index(1 << 10)


def test_linear_range_is_exact():
    hist = LogLinearHistogram(subbucket_bits=5)
    for value in range(32):
        assert hist.bucket_representative(hist.bucket_index(value)) == value


def test_merge_equals_recording_together():
    one, two, both = (LogLinearHistogram() for _ in range(3))
    for v in [5, 70, 70, 4096]:
        one.record_log_linear(v)
        both.record_log_linear(v)
    for v in [9, 70, 123_456]:
        two.record_log_linear(v)
        both.record_log_linear(v)
    one.merge_log_linear(two)
    assert one.buckets == both.buckets
    assert one.count == both.count and one.total == both.total
    assert one.snapshot_log_linear() == both.snapshot_log_linear()


def test_merge_rejects_scheme_mismatch():
    with pytest.raises(ConfigError, match="different schemes"):
        LogLinearHistogram(subbucket_bits=5).merge_log_linear(
            LogLinearHistogram(subbucket_bits=6)
        )


def test_snapshot_round_trip():
    hist = LogLinearHistogram()
    for v in [1, 50, 50, 9000]:
        hist.record_log_linear(v)
    clone = LogLinearHistogram.from_snapshot(hist.snapshot_log_linear())
    assert clone.snapshot_log_linear() == hist.snapshot_log_linear()
    assert clone.percentile(99) == hist.percentile(99)


def test_count_le_and_mean():
    hist = LogLinearHistogram()
    hist.record_log_linear(10, n=3)
    hist.record_log_linear(1000)
    assert hist.count_le(10) == 3
    assert hist.count_le(0) == 0
    assert hist.count_le(10**9) == 4
    assert hist.mean() == pytest.approx((3 * 10 + 1000) / 4)
    assert LogLinearHistogram().mean() == 0.0


# -- shared percentile core (stats <-> histogram cross-tests) ----------------


def _reference_samples(hist):
    out = []
    for index in sorted(hist.buckets):
        out.extend([hist.bucket_representative(index)] * hist.buckets[index])
    return out


@pytest.mark.parametrize("method", ["nearest-rank", "linear"])
def test_histogram_percentiles_match_stats_core(method):
    hist = LogLinearHistogram()
    for v in [3, 17, 17, 90, 4_000, 250_000]:
        hist.record_log_linear(v)
    reference = _reference_samples(hist)
    pcts = [0.1, 25, 50, 75, 99, 99.9, 100]
    for p in pcts:
        assert hist.percentile(p, method=method) == percentile_of_sorted(
            reference, p, method=method
        )


def test_percentile_clamp_edges_match():
    # Linear interpolation exists only at p=0 / p=100 edges and single
    # samples; nearest-rank rejects p=0 in both implementations.
    hist = LogLinearHistogram()
    hist.record_log_linear(64)
    assert hist.percentile(100) == percentile_of_sorted(
        _reference_samples(hist), 100, method="nearest-rank"
    )
    assert hist.percentile(0, method="linear") == percentile_of_sorted(
        _reference_samples(hist), 0, method="linear"
    )
    with pytest.raises(ValueError):
        hist.percentile(0, method="nearest-rank")
    with pytest.raises(ValueError):
        percentile_of_sorted([64], 0, method="nearest-rank")
    with pytest.raises(ValueError):
        hist.percentile(101, method="linear")
    assert LogLinearHistogram().percentile(99) == 0


def test_percentiles_dict_shape():
    hist = LogLinearHistogram()
    for v in range(1, 101):
        hist.record_log_linear(v)
    pcts = hist.percentiles((50, 99, 99.9))
    assert set(pcts) == {50, 99, 99.9}
    assert pcts[50] <= pcts[99] <= pcts[99.9]


# -- windowed series ---------------------------------------------------------


def test_windowed_counter_records_and_evicts():
    counter = WindowedCounter("k", window_ns=10 * MS, retention=3)
    for w in range(5):
        counter.record_windowed_count(w * 10 * MS, n=w + 1)
    # Ring retention keeps the newest three windows.
    assert [wi for wi, _ in counter.items()] == [2, 3, 4]
    assert dict(counter.items())[4] == 5


def test_windowed_counter_absorb_adds():
    a = WindowedCounter("k", window_ns=10 * MS, retention=DEFAULT_RETENTION)
    b = WindowedCounter("k", window_ns=10 * MS, retention=DEFAULT_RETENTION)
    a.record_windowed_count(5 * MS, n=2)
    b.record_windowed_count(7 * MS, n=3)
    b.record_windowed_count(25 * MS, n=1)
    a.absorb_windowed_counter(b.snapshot_windowed()["windows"])
    assert a.items() == [(0, 5), (2, 1)]


def test_windowed_gauge_last_and_max():
    gauge = WindowedGauge("k", window_ns=10 * MS, retention=8)
    gauge.record_windowed_gauge(1 * MS, 7)
    gauge.record_windowed_gauge(2 * MS, 3)
    assert gauge.items() == [(0, (3, 7))]  # last=3, max=7
    other = WindowedGauge("k", window_ns=10 * MS, retention=8)
    other.record_windowed_gauge(3 * MS, 9)
    gauge.absorb_windowed_gauge(other.snapshot_windowed()["windows"])
    assert gauge.items() == [(0, (9, 9))]  # incoming last wins, maxima join


def test_windowed_histogram_merged_and_absorb():
    a = WindowedHistogram("k", window_ns=10 * MS, retention=64)
    b = WindowedHistogram("k", window_ns=10 * MS, retention=64)
    a.record_windowed_value(1 * MS, 100)
    a.record_windowed_value(11 * MS, 200)
    b.record_windowed_value(1 * MS, 300)
    a.absorb_windowed_histogram(
        (wi, h.snapshot_log_linear()) for wi, h in b.items()
    )
    assert [wi for wi, _ in a.items()] == [0, 1]
    merged = a.merged()
    assert merged.count == 3
    assert merged.count_le(150) == 1


def test_window_config_validation():
    with pytest.raises(ConfigError, match="window_ns"):
        WindowedCounter("k", window_ns=0, retention=1)
    with pytest.raises(ConfigError, match="retention"):
        WindowedCounter("k", window_ns=1, retention=0)


# -- registry ----------------------------------------------------------------


def _populated_registry():
    registry = TimelineRegistry(window_ns=10 * MS)
    registry.windowed_counter("net/x/drops").record_windowed_count(1 * MS)
    registry.windowed_gauge("rpc/slots").record_windowed_gauge(2 * MS, 4)
    registry.windowed_histogram("syscall/lat").record_windowed_value(
        3 * MS, 777
    )
    return registry


def test_registry_get_or_create_and_kind_guard():
    registry = _populated_registry()
    assert registry.windowed_counter("net/x/drops") is registry.get(
        "net/x/drops"
    )
    assert len(registry) == 3
    with pytest.raises(TypeError, match="already registered"):
        registry.windowed_gauge("net/x/drops")
    assert registry.get("missing") is None


def test_registry_snapshot_round_trip():
    registry = _populated_registry()
    snap = registry.snapshot()
    assert snap["schema"] == TIMELINE_SCHEMA
    clone = TimelineRegistry.from_snapshot(snap)
    assert clone.snapshot() == snap


def test_registry_merge_equals_serial_recording():
    # Two "shards" record disjoint clients; merging their snapshots into
    # a third registry must reproduce recording everything in one.
    serial = TimelineRegistry(window_ns=10 * MS)
    shard_a = TimelineRegistry(window_ns=10 * MS)
    shard_b = TimelineRegistry(window_ns=10 * MS)
    for registry in (serial, shard_a):
        registry.windowed_histogram("client0/lat").record_windowed_value(
            5 * MS, 50
        )
        registry.windowed_counter("shared/bytes").record_windowed_count(
            5 * MS, n=10
        )
    for registry in (serial, shard_b):
        registry.windowed_histogram("client1/lat").record_windowed_value(
            15 * MS, 60
        )
        registry.windowed_counter("shared/bytes").record_windowed_count(
            15 * MS, n=20
        )
    hub = TimelineRegistry(window_ns=10 * MS)
    hub.merge_snapshot(shard_a.snapshot())
    hub.merge_snapshot(shard_b.snapshot())
    assert hub.snapshot() == serial.snapshot()


def test_registry_merge_rejects_mismatches():
    registry = TimelineRegistry(window_ns=10 * MS)
    with pytest.raises(ConfigError, match="schema"):
        registry.merge_snapshot({"schema": "bogus@9"})
    other = TimelineRegistry(window_ns=20 * MS)
    with pytest.raises(ConfigError, match="window mismatch"):
        registry.merge_snapshot(other.snapshot())
    snap = TimelineRegistry(window_ns=10 * MS).snapshot()
    snap["series"]["x"] = {"kind": "bogus", "windows": []}
    with pytest.raises(ConfigError, match="unknown timeline kind"):
        registry.merge_snapshot(snap)
