"""The trace/metrics CLI surface and the bundle writer."""

import io
import json
import os

import pytest

from repro.experiments.cli import main
from repro.obs.bundle import TRACE_POINTS, run_traced, trace_names, write_bundle
from repro.obs.export import validate_chrome_trace


def test_trace_names_cover_experiments_and_scenarios():
    names = trace_names()
    assert "fig1" in names and "fig7" in names and "tab1" in names
    assert "lossy-burst" in names


def test_run_traced_rejects_unknown_name():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="unknown trace target"):
        run_traced("fig99")


def test_trace_cli_writes_valid_bundle(tmp_path):
    out_dir = tmp_path / "bundle"
    rc = main(["trace", "fig1", "--out", str(out_dir)])
    assert rc == 0
    trace_path = out_dir / "trace.json"
    assert trace_path.exists()
    with open(trace_path) as f:
        obj = json.load(f)
    spans = validate_chrome_trace(obj)
    names = {s.name for s in spans.values()}
    assert "write" in names and "server_WRITE" in names
    prom = (out_dir / "metrics.prom").read_text()
    assert "repro_syscall_write_calls" in prom
    assert prom.endswith("\n")
    profile = (out_dir / "profile.txt").read_text()
    assert "samples" in profile  # the profiler section rendered
    assert "write() latency" in profile


def test_metrics_cli_prints_prometheus_text(capsys):
    rc = main(["metrics", "fig1"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "repro_rpc_submitted" in text
    assert "repro_bkl_acquisitions" in text  # harvested BKL ledger


def test_metrics_deterministic_across_runs(tmp_path):
    buf1, buf2 = io.StringIO(), io.StringIO()
    from repro.experiments.cli import print_metrics

    assert print_metrics("fig1", out=buf1) == 0
    assert print_metrics("fig1", out=buf2) == 0
    assert buf1.getvalue() == buf2.getvalue()


def test_write_bundle_multi_bed_suffixes(tmp_path):
    observabilities, result, _ = run_traced("fig1")
    paths = write_bundle(
        observabilities[0], str(tmp_path), "fig1", index=0
    )
    assert [os.path.basename(p) for p in paths] == [
        "trace-0.json",
        "metrics-0.prom",
        "profile-0.txt",
        "timeline-0.json",
        "slo-0.json",
    ]


def test_write_bundle_refuses_overwrite_without_force(tmp_path):
    from repro.errors import ConfigError

    observabilities, _, _ = run_traced("fig1")
    write_bundle(observabilities[0], str(tmp_path), "fig1")
    with pytest.raises(ConfigError, match="refusing to overwrite"):
        write_bundle(observabilities[0], str(tmp_path), "fig1")
    # --force replaces the bundle in place.
    paths = write_bundle(observabilities[0], str(tmp_path), "fig1", force=True)
    assert all(os.path.exists(p) for p in paths)


def test_trace_cli_overwrite_refusal_and_force(tmp_path):
    out_dir = str(tmp_path / "bundle")
    assert main(["trace", "fig1", "--out", out_dir]) == 0
    assert main(["trace", "fig1", "--out", out_dir]) == 1
    assert main(["trace", "fig1", "--out", out_dir, "--force"]) == 0


def test_report_cli_from_bundle_dir(tmp_path, capsys):
    out_dir = str(tmp_path / "bundle")
    assert main(["trace", "fleet", "--out", out_dir]) == 0
    capsys.readouterr()
    assert main(["report", out_dir]) == 0
    text = capsys.readouterr().out
    assert "== timelines ==" in text
    assert "== slo verdicts ==" in text
    assert "== percentiles ==" in text
    assert "write-latency" in text


def test_report_cli_html_and_live_run(tmp_path):
    html_path = str(tmp_path / "dash.html")
    assert main(["report", "fleet", "--html", html_path]) == 0
    text = open(html_path).read()
    assert text.startswith("<!DOCTYPE html>")
    assert "SLO verdicts" in text and "polyline" in text


def test_report_cli_rejects_empty_dir(tmp_path, capsys):
    assert main(["report", str(tmp_path)]) == 1
    assert "no timeline" in capsys.readouterr().out


def test_every_trace_point_names_a_real_experiment():
    from repro.experiments.registry import experiment_ids

    assert set(TRACE_POINTS) == set(experiment_ids())
