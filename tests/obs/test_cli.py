"""The trace/metrics CLI surface and the bundle writer."""

import io
import json
import os

import pytest

from repro.experiments.cli import main
from repro.obs.bundle import TRACE_POINTS, run_traced, trace_names, write_bundle
from repro.obs.export import validate_chrome_trace


def test_trace_names_cover_experiments_and_scenarios():
    names = trace_names()
    assert "fig1" in names and "fig7" in names and "tab1" in names
    assert "lossy-burst" in names


def test_run_traced_rejects_unknown_name():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="unknown trace target"):
        run_traced("fig99")


def test_trace_cli_writes_valid_bundle(tmp_path):
    out_dir = tmp_path / "bundle"
    rc = main(["trace", "fig1", "--out", str(out_dir)])
    assert rc == 0
    trace_path = out_dir / "trace.json"
    assert trace_path.exists()
    with open(trace_path) as f:
        obj = json.load(f)
    spans = validate_chrome_trace(obj)
    names = {s.name for s in spans.values()}
    assert "write" in names and "server_WRITE" in names
    prom = (out_dir / "metrics.prom").read_text()
    assert "repro_syscall_write_calls" in prom
    assert prom.endswith("\n")
    profile = (out_dir / "profile.txt").read_text()
    assert "samples" in profile  # the profiler section rendered
    assert "write() latency" in profile


def test_metrics_cli_prints_prometheus_text(capsys):
    rc = main(["metrics", "fig1"])
    assert rc == 0
    text = capsys.readouterr().out
    assert "repro_rpc_submitted" in text
    assert "repro_bkl_acquisitions" in text  # harvested BKL ledger


def test_metrics_deterministic_across_runs(tmp_path):
    buf1, buf2 = io.StringIO(), io.StringIO()
    from repro.experiments.cli import print_metrics

    assert print_metrics("fig1", out=buf1) == 0
    assert print_metrics("fig1", out=buf2) == 0
    assert buf1.getvalue() == buf2.getvalue()


def test_write_bundle_multi_bed_suffixes(tmp_path):
    observabilities, result, _ = run_traced("fig1")
    paths = write_bundle(
        observabilities[0], str(tmp_path), "fig1", index=0
    )
    assert [os.path.basename(p) for p in paths] == [
        "trace-0.json",
        "metrics-0.prom",
        "profile-0.txt",
    ]


def test_every_trace_point_names_a_real_experiment():
    from repro.experiments.registry import experiment_ids

    assert set(TRACE_POINTS) == set(experiment_ids())
