"""The pure-observer contract: instrumentation changes nothing.

An observed run must be bit-for-bit identical to an unobserved one —
same event count, same full latency series, same phase timings.  This
is the determinism-replay proof the tentpole requires, checked for the
Figure 1 and Figure 7 configurations and (via the scenario runner's
``deterministic`` invariant, whose replay runs unobserved) for a chaos
scenario.
"""

import hashlib

import pytest

from repro.bench.runner import TestBed
from repro.faults import run_scenario
from repro.units import MIB


def _fingerprint(target: str, client: str, file_bytes: int, observe: bool):
    bed = TestBed(target=target, client=client, observe=observe)
    result = bed.run_sequential_write(file_bytes)
    series = ",".join(str(v) for v in result.trace.latencies_ns).encode()
    return (
        bed.sim.events_processed,
        hashlib.sha256(series).hexdigest(),
        result.write_elapsed_ns,
        result.flush_elapsed_ns,
        result.close_elapsed_ns,
    )


@pytest.mark.parametrize(
    "target,client",
    [
        ("linux", "stock"),  # the Figure 1 configuration
        ("linux", "enhanced"),  # the Figure 7 configuration
    ],
)
def test_observed_run_is_bit_identical(target, client):
    off = _fingerprint(target, client, 2 * MIB, observe=False)
    on = _fingerprint(target, client, 2 * MIB, observe=True)
    assert on == off


def test_observed_chaos_scenario_is_bit_identical():
    # run_scenario's replay runs WITHOUT the observer; a matching
    # fingerprint therefore proves the observed first run unperturbed.
    outcome = run_scenario(
        "jukebox", seed=1, verify_determinism=True, observe=True
    )
    assert outcome.passed, [i for i in outcome.invariants if not i.ok]
    det = next(i for i in outcome.invariants if i.name == "deterministic")
    assert det.ok
    assert outcome.observabilities, "observer did not attach"
    obs = outcome.observabilities[0]
    assert obs.metrics.snapshot().get("rpc/jukebox_retries", 0) >= 1


def test_disabled_observer_records_nothing():
    bed = TestBed(target="netapp", client="stock")
    bed.run_sequential_write(1 * MIB)
    assert not bed.obs.enabled
    assert len(bed.obs.metrics) == 0
    assert bed.obs.tracer is None
