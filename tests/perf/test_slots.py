"""CI guard: hot-path classes in sim/, net/ and rpc/ stay dict-free.

A 1,024-client fleet materialises millions of frames, fragments, tasks
and RPC messages; a per-instance ``__dict__`` adds ~100 bytes and a
hash lookup to every attribute access on each of them.  Every class in
these packages must therefore declare ``__slots__`` through its whole
MRO — unless it is on the explicit allowlist of per-world singletons
below.  Adding a new class to one of these packages without slots (or
without consciously allowlisting it) fails this test.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.net
import repro.rpc
import repro.sim

#: Deliberately dict-ful classes, with why they are allowed to be.
ALLOWED_DICT_CLASSES = {
    # One per simulated world; never allocated on a hot path.
    "repro.sim.core.Simulator",
    "repro.sim.trace.Tracer",
    "repro.sim.profiler.SamplingProfiler",
    "repro.sim.rng.RngStreams",
    # One per host / per server / per client transport.
    "repro.sim.cpu.CpuSet",
    "repro.rpc.server.RpcServer",
    "repro.rpc.xprt.UdpTransport",
    # Per-inode synchronisation objects: the sanitizers monkey-patch
    # observer attributes onto them at attach time.
    "repro.sim.sync.Lock",
    "repro.sim.sync.MonitoredLock",
    "repro.sim.sync.Semaphore",
    "repro.sim.sync.WaitQueue",
    # AllOf's internal joiner stores its own state outside Task's slots.
    "repro.sim.task._Notify",
}

PACKAGES = (repro.sim, repro.net, repro.rpc)


def _classes():
    for pkg in PACKAGES:
        for info in pkgutil.iter_modules(pkg.__path__):
            module = importlib.import_module(f"{pkg.__name__}.{info.name}")
            for _name, cls in inspect.getmembers(module, inspect.isclass):
                if cls.__module__ == module.__name__:
                    yield cls


def _has_instance_dict(cls) -> bool:
    return any("__dict__" in vars(klass) for klass in cls.__mro__)


def test_hot_classes_declare_slots():
    offenders = []
    for cls in _classes():
        qualname = f"{cls.__module__}.{cls.__name__}"
        if qualname in ALLOWED_DICT_CLASSES:
            continue
        if _has_instance_dict(cls):
            offenders.append(qualname)
    assert not offenders, (
        "classes without __slots__ on the hot packages (add slots, or "
        f"allowlist with a rationale): {sorted(set(offenders))}"
    )


def test_allowlist_entries_still_exist_and_still_need_exemption():
    stale = []
    for qualname in sorted(ALLOWED_DICT_CLASSES):
        module_name, _, cls_name = qualname.rpartition(".")
        module = importlib.import_module(module_name)
        cls = getattr(module, cls_name, None)
        if cls is None or not _has_instance_dict(cls):
            stale.append(qualname)
    assert not stale, f"allowlist entries no longer needed: {stale}"


@pytest.mark.parametrize(
    "qualname",
    [
        "repro.sim.task.Task",
        "repro.sim.core.EventHandle",
        "repro.net.link.Link",
        "repro.net.switch.Port",
        "repro.net.switch.Switch",
        "repro.net.packet.Datagram",
        "repro.net.packet.Fragment",
        "repro.net.host.Host",
        "repro.net.udp.UdpSocket",
        "repro.net.udp.UdpStack",
        "repro.rpc.messages.RpcCall",
        "repro.rpc.messages.RpcReply",
    ],
)
def test_known_hot_classes_reject_stray_attributes(qualname):
    module_name, _, cls_name = qualname.rpartition(".")
    cls = getattr(importlib.import_module(module_name), cls_name)
    assert not _has_instance_dict(cls), f"{qualname} grew a __dict__"
