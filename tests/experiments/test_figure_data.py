"""The experiments publish the raw data their figures need."""

import pytest

from repro.experiments import get_experiment


@pytest.fixture(scope="module")
def fig2_result():
    return get_experiment("fig2").run(quick=True)


def test_fig2_series_matches_figure_axes(fig2_result):
    series = fig2_result.data["series"]
    assert series[0][0] == 0
    assert all(latency_us > 0 for _i, latency_us in series)
    # The series carries the spikes the figure plots.
    assert max(latency_us for _i, latency_us in series) > 10_000


def test_fig2_statistics_present(fig2_result):
    data = fig2_result.data
    assert data["spikes"] >= 3
    assert data["mean_all_us"] > data["mean_healthy_us"]
    assert data["inflation"] > 2
    assert data["soft_flushes"] == data["spikes"]


def test_fig5_histograms_and_paradox_data():
    result = get_experiment("fig5").run(quick=True)
    stats = result.data["stats"]
    assert set(stats) == {"netapp", "linux"}
    for row in stats.values():
        assert row["hist"].total > 0
        assert row["mean_us"] > 0
    assert result.data["slow_server_mbps"] > stats["linux"]["mbps"]


def test_tab1_measured_matrix():
    result = get_experiment("tab1").run(quick=True)
    measured = result.data["measured"]
    assert set(measured) == {
        "netapp/hashtable",
        "netapp/nolock",
        "linux/hashtable",
        "linux/nolock",
    }
    assert all(v > 50 for v in measured.values())
