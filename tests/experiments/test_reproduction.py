"""Reproduction gates: every experiment's shape criteria hold.

These are the paper-level integration tests.  They run each experiment
in quick mode (smaller files / fewer sweep points — the shapes are
preserved; see DESIGN.md §5) and require every shape criterion to pass.
The benchmarks under benchmarks/ run the same experiments at full size.
"""

import pytest

from repro.experiments import experiment_ids, get_experiment

# fig1/fig7 sweeps dominate runtime; a higher scale keeps them quick.
SCALES = {"fig1": 8.0, "fig7": 8.0}


@pytest.mark.parametrize("experiment_id", experiment_ids())
def test_experiment_shape_criteria(experiment_id):
    experiment = get_experiment(experiment_id)
    result = experiment.run(scale=SCALES.get(experiment_id, 4.0), quick=True)
    failed = result.comparison.failed()
    assert not failed, "failed criteria:\n" + "\n".join(c.row() for c in failed)
    assert result.render()
