"""The ``repro-nfs bench`` lane: schema, invariants, JSON round-trip.

The wall-clock numbers themselves are machine noise and never asserted;
what CI guards is that the lane *runs*, that its simulated results hold
(sharded fingerprints identical, cache replays perfectly), and that the
JSON row it emits carries every field the perf trajectory compares
across PRs.
"""

import io
import json

from repro.experiments.bench import bench_payload, run_bench


def test_bench_payload_quick_schema_and_invariants():
    payload = bench_payload(quick=True)
    assert payload["quick"] is True
    assert payload["nproc"] >= 1

    sim_core = payload["sim_core"]
    assert sim_core["events"] == 16 * 500
    assert sim_core["events_per_second"] > 0

    headline = payload["headline"]
    assert headline["improvement_x"] > 1.0
    assert headline["wall_s"] > 0

    fleet = payload["fleet"]
    assert fleet["fingerprints_identical"] is True
    assert fleet["jain"] >= 0.95
    assert fleet["serial_wall_s"] > 0 and fleet["sharded_wall_s"] > 0
    # The crossover escape hatch: a sub-2x speedup on a machine with
    # fewer cores than shards must carry its explanation in-band.
    if fleet["nproc"] < fleet["shards"] and fleet["speedup_x"] < 2.0:
        assert "crossover_note" in fleet

    cache = payload["cache"]
    assert cache["warm_hit_rate"] == 1.0
    assert cache["cold_misses"] == cache["points"]


def test_run_bench_writes_json_row(tmp_path):
    out = io.StringIO()
    path = tmp_path / "bench.json"
    code = run_bench(json_path=str(path), quick=True, out=out)
    assert code == 0
    text = out.getvalue()
    assert "sim core" in text and "fingerprints identical" in text
    row = json.loads(path.read_text())
    assert set(row) >= {"sim_core", "headline", "fleet", "cache", "nproc"}
