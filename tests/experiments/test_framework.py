"""Tests for the experiment framework, registry and CLI plumbing."""

import io

import pytest

from repro.errors import ConfigError
from repro.experiments import experiment_ids, format_table, get_experiment, scaled_configs
from repro.experiments.cli import build_parser, run_experiments


def test_registry_covers_every_paper_artifact():
    ids = experiment_ids()
    assert ids == [
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "tab1", "fig7", "fleet",
        "scale",
    ]
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        assert experiment.id == experiment_id
        assert experiment.title
        assert experiment.paper_ref


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigError):
        get_experiment("fig9")


def test_scaled_configs():
    hw, filer = scaled_configs(4)
    assert hw.ram_bytes == 64 * 1024 * 1024
    assert filer.nvram_bytes == 16 * 1024 * 1024
    with pytest.raises(ConfigError):
        get_experiment("fig2").run(scale=0)


def test_format_table_alignment():
    text = format_table(["a", "bee"], [[1.234, "x"], [10, "yy"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "1.2" in lines[2]
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_cli_parser():
    parser = build_parser()
    args = parser.parse_args(["run", "fig2", "--quick", "--scale", "8"])
    assert args.ids == ["fig2"]
    assert args.quick
    assert args.scale == 8.0
    args = parser.parse_args(["list"])
    assert args.command == "list"
    args = parser.parse_args(["fleet", "--clients", "4", "--shards", "2"])
    assert args.shards == 2
    args = parser.parse_args(["bench", "--quick", "--json", "out.json"])
    assert args.quick and args.json_path == "out.json"


def test_run_experiments_renders_report():
    out = io.StringIO()
    ok = run_experiments(["fig2"], scale=4.0, quick=True, out=out)
    text = out.getvalue()
    assert "fig2" in text
    assert "[PASS]" in text
    assert ok  # fig2's criteria hold even in quick mode
