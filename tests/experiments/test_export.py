"""Tests for experiment data export."""

import csv
import json
import os

from repro.experiments import get_experiment
from repro.experiments.base import export_result
from repro.experiments.cli import run_experiments
import io


def test_export_fig2_artifacts(tmp_path):
    result = get_experiment("fig2").run(quick=True)
    paths = export_result(result, str(tmp_path))
    names = {os.path.basename(p) for p in paths}
    assert names == {"fig2_report.txt", "fig2_data.json", "fig2_latency.csv"}
    data = json.load(open(tmp_path / "fig2_data.json"))
    assert data["spikes"] >= 3
    rows = list(csv.reader(open(tmp_path / "fig2_latency.csv")))
    assert rows[0] == ["call", "latency_us"]
    assert len(rows) > 100


def test_export_fig1_curves(tmp_path):
    result = get_experiment("fig1").run(scale=8.0, quick=True)
    export_result(result, str(tmp_path))
    rows = list(csv.reader(open(tmp_path / "fig1_curves.csv")))
    assert rows[0][0] == "size_mb"
    assert {"local", "netapp", "linux"} <= set(rows[0][1:])
    assert len(rows) >= 4


def test_cli_dump_dir(tmp_path):
    out = io.StringIO()
    ok = run_experiments(
        ["fig2"], scale=4.0, quick=True, out=out, dump_dir=str(tmp_path)
    )
    assert ok
    assert (tmp_path / "fig2_report.txt").exists()
    assert "wrote" in out.getvalue()
