"""Sanitized fault-scenario runs: clean, and perturbation-free."""

import io

from repro.experiments.cli import main as cli_main, run_fault_scenarios
from repro.faults import run_scenario


def test_sanitized_scenario_adds_passing_invariants():
    outcome = run_scenario(
        "jukebox", seed=1, verify_determinism=False, sanitize=True
    )
    names = [inv.name for inv in outcome.invariants]
    assert "sanitize-locks" in names
    assert "sanitize-races" in names
    assert "sanitize-invariants" in names
    assert outcome.passed


def test_sanitizers_do_not_perturb_the_fingerprint():
    # The sanitized first run must fingerprint identically to both the
    # unsanitized replay (checked inside run_scenario) and a fully
    # unsanitized run (checked here).
    sanitized_outcome = run_scenario(
        "lossy-burst", seed=1, verify_determinism=True, sanitize=True
    )
    plain_outcome = run_scenario(
        "lossy-burst", seed=1, verify_determinism=False, sanitize=False
    )
    assert sanitized_outcome.passed
    assert sanitized_outcome.fingerprint == plain_outcome.fingerprint


def test_unsanitized_scenario_has_no_sanitize_rows():
    outcome = run_scenario("jukebox", seed=1, verify_determinism=False)
    assert not any(inv.name.startswith("sanitize-") for inv in outcome.invariants)


def test_cli_faults_sanitize_flag():
    out = io.StringIO()
    ok = run_fault_scenarios(
        ["jukebox"], seed=1, verify=False, sanitize=True, out=out
    )
    assert ok
    text = out.getvalue()
    assert "sanitize-locks" in text
    assert "sanitize-races" in text
    assert "sanitize-invariants" in text


def test_cli_faults_sanitize_end_to_end(capsys):
    assert (
        cli_main(["faults", "--scenario", "jukebox", "--no-verify", "--sanitize"])
        == 0
    )
    assert "sanitize-locks" in capsys.readouterr().out
