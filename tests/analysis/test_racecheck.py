"""Tests for the race sanitizer and the end-of-run invariant audits."""

from repro.analysis.sanitize import (
    FifoSanitizer,
    audit_accounting,
    audit_stable_bytes,
    sanitized,
)
from repro.bench.runner import TestBed
from repro.nfsclient.request import NfsPageRequest
from repro.sim import Simulator, WaitQueue
from repro.units import MIB, seconds, us


def sanitized_bed(**kwargs):
    with sanitized() as session:
        bed = TestBed(**kwargs)
    return bed, session


# -- race detector ------------------------------------------------------------


def test_clean_run_has_no_race_findings():
    with sanitized() as session:
        bed = TestBed(target="netapp", client="stock")
        bed.run_sequential_write(1 * MIB)
    harness = session.harnesses[0]
    assert harness.race.mutations_checked > 0
    assert harness.race.findings == []


def test_unlocked_request_list_mutation_is_reported():
    bed, session = sanitized_bed(target="netapp", client="stock")
    harness = session.harnesses[0]
    inode = None

    def culprit():
        nonlocal inode
        file = yield from bed.nfs.open_new("tampered")
        inode = file.inode
        # Mutate the BKL-protected request list without taking the BKL.
        request = NfsPageRequest(
            fileid=inode.fileid,
            page_index=0,
            offset_in_page=0,
            nbytes=4096,
            created_at=bed.sim.now,
        )
        inode.note_created(request)

    task = bed.sim.spawn(culprit(), name="culprit")
    bed.sim.run_until(lambda: task.done, limit=seconds(1))
    races = [f for f in harness.race.findings if f.category == "race"]
    assert len(races) == 1
    message = races[0].message
    assert "unlocked request-list mutation" in message
    assert "note_created" in message
    assert "task 'culprit'" in message
    assert "'bkl' unheld" in message


def test_locked_mutation_is_not_reported():
    bed, session = sanitized_bed(target="netapp", client="stock")
    harness = session.harnesses[0]

    def disciplined():
        file = yield from bed.nfs.open_new("proper")
        request = NfsPageRequest(
            fileid=file.inode.fileid,
            page_index=0,
            offset_in_page=0,
            nbytes=4096,
            created_at=bed.sim.now,
        )

        def mutate():
            file.inode.note_created(request)
            return
            yield  # pragma: no cover - generator marker

        yield from bed.nfs.bkl.hold("test_mutation", mutate())

    task = bed.sim.spawn(disciplined(), name="disciplined")
    bed.sim.run_until(lambda: task.done, limit=seconds(1))
    assert harness.race.findings == []
    assert harness.race.mutations_checked >= 1


def test_unlocked_index_mutation_is_reported():
    bed, session = sanitized_bed(target="netapp", client="stock")
    harness = session.harnesses[0]

    def culprit():
        request = NfsPageRequest(
            fileid=7, page_index=3, offset_in_page=0, nbytes=4096, created_at=0
        )
        bed.nfs.index.insert(request)
        return
        yield  # pragma: no cover - generator marker

    task = bed.sim.spawn(culprit(), name="culprit")
    bed.sim.run_until(lambda: task.done, limit=seconds(1))
    races = [f for f in harness.race.findings if f.category == "race"]
    assert len(races) == 1
    assert "unlocked index insert" in races[0].message
    assert "page 3 of file 7" in races[0].message


# -- accounting audit ---------------------------------------------------------


def test_audit_accounting_clean_after_run():
    with sanitized() as session:
        bed = TestBed(target="linux", client="stock")
        bed.run_sequential_write(1 * MIB)
    assert audit_accounting(bed.nfs) == []
    assert session.findings() == []


def test_audit_accounting_trips_on_tampered_counter():
    bed, _session = sanitized_bed(target="netapp", client="stock")
    bed.nfs.live_requests += 1  # claim a request the index has never seen
    findings = audit_accounting(bed.nfs)
    assert any("request count mismatch" in f.message for f in findings)


def test_audit_accounting_trips_on_negative_inode_counter():
    bed, _session = sanitized_bed(target="netapp", client="stock")

    def body():
        file = yield from bed.nfs.open_new("f")
        file.inode.live_requests = -1

    task = bed.sim.spawn(body())
    bed.sim.run_until(lambda: task.done, limit=seconds(1))
    findings = audit_accounting(bed.nfs)
    assert any("negative counter" in f.message for f in findings)


def test_audit_stable_bytes_trips_on_lost_data():
    bed, _session = sanitized_bed(target="netapp", client="stock")
    bed.run_sequential_write(1 * MIB)
    assert audit_stable_bytes(bed.nfs, bed.server) == []
    # Claim more acked-stable than the server ever persisted.
    bed.nfs.stats.bytes_acked_stable += 1
    findings = audit_stable_bytes(bed.nfs, bed.server)
    assert len(findings) == 1
    assert "acknowledged-stable data lost" in findings[0].message


# -- FIFO waitqueue sanitizer -------------------------------------------------


def test_fifo_sanitizer_clean_on_ordered_wakes():
    sim = Simulator()
    waitq = WaitQueue(sim, "q")
    waitq.sanitizer = FifoSanitizer()

    def sleeper():
        yield from waitq.sleep()

    def waker():
        yield sim.timeout(us(10))
        waitq.wake_one()
        waitq.wake_all()

    sim.spawn(sleeper())
    sim.spawn(sleeper())
    sim.spawn(sleeper())
    sim.spawn(waker())
    sim.run()
    assert waitq.sanitizer.findings == []
    assert waitq.sanitizer.wakes_checked == 3


def test_fifo_sanitizer_reports_out_of_order_wake():
    sim = Simulator()
    waitq = WaitQueue(sim, "q")
    sanitizer = FifoSanitizer()
    waitq.sanitizer = sanitizer

    def sleeper():
        yield from waitq.sleep()

    def rogue_waker():
        yield sim.timeout(us(10))
        # Bypass the queue discipline: wake the *newest* sleeper first.
        event = waitq._waiters.pop()
        sanitizer.on_wake(waitq, event)
        event.trigger()
        waitq.wake_all()

    sim.spawn(sleeper())
    sim.spawn(sleeper())
    sim.spawn(rogue_waker())
    sim.run()
    violations = [f for f in sanitizer.findings if f.category == "waitq-fifo"]
    assert len(violations) == 1
    assert "FIFO order broken" in violations[0].message
    assert "woke sleeper #1" in violations[0].message


# -- session scoping ----------------------------------------------------------


def test_no_sanitizers_outside_session():
    bed = TestBed(target="netapp", client="stock")
    assert bed.sanitizer is None
    assert bed.nfs.bkl.sanitizer is None
    assert bed.nfs.index.sanitizer is None


def test_dynamically_opened_inodes_are_watched():
    bed, session = sanitized_bed(target="netapp", client="stock")
    harness = session.harnesses[0]

    def body():
        file = yield from bed.nfs.open_new("later")
        assert file.inode.sanitizer is harness.race
        assert file.inode.waitq.sanitizer is harness.fifo

    task = bed.sim.spawn(body())
    bed.sim.run_until(lambda: task.done, limit=seconds(1))
