"""Tests for the whole-program flow analysis (repro.analysis.flow)."""

import io
import json
import textwrap

import pytest

from repro.analysis.flow import (
    DEFAULT_CONFIG,
    FLOW_RULES,
    FlowConfig,
    REPORT_SCHEMA,
    analyze,
    run_flow,
)
from repro.analysis.flow.baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.experiments.cli import main as cli_main


def codes(report):
    return [f.code for f in report.findings]


def fixture_config():
    """Config for the synthetic ``pkg`` fixture packages built below."""
    return FlowConfig(
        root_package="pkg",
        owned_module_prefixes=("pkg.obs",),
        entry_module_prefixes=("pkg.obs",),
        entry_exclude=frozenset(),
    )


SIM_PY = textwrap.dedent(
    """
    class Server:
        def __init__(self):
            self.dirty = False
            self.count = 0

    class Simulator:
        def __init__(self):
            self.now = 0.0

        def call_after(self, delay, fn):
            return (delay, fn)
    """
)

OBS_CLEAN = textwrap.dedent(
    """
    from .sim import Server, Simulator

    class Obs:
        def __init__(self):
            self.count = 0
            self.server = Server()
            self.sim = Simulator()

        def on_write(self, nbytes):
            self.count += 1
    """
)


def build_pkg(tmp_path, files):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    for name, src in files.items():
        (root / name).write_text(src)
    return root


def analyze_pkg(tmp_path, files):
    root = build_pkg(tmp_path, files)
    return analyze(root, config=fixture_config())


# -- PUR5xx pure-observer -----------------------------------------------------


def test_clean_observer_has_no_findings(tmp_path):
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "obs.py": OBS_CLEAN})
    assert codes(report) == []


def test_pur501_catches_injected_obs_hook_mutation(tmp_path):
    # The acceptance fixture: an observer hook that writes simulation
    # state through a typed self attribute must be caught.
    obs = OBS_CLEAN + textwrap.dedent(
        """
        def on_flush(obs: Obs):
            obs.server.dirty = True
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "obs.py": obs})
    found = codes(report)
    assert "PUR501" in found
    finding = next(f for f in report.findings if f.code == "PUR501")
    assert "Server" in finding.message
    assert finding.severity == "error"


def test_pur501_catches_mutation_via_self_attribute(tmp_path):
    obs = OBS_CLEAN.replace(
        "self.count += 1",
        "self.count += 1\n        self.server.count = nbytes",
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "obs.py": obs})
    assert "PUR501" in codes(report)


def test_pur501_reaches_through_helper_calls(tmp_path):
    # The write sits two calls below the hook; propagation must carry it
    # back up to the observer region.
    obs = OBS_CLEAN + textwrap.dedent(
        """
        class Deep(Obs):
            def on_commit(self):
                self._note()

            def _note(self):
                self._really_note()

            def _really_note(self):
                self.server.count = 7
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "obs.py": obs})
    assert "PUR501" in codes(report)


def test_pur503_flags_observer_scheduling(tmp_path):
    obs = OBS_CLEAN + textwrap.dedent(
        """
        class Ticker(Obs):
            def on_tick(self):
                self.sim.call_after(1.0, self.on_write)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "obs.py": obs})
    assert "PUR503" in codes(report)


def test_observer_writes_to_owned_state_stay_clean(tmp_path):
    obs = OBS_CLEAN + textwrap.dedent(
        """
        class Histo(Obs):
            def on_sample(self, value):
                self.count += value
                self.last = value
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "obs.py": obs})
    assert "PUR501" not in codes(report)
    assert "PUR503" not in codes(report)


# -- DET15x interprocedural taint ---------------------------------------------


def test_det151_clock_taint_reaches_fingerprint(tmp_path):
    src = textwrap.dedent(
        """
        import time

        def fingerprint(x):
            return hash(x)

        def stamp():
            t = time.time()
            return fingerprint(t)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "det.py": src})
    assert "DET151" in codes(report)


def test_det151_taint_flows_through_returns(tmp_path):
    src = textwrap.dedent(
        """
        import time

        def fingerprint(x):
            return hash(x)

        def now_ms():
            return time.time() * 1000.0

        def stamp():
            return fingerprint(now_ms())
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "det.py": src})
    assert "DET151" in codes(report)


def test_det152_rng_taint_reaches_scheduler(tmp_path):
    src = textwrap.dedent(
        """
        import random

        from .sim import Simulator

        def jitter(sim: Simulator, fn):
            sim.call_after(random.random(), fn)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "det.py": src})
    assert "DET152" in codes(report)


def test_det153_tainted_state_write_is_warning(tmp_path):
    src = textwrap.dedent(
        """
        import time

        class Node:
            def __init__(self):
                self.last = 0.0

            def touch(self):
                self.last = time.time()
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "det.py": src})
    found = [f for f in report.findings if f.code == "DET153"]
    assert found and all(f.severity == "warning" for f in found)


def test_seeded_stream_is_not_a_taint_source(tmp_path):
    src = textwrap.dedent(
        """
        import random

        def fingerprint(x):
            return hash(x)

        def stamp(seed):
            rng = random.Random(seed)
            return fingerprint(rng.random())
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "det.py": src})
    assert "DET151" not in codes(report)


def test_sorted_kills_set_order_taint(tmp_path):
    src = textwrap.dedent(
        """
        def fingerprint(x):
            return hash(x)

        def good(items):
            keys = set(items)
            return fingerprint(tuple(sorted(keys)))
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "det.py": src})
    assert "DET151" not in codes(report)


# -- LCK7xx lock discipline ---------------------------------------------------


def test_lck701_break_all_without_reacquire(tmp_path):
    src = textwrap.dedent(
        """
        def bad_send(bkl):
            depth = bkl.break_all()
            return depth
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "lck.py": src})
    found = [f for f in report.findings if f.code == "LCK701"]
    assert found and found[0].slug == "missing-reacquire"


def test_lck701_reacquire_outside_finally(tmp_path):
    src = textwrap.dedent(
        """
        def risky_send(bkl, wire):
            depth = bkl.break_all()
            wire.send(b"x")
            bkl.reacquire(depth)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "lck.py": src})
    found = [f for f in report.findings if f.code == "LCK701"]
    assert found and found[0].slug == "no-try-finally"


def test_lck701_accepts_finally_protected_idiom(tmp_path):
    src = textwrap.dedent(
        """
        def good_send(bkl, wire):
            depth = bkl.break_all()
            try:
                wire.send(b"x")
            finally:
                bkl.reacquire(depth)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "lck.py": src})
    assert "LCK701" not in codes(report)


def test_lck702_blocking_call_in_generator_handler(tmp_path):
    src = textwrap.dedent(
        """
        import time

        def handler():
            time.sleep(0.1)
            yield 1
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "lck.py": src})
    assert "LCK702" in codes(report)


def test_lck702_ignores_blocking_calls_outside_handlers(tmp_path):
    src = textwrap.dedent(
        """
        import time

        def host_side_setup():
            time.sleep(0.1)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "lck.py": src})
    assert "LCK702" not in codes(report)


# -- SIM6xx simulator-API misuse ----------------------------------------------


def test_sim601_negative_constant_delay(tmp_path):
    src = textwrap.dedent(
        """
        from .sim import Simulator

        def oops(sim: Simulator, fn):
            sim.call_after(1.0 - 2.0, fn)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "use.py": src})
    assert "SIM601" in codes(report)


def test_sim601_positive_delay_is_clean(tmp_path):
    src = textwrap.dedent(
        """
        from .sim import Simulator

        def fine(sim: Simulator, fn):
            sim.call_after(2.0 - 1.0, fn)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "use.py": src})
    assert "SIM601" not in codes(report)


def test_sim602_schedule_on_possibly_none_attr(tmp_path):
    src = textwrap.dedent(
        """
        class Box:
            def __init__(self):
                self.sim = None

            def go(self, fn):
                self.sim.call_after(1.0, fn)
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "use.py": src})
    assert "SIM602" in codes(report)


def test_sim603_dropped_coroutine(tmp_path):
    src = textwrap.dedent(
        """
        def work():
            yield 1

        def run():
            work()
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "use.py": src})
    assert "SIM603" in codes(report)


def test_sim603_not_flagged_when_iterated(tmp_path):
    src = textwrap.dedent(
        """
        def work():
            yield 1

        def run():
            yield from work()

        def collect():
            return list(work())
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "use.py": src})
    assert "SIM603" not in codes(report)


# -- FLW00x: syntax, suppressions, baseline hygiene ---------------------------


def test_flw001_reports_unparsable_file(tmp_path):
    report = analyze_pkg(
        tmp_path, {"sim.py": SIM_PY, "broken.py": "def oops(:\n"}
    )
    assert "FLW001" in codes(report)


def test_noqa_flow_suppresses_named_code(tmp_path):
    src = textwrap.dedent(
        """
        def work():
            yield 1

        def run():
            work()  # noqa-flow: SIM603
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "use.py": src})
    assert "SIM603" not in codes(report)
    assert "FLW003" not in codes(report)


def test_noqa_flow_wrong_code_does_not_suppress(tmp_path):
    src = textwrap.dedent(
        """
        def work():
            yield 1

        def run():
            work()  # noqa-flow: LCK701
        """
    )
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "use.py": src})
    found = codes(report)
    assert "SIM603" in found
    # The unused suppression itself goes stale.
    assert "FLW003" in found


def test_flw003_stale_noqa_flow(tmp_path):
    src = "X = 1  # noqa-flow: SIM601\n"
    report = analyze_pkg(tmp_path, {"sim.py": SIM_PY, "use.py": src})
    found = [f for f in report.findings if f.code == "FLW003"]
    assert found and "SIM601" in found[0].message


# -- baseline round-trip ------------------------------------------------------


def broken_pkg_files():
    src = textwrap.dedent(
        """
        def work():
            yield 1

        def run():
            work()
        """
    )
    return {"sim.py": SIM_PY, "use.py": src}


def test_baseline_round_trip_masks_known_findings(tmp_path):
    root = build_pkg(tmp_path, broken_pkg_files())
    baseline = tmp_path / "baseline.json"
    report = analyze(root, config=fixture_config())
    assert codes(report) == ["SIM603"]
    save_baseline(baseline, report.findings)

    entries = load_baseline(baseline)
    kept, matched, stale = apply_baseline(report.findings, entries)
    assert kept == []
    assert matched == 1
    assert stale == []


def test_baseline_keys_are_line_number_free(tmp_path):
    root = build_pkg(tmp_path, broken_pkg_files())
    report = analyze(root, config=fixture_config())
    key = report.findings[0].key
    assert "SIM603" in key and "::pkg.use.run::" in key
    assert str(report.findings[0].line) + ":" not in key


def test_stale_baseline_entry_is_flw002_error(tmp_path):
    root = build_pkg(tmp_path, {"sim.py": SIM_PY})
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "schema": BASELINE_SCHEMA,
                "entries": [
                    {
                        "code": "SIM603",
                        "key": "SIM603::pkg/use.py::pkg.use.run::drop:work",
                        "justification": "legacy",
                    }
                ],
            }
        )
    )
    out = io.StringIO()
    rc = run_flow(
        root=str(root),
        baseline=str(baseline),
        out=out,
        config=fixture_config(),
    )
    assert rc == 1
    assert "FLW002" in out.getvalue()


def test_write_baseline_keeps_existing_justifications(tmp_path):
    root = build_pkg(tmp_path, broken_pkg_files())
    baseline = tmp_path / "baseline.json"
    rc = run_flow(
        root=str(root),
        write_baseline=str(baseline),
        out=io.StringIO(),
        config=fixture_config(),
    )
    assert rc == 0
    data = json.loads(baseline.read_text())
    data["entries"][0]["justification"] = "reviewed: generator drop is a test prop"
    baseline.write_text(json.dumps(data))

    rc = run_flow(
        root=str(root),
        write_baseline=str(baseline),
        out=io.StringIO(),
        config=fixture_config(),
    )
    assert rc == 0
    regenerated = json.loads(baseline.read_text())
    assert regenerated["entries"][0]["justification"] == (
        "reviewed: generator drop is a test prop"
    )


def test_new_finding_fails_despite_baseline(tmp_path):
    root = build_pkg(tmp_path, broken_pkg_files())
    baseline = tmp_path / "baseline.json"
    out = io.StringIO()
    rc = run_flow(
        root=str(root),
        write_baseline=str(baseline),
        out=out,
        config=fixture_config(),
    )
    assert rc == 0

    # A new dropped coroutine appears: the baseline must not mask it.
    (root / "use.py").write_text(
        (root / "use.py").read_text()
        + "\n\ndef run_again():\n    work()\n"
    )
    out = io.StringIO()
    rc = run_flow(
        root=str(root),
        baseline=str(baseline),
        out=out,
        config=fixture_config(),
    )
    assert rc == 1
    assert "run_again" in out.getvalue()


# -- run_flow CLI contract ----------------------------------------------------


def test_run_flow_exit_zero_on_clean_package(tmp_path):
    root = build_pkg(tmp_path, {"sim.py": SIM_PY, "obs.py": OBS_CLEAN})
    out = io.StringIO()
    rc = run_flow(root=str(root), strict=True, out=out, config=fixture_config())
    assert rc == 0
    assert "0 finding(s)" in out.getvalue()


def test_run_flow_exit_one_on_error_finding(tmp_path):
    root = build_pkg(tmp_path, broken_pkg_files())
    out = io.StringIO()
    rc = run_flow(root=str(root), out=out, config=fixture_config())
    assert rc == 1


def test_run_flow_warnings_fail_only_under_strict(tmp_path):
    src = textwrap.dedent(
        """
        import time

        class Node:
            def __init__(self):
                self.last = 0.0

            def touch(self):
                self.last = time.time()
        """
    )
    root = build_pkg(tmp_path, {"sim.py": SIM_PY, "det.py": src})
    rc = run_flow(
        root=str(root), out=io.StringIO(), config=fixture_config()
    )
    assert rc == 0
    rc = run_flow(
        root=str(root), strict=True, out=io.StringIO(), config=fixture_config()
    )
    assert rc == 1


def test_run_flow_unknown_select_is_usage_error(tmp_path):
    root = build_pkg(tmp_path, {"sim.py": SIM_PY})
    out = io.StringIO()
    rc = run_flow(
        root=str(root), select="NOPE999", out=out, config=fixture_config()
    )
    assert rc == 2
    assert "unknown rule code" in out.getvalue()


def test_run_flow_select_filters_codes(tmp_path):
    root = build_pkg(tmp_path, broken_pkg_files())
    out = io.StringIO()
    rc = run_flow(
        root=str(root), select="LCK701", out=out, config=fixture_config()
    )
    assert rc == 0  # the SIM603 finding is filtered out


def test_run_flow_bad_baseline_is_usage_error(tmp_path):
    root = build_pkg(tmp_path, {"sim.py": SIM_PY})
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    out = io.StringIO()
    rc = run_flow(
        root=str(root), baseline=str(baseline), out=out, config=fixture_config()
    )
    assert rc == 2
    assert "cannot load baseline" in out.getvalue()


def test_run_flow_json_payload_is_schema_stable(tmp_path):
    root = build_pkg(tmp_path, broken_pkg_files())
    out = io.StringIO()
    rc = run_flow(root=str(root), fmt="json", out=out, config=fixture_config())
    assert rc == 1
    payload = json.loads(out.getvalue())
    assert payload["schema"] == REPORT_SCHEMA
    assert set(payload) == {"schema", "root", "stats", "baseline", "findings"}
    finding = payload["findings"][0]
    assert set(finding) == {
        "code",
        "path",
        "line",
        "severity",
        "message",
        "scope",
        "key",
    }
    assert finding["code"] == "SIM603"


# -- self-analysis: the repository is its own fixture -------------------------


def test_repo_has_no_pur501_errors():
    # The headline contract: no observer-reachable write to non-observer
    # state anywhere in the tree, without any baseline help.
    report = analyze()
    assert [f.render() for f in report.findings if f.code == "PUR501"] == []


def test_repo_is_clean_under_committed_baseline():
    import pathlib

    repo = pathlib.Path(__file__).resolve().parents[2]
    out = io.StringIO()
    rc = run_flow(
        strict=True, baseline=str(repo / "flow-baseline.json"), out=out
    )
    assert rc == 0, out.getvalue()


def test_repo_analysis_is_fast_enough():
    report = analyze()
    assert report.stats["elapsed_ms"] < 30_000


def test_rule_table_is_consistent():
    for code, rule in FLOW_RULES.items():
        assert rule.code == code
        assert rule.severity in ("error", "warning")
        assert rule.summary


# -- CLI wiring ---------------------------------------------------------------


def test_cli_flow_subcommand_runs(tmp_path, capsys):
    root = build_pkg(tmp_path, broken_pkg_files())
    rc = cli_main(["flow", str(root)])
    captured = capsys.readouterr()
    # Fixture package analysed under repo defaults: entry/owned prefixes
    # don't match, but SIM603 is structural and still fires.
    assert rc == 1
    assert "SIM603" in captured.out


def test_cli_flow_select_unknown_code_exits_two(tmp_path):
    root = build_pkg(tmp_path, {"sim.py": SIM_PY})
    rc = cli_main(["flow", str(root), "--select", "ZZZ000"])
    assert rc == 2
