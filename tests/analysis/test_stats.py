"""Tests for analysis statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    linear_slope,
    mean,
    percentile,
    ratio,
    stddev,
    windowed_jitter,
)


def test_mean_and_stddev():
    assert mean([]) == 0.0
    assert mean([2, 4, 6]) == 4.0
    assert stddev([5]) == 0.0
    assert stddev([2, 4]) == pytest.approx(2 ** 0.5)


def test_percentile():
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 100
    assert percentile(values, 50) == pytest.approx(50.5)
    assert percentile([], 50) == 0.0
    assert percentile([7], 99) == 7
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_linear_slope():
    assert linear_slope([1, 2, 3, 4]) == pytest.approx(1.0)
    assert linear_slope([5, 5, 5]) == 0.0
    assert linear_slope([4, 3, 2, 1]) == pytest.approx(-1.0)
    assert linear_slope([7]) == 0.0


def test_windowed_jitter():
    values = [10, 10, 10, 10, 1, 20, 1, 20]
    windows = windowed_jitter(values, 4)
    assert len(windows) == 2
    assert windows[0][1] == 0.0
    assert windows[1][1] > 5
    with pytest.raises(ValueError):
        windowed_jitter(values, 1)


def test_ratio_zero_safe():
    assert ratio(10, 5) == 2.0
    assert ratio(1, 0) == float("inf")
    assert ratio(0, 0) == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
@settings(max_examples=80, deadline=None)
def test_percentile_monotone(values):
    assert percentile(values, 25) <= percentile(values, 75)
    assert min(values) <= percentile(values, 50) <= max(values)


@given(
    st.floats(min_value=-100, max_value=100),
    st.floats(min_value=-50, max_value=50),
    st.integers(min_value=3, max_value=60),
)
@settings(max_examples=60, deadline=None)
def test_linear_slope_recovers_exact_lines(intercept, slope, n):
    ys = [intercept + slope * x for x in range(n)]
    assert linear_slope(ys) == pytest.approx(slope, abs=1e-6)


def test_knee_point_finds_the_bend():
    from repro.analysis.stats import knee_point

    # Flat then steep: the bend sits at the regime change.
    xs = [1, 2, 3, 4, 5, 6]
    ys = [10, 10, 10, 10, 100, 200]
    assert knee_point(xs, ys) == 3
    # Degenerate inputs detect nothing.
    assert knee_point([1, 2], [1, 2]) is None
    assert knee_point([1, 1, 1], [1, 2, 3]) is None
    assert knee_point([1, 2, 3], [5, 5, 5]) is None
    with pytest.raises(ValueError, match="equal-length"):
        knee_point([1, 2, 3], [1, 2])


def test_percentile_of_sorted_methods_agree_on_edges():
    from repro.analysis.stats import percentile_of_sorted

    values = [1, 2, 3, 4]
    assert percentile_of_sorted(values, 100, method="linear") == 4
    assert percentile_of_sorted(values, 100, method="nearest-rank") == 4
    assert percentile_of_sorted(values, 0, method="linear") == 1
    assert percentile_of_sorted([], 50, method="linear") == 0.0
    assert percentile_of_sorted([], 50, method="nearest-rank") == 0
    with pytest.raises(ValueError):
        percentile_of_sorted(values, 0, method="nearest-rank")
    with pytest.raises(ValueError):
        percentile_of_sorted(values, 50, method="bogus")
