"""Tests for analysis statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    linear_slope,
    mean,
    percentile,
    ratio,
    stddev,
    windowed_jitter,
)


def test_mean_and_stddev():
    assert mean([]) == 0.0
    assert mean([2, 4, 6]) == 4.0
    assert stddev([5]) == 0.0
    assert stddev([2, 4]) == pytest.approx(2 ** 0.5)


def test_percentile():
    values = list(range(1, 101))
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 100
    assert percentile(values, 50) == pytest.approx(50.5)
    assert percentile([], 50) == 0.0
    assert percentile([7], 99) == 7
    with pytest.raises(ValueError):
        percentile([1], 101)


def test_linear_slope():
    assert linear_slope([1, 2, 3, 4]) == pytest.approx(1.0)
    assert linear_slope([5, 5, 5]) == 0.0
    assert linear_slope([4, 3, 2, 1]) == pytest.approx(-1.0)
    assert linear_slope([7]) == 0.0


def test_windowed_jitter():
    values = [10, 10, 10, 10, 1, 20, 1, 20]
    windows = windowed_jitter(values, 4)
    assert len(windows) == 2
    assert windows[0][1] == 0.0
    assert windows[1][1] > 5
    with pytest.raises(ValueError):
        windowed_jitter(values, 1)


def test_ratio_zero_safe():
    assert ratio(10, 5) == 2.0
    assert ratio(1, 0) == float("inf")
    assert ratio(0, 0) == 0.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
@settings(max_examples=80, deadline=None)
def test_percentile_monotone(values):
    assert percentile(values, 25) <= percentile(values, 75)
    assert min(values) <= percentile(values, 50) <= max(values)


@given(
    st.floats(min_value=-100, max_value=100),
    st.floats(min_value=-50, max_value=50),
    st.integers(min_value=3, max_value=60),
)
@settings(max_examples=60, deadline=None)
def test_linear_slope_recovers_exact_lines(intercept, slope, n):
    ys = [intercept + slope * x for x in range(n)]
    assert linear_slope(ys) == pytest.approx(slope, abs=1e-6)
