"""Tests for the lock-order/deadlock sanitizer (lockcheck)."""

from repro.analysis.sanitize import LockOrderSanitizer, sanitized
from repro.bench.runner import TestBed
from repro.sim import MonitoredLock, Simulator
from repro.units import MIB, us


def make_locks(sim, *names):
    locks = []
    sanitizer = LockOrderSanitizer(sim)
    for name in names:
        lock = MonitoredLock(sim, name=name)
        lock.sanitizer = sanitizer
        locks.append(lock)
    return sanitizer, locks


def hold_both(sim, first, second, labels, dwell_ns):
    yield from first.acquire(labels[0])
    yield sim.timeout(dwell_ns)
    yield from second.acquire(labels[1])
    second.release()
    first.release()


def test_lock_order_inversion_reports_both_witnesses():
    sim = Simulator()
    sanitizer, (a, b) = make_locks(sim, "lock-a", "lock-b")
    # Task one establishes a→b; task two (staggered so the runs do not
    # deadlock) takes b→a: an inversion with both witness traces.
    sim.spawn(hold_both(sim, a, b, ("one/a", "one/b"), us(1)), name="one")

    def two():
        yield sim.timeout(us(10))
        yield from hold_both(sim, b, a, ("two/b", "two/a"), us(1))

    sim.spawn(two(), name="two")
    sim.run()
    inversions = [f for f in sanitizer.findings if f.category == "lock-order"]
    assert len(inversions) == 1
    message = inversions[0].message
    assert "'lock-a'" in message and "'lock-b'" in message
    assert "task 'two'" in message  # the inverting acquisition
    assert "task 'one'" in message  # the established-order witness
    assert "opposite order was established earlier" in message


def test_no_inversion_for_consistent_order():
    sim = Simulator()
    sanitizer, (a, b) = make_locks(sim, "lock-a", "lock-b")
    sim.spawn(hold_both(sim, a, b, ("one/a", "one/b"), us(1)), name="one")

    def two():
        yield sim.timeout(us(10))
        yield from hold_both(sim, a, b, ("two/a", "two/b"), us(1))

    sim.spawn(two(), name="two")
    sim.run()
    assert sanitizer.findings == []
    assert sanitizer.events > 0


def test_deadlock_cycle_produces_witness_chain():
    sim = Simulator()
    sanitizer, (a, b) = make_locks(sim, "lock-a", "lock-b")

    def one():
        yield from a.acquire("one/a")
        yield sim.timeout(us(5))
        yield from b.acquire("one/b")  # blocks forever

    def two():
        yield from b.acquire("two/b")
        yield sim.timeout(us(5))
        yield from a.acquire("two/a")  # closes the cycle

    sim.spawn(one(), name="one", daemon=True)
    sim.spawn(two(), name="two", daemon=True)
    sim.run()
    deadlocks = [f for f in sanitizer.findings if f.category == "deadlock"]
    assert len(deadlocks) == 1
    message = deadlocks[0].message
    assert "deadlock cycle" in message
    assert "waits for 'lock-a'" in message
    assert "waits for 'lock-b'" in message
    assert "the cycle closes" in message


def test_three_party_deadlock_detected():
    sim = Simulator()
    sanitizer, (a, b, c) = make_locks(sim, "lock-a", "lock-b", "lock-c")

    def ring(first, second, label):
        def body():
            yield from first.acquire(f"{label}/1")
            yield sim.timeout(us(5))
            yield from second.acquire(f"{label}/2")

        return body

    sim.spawn(ring(a, b, "one")(), name="one", daemon=True)
    sim.spawn(ring(b, c, "two")(), name="two", daemon=True)
    sim.spawn(ring(c, a, "three")(), name="three", daemon=True)
    sim.run()
    deadlocks = [f for f in sanitizer.findings if f.category == "deadlock"]
    assert deadlocks, "three-task cycle went undetected"
    assert "lock-c" in deadlocks[0].message


def test_reentrant_depth_accounting_is_clean():
    sim = Simulator()
    sanitizer, (a,) = make_locks(sim, "lock-a")

    def body():
        yield from a.acquire("outer")
        yield from a.acquire("inner")
        yield sim.timeout(us(1))
        a.release()
        a.release()

    sim.spawn(body(), name="one")
    sim.run()
    assert sanitizer.findings == []


def test_sanitized_send_unlocked_run_is_clean():
    # The paper's BKL-dropping patch exercises break_all/reacquire on
    # every send; the depth accounting must balance across all of it.
    with sanitized() as session:
        bed = TestBed(target="netapp", client="nolock")
        bed.run_sequential_write(1 * MIB)
    harness = session.harnesses[0]
    assert harness.lock_order.events > 0
    assert session.findings() == []


def test_sanitized_stock_run_is_clean():
    with sanitized() as session:
        bed = TestBed(target="linux", client="stock")
        bed.run_sequential_write(1 * MIB)
    harness = session.harnesses[0]
    assert harness.lock_order.events > 0
    assert session.findings() == []
