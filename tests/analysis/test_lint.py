"""Tests for the determinism linter (repro.analysis.sanitize.lint)."""

import io
import json

from repro.analysis.sanitize.lint import (
    RULES,
    default_lint_root,
    fix_suppressions,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.experiments.cli import main as cli_main


def codes(findings):
    return [f.code for f in findings]


# -- DET101: unseeded global RNG ----------------------------------------------


def test_det101_flags_global_random_calls():
    src = "import random\nx = random.random()\ny = random.randint(1, 6)\n"
    found = codes(lint_source(src))
    assert found.count("DET101") == 2


def test_det101_not_flagged_for_stream_methods():
    # Calls on a named stream object are the sanctioned pattern.
    src = "def f(stream):\n    return stream.random()\n"
    assert "DET101" not in codes(lint_source(src))


def test_det101_suppressed():
    src = "import random\nx = random.random()  # noqa: DET101\n"
    assert "DET101" not in codes(lint_source(src))


# -- DET102: wall-clock reads -------------------------------------------------


def test_det102_flags_time_time_and_datetime_now():
    src = (
        "import time\nimport datetime\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
        "c = datetime.datetime.now()\n"
    )
    assert codes(lint_source(src)).count("DET102") == 3


def test_det102_suppressed():
    src = "import time\nstarted = time.time()  # noqa: DET102 wall clock\n"
    assert "DET102" not in codes(lint_source(src))


# -- DET103: iteration over unordered sets ------------------------------------


def test_det103_flags_for_over_set_call():
    src = "for item in set(items):\n    handle(item)\n"
    assert "DET103" in codes(lint_source(src))


def test_det103_flags_set_literal_comprehension():
    src = "out = [f(x) for x in {1, 2, 3}]\n"
    assert "DET103" in codes(lint_source(src))


def test_det103_allows_sorted_sets():
    src = "for item in sorted(set(items)):\n    handle(item)\n"
    assert "DET103" not in codes(lint_source(src))


def test_det103_allows_plain_dict_iteration():
    # Dicts iterate in insertion order — deterministic, not flagged.
    src = "for key in mapping:\n    handle(key)\n"
    assert "DET103" not in codes(lint_source(src))


def test_det103_suppressed():
    src = "for item in set(items):  # noqa: DET103\n    handle(item)\n"
    assert "DET103" not in codes(lint_source(src))


# -- DET104: id() in orderings/hashes -----------------------------------------


def test_det104_flags_id_in_sort_key():
    src = "items.sort(key=lambda t: id(t))\n"
    assert "DET104" in codes(lint_source(src))


def test_det104_flags_id_in_hash():
    src = "h = hash((id(node), 3))\n"
    assert "DET104" in codes(lint_source(src))


def test_det104_plain_id_call_not_flagged():
    src = "label = id(task)\n"
    assert "DET104" not in codes(lint_source(src))


def test_det104_suppressed():
    src = "items.sort(key=lambda t: id(t))  # noqa: DET104\n"
    assert "DET104" not in codes(lint_source(src))


# -- DET105: stray random import ----------------------------------------------


def test_det105_flags_import_random():
    assert "DET105" in codes(lint_source("import random\n"))
    assert "DET105" in codes(lint_source("from random import Random\n"))


def test_det105_suppressed():
    src = "import random  # noqa: DET105 typing only\n"
    assert "DET105" not in codes(lint_source(src))


# -- MUT201: mutable defaults -------------------------------------------------


def test_mut201_flags_mutable_defaults():
    src = "def f(a, b=[], c={}, d=set()):\n    return a\n"
    assert codes(lint_source(src)).count("MUT201") == 3


def test_mut201_allows_immutable_defaults():
    src = "def f(a=None, b=(), c=0, d='x'):\n    return a\n"
    assert "MUT201" not in codes(lint_source(src))


def test_mut201_suppressed():
    src = "def f(a=[]):  # noqa: MUT201\n    return a\n"
    assert "MUT201" not in codes(lint_source(src))


# -- DEAD301: unreachable code ------------------------------------------------


def test_dead301_flags_code_after_return():
    src = "def f():\n    return 1\n    do_cleanup()\n"
    found = lint_source(src)
    assert "DEAD301" in codes(found)
    message = next(f.message for f in found if f.code == "DEAD301")
    assert "line 2" in message  # points at the terminating statement


def test_dead301_flags_code_after_raise_in_loop():
    src = "def f():\n    for x in items:\n        raise ValueError(x)\n        x += 1\n"
    assert "DEAD301" in codes(lint_source(src))


def test_dead301_allows_generator_marker_yield():
    # The deliberate `return; yield` idiom that makes a function a
    # generator (used throughout the lock layer) is exempt.
    src = "def gen():\n    if fast_path:\n        return\n        yield\n    yield work\n"
    assert "DEAD301" not in codes(lint_source(src))


def test_dead301_flags_statements_after_generator_marker():
    src = "def gen():\n    return\n    yield\n    cleanup()\n"
    assert "DEAD301" in codes(lint_source(src))


def test_dead301_suppressed():
    src = "def f():\n    return 1\n    cleanup()  # noqa: DEAD301\n"
    assert "DEAD301" not in codes(lint_source(src))


# -- SUP401 / suppression mechanics -------------------------------------------


def test_bare_noqa_silences_all_rules():
    src = "import time\nt = time.time()  # noqa\n"
    assert codes(lint_source(src)) == []


def test_sup401_reports_stale_own_code_in_strict_only():
    src = "x = 1  # noqa: DET101\n"
    assert "SUP401" not in codes(lint_source(src))
    assert "SUP401" in codes(lint_source(src, strict=True))


def test_sup401_ignores_foreign_codes_and_bare_noqa():
    src = "try:\n    pass\nexcept Exception:  # noqa: BLE001\n    pass\nx = 1  # noqa\n"
    assert "SUP401" not in codes(lint_source(src, strict=True))


# -- SYN001 -------------------------------------------------------------------


def test_syn001_on_syntax_error():
    found = lint_source("def broken(:\n")
    assert codes(found) == ["SYN001"]


# -- engine: select, paths, repo-wide -----------------------------------------


def test_select_filters_codes():
    src = "import time\nimport random\nt = time.time()\n"
    found = lint_source(src, select=["DET102"])
    assert codes(found) == ["DET102"]


def test_every_rule_has_code_name_and_severity():
    for code, rule in RULES.items():
        assert rule.code == code
        assert rule.name
        assert rule.severity in ("error", "warning")


def test_repo_is_lint_clean_in_strict_mode():
    # The acceptance criterion: the shipped sources pass --strict.
    findings = lint_paths([str(default_lint_root())], strict=True)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_lint_paths_on_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    found = lint_paths([str(bad)])
    assert codes(found) == ["DET102"]


# -- run_lint / CLI -----------------------------------------------------------


def test_run_lint_exit_codes(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    warn_only = tmp_path / "warn.py"
    warn_only.write_text("x = 1  # noqa: DET101\n")

    assert run_lint([str(clean)], out=io.StringIO()) == 0
    assert run_lint([str(dirty)], out=io.StringIO()) == 1
    # Warnings fail only under --strict.
    assert run_lint([str(warn_only)], out=io.StringIO()) == 0
    assert run_lint([str(warn_only)], strict=True, out=io.StringIO()) == 1
    # Unknown --select codes are a usage error.
    assert run_lint([str(clean)], select="NOPE999", out=io.StringIO()) == 2


def test_run_lint_text_output(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    out = io.StringIO()
    run_lint([str(dirty)], out=out)
    text = out.getvalue()
    assert "dirty.py:2:" in text
    assert "DET102" in text
    assert "1 error(s)" in text


def test_run_lint_json_output(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\nx = random.random()\n")
    out = io.StringIO()
    run_lint([str(dirty)], fmt="json", out=out)
    payload = json.loads(out.getvalue())
    # Sorted by line: the stray import on line 1, the draw on line 2.
    assert [f["code"] for f in payload] == ["DET105", "DET101"]
    assert payload[1]["line"] == 2


def test_cli_lint_subcommand(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert cli_main(["lint", str(dirty)]) == 1
    assert "DET102" in capsys.readouterr().out
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert cli_main(["lint", str(clean), "--strict"]) == 0
    capsys.readouterr()


def test_cli_lint_select_and_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nimport random\nt = time.time()\n")
    assert cli_main(["lint", str(dirty), "--select", "DET105", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in payload] == ["DET105"]


# -- DET103 regressions: comprehensions feeding order-insensitive sinks -------


def test_det103_allows_genexp_over_set_into_sorted():
    src = "out = sorted(x for x in {1, 2, 3})\n"
    assert "DET103" not in codes(lint_source(src))


def test_det103_allows_genexp_over_set_call_into_sum():
    src = "def f(ys):\n    return sum(1 for x in set(ys))\n"
    assert "DET103" not in codes(lint_source(src))


def test_det103_allows_listcomp_over_set_into_min_max():
    src = "lo = min([x for x in {3, 1}])\nhi = max([x for x in {3, 1}])\n"
    assert "DET103" not in codes(lint_source(src))


def test_det103_still_flags_bare_listcomp_over_set():
    # Not fed to an order-insensitive consumer: order leaks out.
    src = "out = [x for x in {1, 2, 3}]\n"
    assert "DET103" in codes(lint_source(src))


def test_det103_still_flags_list_call_over_set():
    src = "out = list({1, 2, 3})\n"
    assert "DET103" in codes(lint_source(src))


def test_det103_still_flags_for_loop_over_set():
    src = "def f(ys):\n    for x in set(ys):\n        print(x)\n"
    assert "DET103" in codes(lint_source(src))


def test_det103_nested_comprehension_exemption_is_per_iter():
    # Only the genexp handed to sorted() is exempt; the sibling
    # comprehension over a set still fires.
    src = (
        "a = sorted(x for x in {1, 2})\n"
        "b = [x for x in {1, 2}]\n"
    )
    assert codes(lint_source(src)).count("DET103") == 1


# -- fix_suppressions ---------------------------------------------------------


def test_fix_suppressions_dry_run_reports_and_exits_one(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1  # noqa: DET101\n")
    out = io.StringIO()
    rc = fix_suppressions([str(target)], out=out)
    assert rc == 1
    assert "would remove" in out.getvalue()
    # Dry run must not touch the file.
    assert target.read_text() == "x = 1  # noqa: DET101\n"


def test_fix_suppressions_write_rewrites_file(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "t = time.time()  # noqa: DET102\n"
        "x = 1  # noqa: DET101\n"
    )
    out = io.StringIO()
    rc = fix_suppressions([str(target)], write=True, out=out)
    assert rc == 0
    text = target.read_text()
    # The live suppression survives; the stale one is stripped.
    assert "noqa: DET102" in text
    assert "noqa: DET101" not in text
    assert text.endswith("x = 1\n")
    assert "removed 1 stale suppression(s) in 1 file(s)" in out.getvalue()


def test_fix_suppressions_clean_tree_exits_zero(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    out = io.StringIO()
    assert fix_suppressions([str(target)], out=out) == 0
    assert "0 stale suppression(s) found" in out.getvalue()


def test_fix_suppressions_partially_live_noqa_untouched(tmp_path):
    # One comment carrying a live code never fires SUP401, so the fixer
    # must leave it alone even when a second listed code is stale.
    target = tmp_path / "mod.py"
    target.write_text("import time\nt = time.time()  # noqa: DET102,DET101\n")
    out = io.StringIO()
    rc = fix_suppressions([str(target)], write=True, out=out)
    assert rc == 0
    assert "noqa: DET102,DET101" in target.read_text()


def test_cli_lint_fix_suppressions(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("x = 1  # noqa: DET101\n")
    assert cli_main(["lint", str(target), "--fix-suppressions"]) == 1
    assert "would remove" in capsys.readouterr().out
    assert cli_main(["lint", str(target), "--fix-suppressions", "--write"]) == 0
    capsys.readouterr()
    assert target.read_text() == "x = 1\n"


# -- exit-code contract on broken input ---------------------------------------


def test_run_lint_broken_file_is_syn001_exit_one(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def oops(:\n")
    out = io.StringIO()
    rc = run_lint([str(broken)], out=out)
    assert rc == 1
    assert "SYN001" in out.getvalue()


def test_run_lint_json_field_set_is_stable(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    out = io.StringIO()
    run_lint([str(dirty)], fmt="json", out=out)
    payload = json.loads(out.getvalue())
    assert payload
    for finding in payload:
        assert set(finding) == {
            "path",
            "line",
            "col",
            "code",
            "message",
            "severity",
        }


def test_cli_lint_deep_runs_flow_analysis(tmp_path, capsys, monkeypatch):
    # --deep composes the shallow lint with the whole-program flow pass;
    # exit is the max of both lanes. Run from the repo root so the
    # committed flow-baseline.json is discovered.
    import pathlib

    repo = pathlib.Path(__file__).resolve().parents[2]
    monkeypatch.chdir(repo)
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    rc = cli_main(["lint", str(clean), "--deep"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "baselined" in captured.out
