"""Tests for the paper-vs-measured comparison records."""

from repro.analysis import Comparison


def test_all_passed_logic():
    comparison = Comparison("test")
    comparison.add("a", True, paper="1", measured="1")
    assert comparison.all_passed
    comparison.add("b", False, paper="2", measured="3")
    assert not comparison.all_passed
    assert [c.name for c in comparison.failed()] == ["b"]


def test_render_contains_verdicts():
    comparison = Comparison("exp")
    comparison.add("good", True, paper="x", measured="x")
    comparison.add("bad", False, paper="y", measured="z", note="why")
    text = comparison.render()
    assert "[PASS] good" in text
    assert "[FAIL] bad" in text
    assert "(why)" in text
    assert "SOME CRITERIA FAILED" in text
    assert "(1/2)" in text


def test_truthiness_coercion():
    comparison = Comparison("exp")
    comparison.add("numeric", 1, paper="", measured="")
    assert comparison.checks[0].passed is True
