"""Tests for the stock sorted-list index and its cost accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.nfsclient import NfsPageRequest, SortedListIndex
from repro.nfsclient.request_list import Fenwick
from repro.units import PAGE_SIZE


def make_req(page, fileid=1):
    return NfsPageRequest(fileid, page, 0, PAGE_SIZE, created_at=0)


# --- Fenwick tree ------------------------------------------------------------


def test_fenwick_rank_and_membership():
    fw = Fenwick(size=16)
    for idx in (3, 7, 11):
        fw.add(idx)
    assert fw.count == 3
    assert fw.rank(0) == 0
    assert fw.rank(4) == 1
    assert fw.rank(8) == 2
    assert fw.rank(100) == 3
    assert fw.contains(7)
    assert not fw.contains(6)
    fw.discard(7)
    assert fw.rank(8) == 1
    with pytest.raises(SimulationError):
        fw.discard(7)


def test_fenwick_grows_on_demand():
    fw = Fenwick(size=4)
    fw.add(1000)
    assert fw.contains(1000)
    assert fw.rank(1001) == 1
    fw.add(2)
    assert fw.rank(1000) == 1


@given(st.sets(st.integers(min_value=0, max_value=500), max_size=60))
@settings(max_examples=60, deadline=None)
def test_fenwick_matches_naive_ranks(indices):
    fw = Fenwick(size=8)
    ordered = sorted(indices)
    for idx in indices:
        fw.add(idx)
    for probe in list(indices) + [0, 250, 501]:
        naive = sum(1 for i in ordered if i < probe)
        assert fw.rank(probe) == naive


# --- SortedListIndex ----------------------------------------------------------


def test_sequential_insert_walks_whole_list():
    """The Fig. 3 pathology: each append scans every existing node."""
    index = SortedListIndex(node_cost_ns=10)
    for page in range(100):
        found, find_cost = index.find(1, page)
        assert found is None
        # A miss past the tail visits all existing nodes.
        assert find_cost == 10 * page
        insert_cost = index.insert(make_req(page))
        assert insert_cost == 10 * page
    assert len(index) == 100


def test_find_hit_cost_is_rank_plus_one():
    index = SortedListIndex(node_cost_ns=10)
    reqs = [make_req(p) for p in (2, 5, 9)]
    for req in reqs:
        index.insert(req)
    found, cost = index.find(1, 5)
    assert found is reqs[1]
    assert cost == 10 * 2  # walks nodes 2 and 5
    found, cost = index.find(1, 2)
    assert cost == 10 * 1


def test_miss_in_middle_stops_at_successor():
    index = SortedListIndex(node_cost_ns=10)
    for page in (1, 10, 20):
        index.insert(make_req(page))
    found, cost = index.find(1, 5)
    assert found is None
    assert cost == 10 * 2  # walks node 1 then stops at node 10


def test_remove_is_constant_cost():
    index = SortedListIndex(node_cost_ns=10)
    reqs = [make_req(p) for p in range(50)]
    for req in reqs:
        index.insert(req)
    assert index.remove(reqs[25]) == 10
    found, _ = index.find(1, 25)
    assert found is None
    assert len(index) == 49


def test_per_inode_lists_are_independent():
    index = SortedListIndex(node_cost_ns=10)
    for page in range(20):
        index.insert(make_req(page, fileid=1))
    # A different inode's list is empty: zero walk cost.
    found, cost = index.find(2, 5)
    assert found is None
    assert cost == 0
    index.insert(make_req(5, fileid=2))
    found, cost = index.find(2, 5)
    assert found is not None
    assert cost == 10


def test_duplicate_insert_rejected():
    index = SortedListIndex(node_cost_ns=10)
    index.insert(make_req(3))
    with pytest.raises(SimulationError):
        index.insert(make_req(3))


def test_remove_unknown_rejected():
    index = SortedListIndex(node_cost_ns=10)
    with pytest.raises(SimulationError):
        index.remove(make_req(3))


def test_peek_is_pythonic_lookup():
    index = SortedListIndex(node_cost_ns=10)
    req = make_req(7)
    index.insert(req)
    assert index.peek(1, 7) is req
    assert index.peek(1, 8) is None
    assert index.peek(9, 7) is None


@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "remove", "find"]),
                  st.integers(min_value=0, max_value=300)),
        max_size=120,
    )
)
@settings(max_examples=50, deadline=None)
def test_index_matches_reference_dict(ops):
    """The index agrees with a naive model under arbitrary op sequences,
    and the charged find cost always equals the sorted-walk length."""
    index = SortedListIndex(node_cost_ns=1)
    reference = {}
    for op, page in ops:
        if op == "insert" and page not in reference:
            req = make_req(page)
            reference[page] = req
            index.insert(req)
        elif op == "remove" and page in reference:
            index.remove(reference.pop(page))
        elif op == "find":
            found, cost = index.find(1, page)
            assert found is reference.get(page)
            keys = sorted(reference)
            below = sum(1 for k in keys if k < page)
            expected = below + 1 if (page in reference or below < len(keys)) else len(keys)
            assert cost == expected
    assert len(index) == len(reference)
