"""Tests for the paper's hash-table index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.nfsclient import HashTableIndex, NfsPageRequest
from repro.nfsclient.request_hash import BYTES_PER_INODE, BYTES_PER_REQUEST
from repro.units import PAGE_SIZE


def make_req(page, fileid=1):
    return NfsPageRequest(fileid, page, 0, PAGE_SIZE, created_at=0)


def test_find_cost_independent_of_population():
    """The paper's fix: cost does not grow with outstanding requests."""
    index = HashTableIndex(nbuckets=256, lookup_cost_ns=300, node_cost_ns=60)
    costs = []
    for page in range(0, 2560, 1):
        _found, cost = index.find(1, page)
        costs.append(cost)
        index.insert(make_req(page))
    # 2560 requests over 256 buckets: each bucket holds ~10, so even the
    # worst search is bounded by the bucket depth, not the total.
    assert max(costs) <= 300 + 60 * (2560 // 256 + 2)
    assert index.max_bucket_depth() <= 2560 // 256 + 2


def test_find_and_remove():
    index = HashTableIndex(nbuckets=8, lookup_cost_ns=10, node_cost_ns=1)
    req = make_req(3)
    index.insert(req)
    found, _cost = index.find(1, 3)
    assert found is req
    index.remove(req)
    found, _cost = index.find(1, 3)
    assert found is None
    assert len(index) == 0


def test_same_page_different_inodes_coexist():
    index = HashTableIndex(nbuckets=8, lookup_cost_ns=10, node_cost_ns=1)
    a = make_req(3, fileid=1)
    b = make_req(3, fileid=2)
    index.insert(a)
    index.insert(b)
    assert index.peek(1, 3) is a
    assert index.peek(2, 3) is b


def test_bucket_collisions_cost_honestly():
    index = HashTableIndex(nbuckets=1, lookup_cost_ns=0, node_cost_ns=5)
    for page in range(10):
        index.insert(make_req(page))
    _found, cost = index.find(1, 99)
    assert cost == 5 * 10  # single bucket: scans everything


def test_memory_overhead_accounting():
    """§3.4: 8 bytes per request and 8 per inode."""
    index = HashTableIndex(nbuckets=64, lookup_cost_ns=1, node_cost_ns=1)
    for page in range(10):
        index.insert(make_req(page, fileid=1))
    for page in range(5):
        index.insert(make_req(page, fileid=2))
    assert index.memory_overhead_bytes() == 15 * BYTES_PER_REQUEST + 2 * BYTES_PER_INODE


def test_duplicate_and_unknown_rejected():
    index = HashTableIndex(nbuckets=8, lookup_cost_ns=1, node_cost_ns=1)
    req = make_req(1)
    index.insert(req)
    with pytest.raises(SimulationError):
        index.insert(make_req(1))
    with pytest.raises(SimulationError):
        index.remove(make_req(2))
    with pytest.raises(SimulationError):
        HashTableIndex(nbuckets=0, lookup_cost_ns=1, node_cost_ns=1)


@given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 200)), max_size=80))
@settings(max_examples=50, deadline=None)
def test_hash_agrees_with_reference(keys):
    index = HashTableIndex(nbuckets=16, lookup_cost_ns=1, node_cost_ns=1)
    reference = {}
    for fileid, page in keys:
        req = make_req(page, fileid=fileid)
        reference[(fileid, page)] = req
        index.insert(req)
    for fileid, page in list(reference) + [(9, 9), (0, 201)]:
        found, _cost = index.find(fileid, page)
        assert found is reference.get((fileid, page))
    assert len(index) == len(reference)
    total_bucket_population = sum(len(b) for b in index._buckets)
    assert total_bucket_population == len(reference)
