"""Tests for wsize grouping."""

from repro.nfsclient import NfsInode, NfsPageRequest, contiguous_run_length, group_extent, take_group
from repro.sim import Simulator
from repro.units import PAGE_SIZE


def make_inode():
    return NfsInode(Simulator(), fileid=1, name="f")


def add(inode, page, offset=0, nbytes=PAGE_SIZE):
    req = NfsPageRequest(1, page, offset, nbytes, created_at=0)
    inode.note_created(req)
    return req


def test_full_group_taken_in_order():
    inode = make_inode()
    reqs = [add(inode, p) for p in (0, 1, 2, 3)]
    group = take_group(inode, pages_per_rpc=2)
    assert group == reqs[:2]
    group = take_group(inode, pages_per_rpc=2)
    assert group == reqs[2:]
    assert take_group(inode, pages_per_rpc=2) is None


def test_partial_run_needs_force():
    inode = make_inode()
    add(inode, 0)
    assert take_group(inode, pages_per_rpc=2) is None
    group = take_group(inode, pages_per_rpc=2, force=True)
    assert len(group) == 1
    assert not inode.dirty


def test_non_contiguous_breaks_group():
    inode = make_inode()
    a = add(inode, 0)
    b = add(inode, 5)  # gap
    assert contiguous_run_length(inode, 2) == 1
    assert take_group(inode, pages_per_rpc=2) is None
    group = take_group(inode, pages_per_rpc=2, force=True)
    assert group == [a]
    group = take_group(inode, pages_per_rpc=2, force=True)
    assert group == [b]


def test_partial_tail_page_is_contiguous():
    inode = make_inode()
    a = add(inode, 0)
    b = add(inode, 1, offset=0, nbytes=100)  # short final page
    assert contiguous_run_length(inode, 2) == 2
    group = take_group(inode, pages_per_rpc=2)
    assert group == [a, b]
    offset, count = group_extent(group)
    assert offset == 0
    assert count == PAGE_SIZE + 100


def test_partial_first_page_breaks_contiguity():
    inode = make_inode()
    add(inode, 0, offset=0, nbytes=100)  # hole between 100 and 4096
    add(inode, 1)
    assert contiguous_run_length(inode, 2) == 1


def test_group_extent_mid_file():
    inode = make_inode()
    add(inode, 10)
    add(inode, 11)
    offset, count = group_extent(take_group(inode, 2))
    assert offset == 10 * PAGE_SIZE
    assert count == 2 * PAGE_SIZE
