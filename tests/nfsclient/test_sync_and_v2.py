"""Tests for O_SYNC files, NFSv2 mounts, and the shared kernel lock."""

from repro.bench import TestBed
from repro.config import MountConfig, NfsClientConfig
from repro.kernel import BigKernelLock
from repro.nfs3 import Stable
from repro.nfsclient import NfsClient
from repro.units import MB


LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def run_file(bed, nbytes, sync=False, chunk=8192):
    def body():
        file = yield from bed.nfs.open_new("f", sync=sync)
        remaining = nbytes
        while remaining:
            n = min(chunk, remaining)
            yield from bed.syscalls.write(file, n)
            remaining -= n
        yield from bed.syscalls.close(file)

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    if task.error:
        raise task.error


# --- O_SYNC ------------------------------------------------------------------


def test_osync_write_returns_with_zero_dirty():
    bed = TestBed(target="linux", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f", sync=True)
        yield from bed.syscalls.write(file, 8192)
        return bed.pagecache.dirty_bytes

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    assert task.error is None
    assert task.result == 0  # stable before write() returned


def test_osync_forces_server_disk_writes_no_commit():
    bed = TestBed(target="linux", client=LAZY)
    run_file(bed, 256 * 1024, sync=True)
    # FILE_SYNC writes: durable without COMMIT RPCs.
    assert bed.nfs.stats.commits_sent == 0
    assert bed.server.disk.bytes_written >= 256 * 1024


def test_osync_is_much_slower_than_async():
    def throughput(sync):
        bed = TestBed(target="linux", client=LAZY)
        start = bed.sim.now
        run_file(bed, 512 * 1024, sync=sync)
        return 512 * 1024 / ((bed.sim.now - start) / 1e9)

    assert throughput(sync=False) > 3 * throughput(sync=True)


def test_osync_fast_on_filer_nvram():
    """§3.6: with data-permanence requirements the filer wins."""

    def elapsed(target):
        bed = TestBed(target=target, client=LAZY)
        start = bed.sim.now
        run_file(bed, 256 * 1024, sync=True)
        return bed.sim.now - start

    assert elapsed("netapp") < elapsed("linux")


# --- NFSv2 ---------------------------------------------------------------------


def test_v2_mount_never_commits():
    bed = TestBed(target="linux", client=LAZY, mount=MountConfig(nfs_version=2))
    run_file(bed, 1 * MB)
    assert bed.nfs.stats.commits_sent == 0
    assert bed.server.commits_handled == 0
    # v2 writes are synchronous at the server: everything on the platter.
    server_file = next(iter(bed.server.files.values()))
    assert server_file.dirty_bytes == 0
    assert bed.server.disk.bytes_written >= 1 * MB


def test_v2_flush_slower_than_v3_on_linux_server():
    """NFSv3's async WRITE + COMMIT was invented for exactly this."""

    def flush_mbps(version):
        bed = TestBed(
            target="linux", client=LAZY, mount=MountConfig(nfs_version=version)
        )
        result = bed.run_sequential_write(2 * MB)
        return result.flush_mbps

    assert flush_mbps(3) > flush_mbps(2)


def test_v2_against_filer_costs_the_same():
    """NVRAM makes stable writes free: v2 ~ v3 on the filer."""

    def flush_mbps(version):
        bed = TestBed(
            target="netapp", client=LAZY, mount=MountConfig(nfs_version=version)
        )
        return bed.run_sequential_write(2 * MB).flush_mbps

    v2, v3 = flush_mbps(2), flush_mbps(3)
    assert abs(v2 - v3) < 0.2 * v3


# --- shared BKL -------------------------------------------------------------------


def test_two_mounts_share_one_kernel_lock():
    bed = TestBed(target="netapp", client=LAZY)
    # Second mount to the same server, same host: kernel-wide BKL.
    second = NfsClient(
        bed.client_host,
        bed.pagecache,
        server=bed.server.name,
        behavior=LAZY,
        client_port=701,
        bkl=bed.nfs.bkl,
    )
    assert second.bkl is bed.nfs.bkl

    def body():
        a = yield from bed.nfs.open_new("a")
        b = yield from second.open_new("b")
        for _ in range(32):
            yield from bed.syscalls.write(a, 8192)
            yield from bed.syscalls.write(b, 8192)
        yield from bed.syscalls.close(a)
        yield from bed.syscalls.close(b)

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    assert task.error is None
    # Both mounts' traffic serialized through the one lock.
    assert bed.nfs.bkl.stats.acquisitions > 128
