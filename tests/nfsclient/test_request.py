"""Tests for NfsPageRequest."""

import pytest

from repro.nfsclient import NfsPageRequest, RequestState
from repro.units import PAGE_SIZE


def make(offset=0, nbytes=PAGE_SIZE):
    return NfsPageRequest(
        fileid=1, page_index=5, offset_in_page=offset, nbytes=nbytes, created_at=0
    )


def test_construction_and_offsets():
    req = make()
    assert req.state is RequestState.DIRTY
    assert req.live
    assert req.file_offset == 5 * PAGE_SIZE
    partial = make(offset=100, nbytes=50)
    assert partial.file_offset == 5 * PAGE_SIZE + 100


def test_validation():
    with pytest.raises(ValueError):
        make(offset=-1)
    with pytest.raises(ValueError):
        make(offset=PAGE_SIZE)
    with pytest.raises(ValueError):
        make(nbytes=0)
    with pytest.raises(ValueError):
        make(offset=100, nbytes=PAGE_SIZE)  # spills past page end


def test_extend_touching_ranges():
    req = make(offset=0, nbytes=100)
    assert req.can_extend(100, 50)  # adjacent
    req.extend(100, 50)
    assert req.offset_in_page == 0
    assert req.nbytes == 150


def test_extend_overlapping_ranges():
    req = make(offset=100, nbytes=100)
    req.extend(150, 200)
    assert req.offset_in_page == 100
    assert req.nbytes == 250
    req.extend(0, 120)  # overlaps from the left
    assert req.offset_in_page == 0
    assert req.nbytes == 350


def test_cannot_extend_disjoint_range():
    req = make(offset=0, nbytes=100)
    assert not req.can_extend(200, 50)
    with pytest.raises(ValueError):
        req.extend(200, 50)


def test_cannot_extend_once_scheduled():
    req = make()
    req.state = RequestState.SCHEDULED
    assert not req.can_extend(0, 100)
    req.state = RequestState.UNSTABLE
    assert not req.can_extend(0, 100)


def test_done_requests_are_not_live():
    req = make()
    req.state = RequestState.DONE
    assert not req.live
