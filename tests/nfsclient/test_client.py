"""Integration tests for the NFS client against the simulated servers."""

import pytest

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.nfs3 import Stable
from repro.units import MB, PAGE_SIZE

LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def run_bed(target="netapp", client=LAZY, nbytes=1 * MB, **kwargs):
    bed = TestBed(target=target, client=client, **kwargs)
    result = bed.run_sequential_write(nbytes)
    return bed, result


def test_conservation_all_bytes_reach_server():
    bed, result = run_bed(nbytes=2 * MB)
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == 2 * MB
    assert bed.server.bytes_received == 2 * MB
    assert bed.nfs.stats.bytes_sent == 2 * MB


def test_client_clean_after_close():
    bed, _ = run_bed(nbytes=2 * MB)
    inode = next(iter(bed.nfs.inodes()))
    assert inode.is_clean()
    assert len(bed.nfs.index) == 0
    assert bed.nfs.live_requests == 0
    assert bed.nfs.writeback_count == 0
    assert bed.pagecache.dirty_bytes == 0


def test_writes_coalesced_into_wsize_rpcs():
    bed, _ = run_bed(nbytes=1 * MB)
    # 1 MB / 8 KB wsize = at least 122 full WRITEs (tail may split).
    assert bed.nfs.stats.writes_sent >= (1 * MB) // 8192
    assert bed.nfs.stats.writes_sent <= (1 * MB) // 8192 + 2


def test_filer_needs_no_commit():
    bed, _ = run_bed(target="netapp", nbytes=1 * MB)
    assert bed.nfs.stats.commits_sent == 0
    assert bed.server.commits_handled == 0


def test_linux_server_requires_commit_on_close():
    bed, _ = run_bed(target="linux", nbytes=1 * MB)
    assert bed.nfs.stats.commits_sent >= 1
    assert bed.server.commits_handled >= 1
    server_file = next(iter(bed.server.files.values()))
    assert server_file.dirty_bytes == 0  # commit made it durable
    assert server_file.stable_bytes >= 1 * MB


def test_flush_throughput_slower_than_write_throughput():
    """Memory writes outrun the network; flush must wait for the wire."""
    bed, result = run_bed(target="netapp", nbytes=5 * MB)
    assert result.write_throughput > result.flush_throughput
    assert result.flush_elapsed_ns > result.write_elapsed_ns


def test_stock_client_threshold_flushes_fire():
    bed, result = run_bed(client="stock", nbytes=5 * MB)
    assert bed.nfs.stats.soft_flushes > 0
    # The writeback count respects the hard limit... soft flushing keeps
    # it below; hard sleeps are rare but the counter exists.
    assert bed.nfs.writeback_count == 0


def test_lazy_client_never_threshold_flushes():
    bed, result = run_bed(client=LAZY, nbytes=5 * MB)
    assert bed.nfs.stats.soft_flushes == 0
    assert bed.nfs.stats.hard_sleeps == 0
    # Only the benchmark's fsync and close flushes.
    assert bed.nfs.stats.explicit_flushes == 2


def test_instrumentation_can_be_disabled():
    quiet = NfsClientConfig(
        eager_flush_limits=False, hashtable_index=True, instrument_latency=False
    )
    bed, result = run_bed(client=quiet, nbytes=1 * MB)
    # Latency was still recorded by the benchmark harness (its sink),
    # but the per-call instrumentation cost was not charged.
    assert len(result.trace) == -(-1 * MB // 8192)


def test_unaligned_tail_write():
    bed, result = run_bed(nbytes=1 * MB + 5000)
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == 1 * MB + 5000


def test_small_single_write():
    bed, result = run_bed(nbytes=100)
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == 100
    assert len(result.trace) == 1


def test_memory_pressure_throttles_writer():
    from repro.config import ClientHwConfig, scaled

    hw = scaled(ClientHwConfig(), 16)  # 16 MB client
    bed, result = run_bed(target="netapp", nbytes=30 * MB, hw=hw)
    assert bed.pagecache.throttled_count > 0
    assert bed.pagecache.peak_dirty <= hw.dirty_limit_bytes
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == 30 * MB


def test_memory_pressure_triggers_commit_on_linux_server():
    from repro.config import ClientHwConfig, scaled

    hw = scaled(ClientHwConfig(), 16)
    bed, result = run_bed(target="linux", nbytes=30 * MB, hw=hw)
    # flushd must COMMIT mid-run to reclaim unstable pages.
    assert bed.nfs.stats.commits_sent >= 2
    assert bed.nfs.flushd.commits_started >= 1


def test_single_search_knob_reduces_index_searches():
    results = {}
    for single in (False, True):
        cfg = NfsClientConfig(
            eager_flush_limits=False, hashtable_index=True, single_search=single
        )
        bed, _ = run_bed(client=cfg, nbytes=1 * MB)
        results[single] = bed.nfs.index.searches
    assert results[True] < results[False]
    assert results[True] >= results[False] // 2
