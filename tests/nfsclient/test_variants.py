"""Tests for the named client variants."""

import pytest

from repro.config import NfsClientConfig
from repro.errors import ConfigError
from repro.nfsclient import VARIANT_ORDER, VARIANTS, variant_config


def test_paper_progression_exists():
    assert VARIANT_ORDER == ["stock", "noflush", "hashtable", "nolock"]
    for name in VARIANT_ORDER:
        assert name in VARIANTS


def test_enhanced_is_nolock():
    assert variant_config("enhanced") is variant_config("nolock")


def test_variant_flags_match_the_paper_steps():
    stock = variant_config("stock")
    assert stock.eager_flush_limits
    assert not stock.hashtable_index
    assert not stock.release_bkl_for_send

    noflush = variant_config("noflush")
    assert not noflush.eager_flush_limits
    assert not noflush.hashtable_index

    hashtable = variant_config("hashtable")
    assert hashtable.hashtable_index
    assert not hashtable.release_bkl_for_send

    nolock = variant_config("nolock")
    assert nolock.hashtable_index
    assert nolock.release_bkl_for_send


def test_unknown_variant_rejected():
    with pytest.raises(ConfigError):
        variant_config("turbo")


def test_variants_are_plain_configs():
    for config in VARIANTS.values():
        assert isinstance(config, NfsClientConfig)
        assert config.max_request_soft == 192
        assert config.max_request_hard == 256
