"""State-accounting tests and invariants for NfsInode."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nfsclient import NfsInode, NfsPageRequest, RequestState
from repro.sim import Simulator
from repro.units import PAGE_SIZE


def make_req(page):
    return NfsPageRequest(1, page, 0, PAGE_SIZE, created_at=0)


def test_lifecycle_stable_write():
    sim = Simulator()
    inode = NfsInode(sim, 1, "f")
    req = make_req(0)
    inode.note_created(req)
    assert inode.live_requests == 1
    assert inode.writeback_requests == 1
    assert inode.has_unfinished_writes()

    inode.dirty.popleft()
    inode.note_scheduled(req, now=10)
    assert req.state is RequestState.SCHEDULED
    assert inode.writes_in_flight == 1

    inode.note_write_done(req, now=20)
    assert req.state is RequestState.DONE
    assert req.completed_at == 20
    assert inode.live_requests == 0
    assert inode.is_clean()


def test_lifecycle_unstable_then_commit():
    sim = Simulator()
    inode = NfsInode(sim, 1, "f")
    req = make_req(0)
    inode.note_created(req)
    inode.dirty.popleft()
    inode.note_scheduled(req, now=10)
    inode.note_unstable(req)
    assert req.state is RequestState.UNSTABLE
    assert inode.unstable_bytes == PAGE_SIZE
    assert not inode.has_unfinished_writes()  # write-back is done
    assert inode.live_requests == 1  # but not stable yet
    assert inode.writeback_requests == 0

    inode.note_committed(req, now=30)
    assert inode.unstable_bytes == 0
    assert inode.is_clean()


def test_commit_in_flight_blocks_clean():
    sim = Simulator()
    inode = NfsInode(sim, 1, "f")
    inode.commit_in_flight = True
    assert not inode.is_clean()


@given(st.lists(st.sampled_from(["stable", "unstable"]), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_accounting_invariants_over_random_lifecycles(outcomes):
    sim = Simulator()
    inode = NfsInode(sim, 1, "f")
    requests = []
    for page, outcome in enumerate(outcomes):
        req = make_req(page)
        inode.note_created(req)
        requests.append((req, outcome))
    assert inode.live_requests == len(outcomes)
    for req, outcome in requests:
        inode.dirty.popleft()
        inode.note_scheduled(req, now=1)
        if outcome == "stable":
            inode.note_write_done(req, now=2)
        else:
            inode.note_unstable(req)
    assert inode.writes_in_flight == 0
    unstable = sum(1 for _r, o in requests if o == "unstable")
    assert inode.live_requests == unstable
    assert inode.unstable_bytes == unstable * PAGE_SIZE
    for req, outcome in requests:
        if outcome == "unstable":
            inode.note_committed(req, now=3)
    assert inode.is_clean()
    assert inode.unstable_bytes == 0
    assert inode.total_requests_created == len(outcomes)
