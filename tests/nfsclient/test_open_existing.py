"""Tests for LOOKUP, close-to-open revalidation, and write gathering."""

import pytest

from repro.bench import TestBed
from repro.config import LinuxServerConfig, NfsClientConfig
from repro.errors import ProtocolError
from repro.units import MB

LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def drive(bed, gen):
    task = bed.sim.spawn(gen, daemon=True)
    bed.sim.run_until(lambda: task.done)
    if task.error:
        raise task.error
    return task.result


def test_open_existing_finds_file_and_size():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("data")
        yield from bed.syscalls.write(file, 64 * 1024)
        yield from bed.syscalls.close(file)
        reopened = yield from bed.nfs.open_existing("data")
        return reopened.size, reopened.fileid, file.fileid

    size, fid_new, fid_old = drive(bed, body())
    assert size == 64 * 1024
    assert fid_new == fid_old


def test_lookup_missing_file_fails():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        yield from bed.nfs.open_existing("ghost")

    with pytest.raises(ProtocolError):
        drive(bed, body())


def test_reopen_after_remote_change_invalidates_cache():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("data")
        yield from bed.syscalls.write(file, 32 * 1024)
        yield from bed.syscalls.close(file)
        file2 = yield from bed.nfs.open_existing("data")
        cached_before = len(file2.cached_pages)
        # Simulate another client changing the file on the server.
        server_file = next(iter(bed.server.files.values()))
        server_file.change_id += 1
        file3 = yield from bed.nfs.open_existing("data")
        return cached_before, len(file3.cached_pages)

    before, after = drive(bed, body())
    assert before > 0  # post-op attrs kept our own writes cached
    assert after == 0  # the remote change flushed them


def test_reopen_unchanged_keeps_cache():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("data")
        yield from bed.syscalls.write(file, 32 * 1024)
        yield from bed.syscalls.close(file)
        file2 = yield from bed.nfs.open_existing("data")
        reads_before = bed.nfs.stats.reads_sent
        while (yield from bed.syscalls.read(file2, 8192)):
            pass
        return bed.nfs.stats.reads_sent - reads_before

    extra_reads = drive(bed, body())
    assert extra_reads == 0  # cache survived close + unchanged re-open


def test_write_gathering_amortises_sync_seeks():
    """Concurrent sync writers to ONE file: gathering shares the seek."""

    def sync_elapsed(gathering):
        cfg = LinuxServerConfig(write_gathering=gathering)
        bed = TestBed(target="linux", client=LAZY, linux_config=cfg)

        def body():
            from repro.nfsclient import NfsFile

            shared = yield from bed.nfs.open_new("journal", sync=True)
            start = bed.sim.now

            def writer(index):
                # Each process has its own descriptor (own position) on
                # the one inode.
                file = NfsFile(bed.nfs, shared.inode, sync=True)
                file.pos = index * 8 * 4096
                file.size = shared.size
                for _ in range(8):
                    yield from bed.syscalls.write(file, 4096)

            tasks = [bed.sim.spawn(writer(i), daemon=True) for i in range(4)]
            while not all(t.done for t in tasks):
                yield bed.sim.timeout(1_000_000)
            return bed.sim.now - start

        elapsed = drive(bed, body())
        return elapsed, bed.server.disk.ops

    plain, plain_ops = sync_elapsed(False)
    gathered, gathered_ops = sync_elapsed(True)
    assert gathered_ops < plain_ops  # fewer disk passes
    assert gathered < plain
