"""Focused tests for the nfs_updatepage write path."""

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.units import PAGE_SIZE

LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)
LIST = NfsClientConfig(eager_flush_limits=False, hashtable_index=False)


def drive(bed, gen):
    task = bed.sim.spawn(gen, daemon=True)
    bed.sim.run_until(lambda: task.done)
    if task.error:
        raise task.error
    return task.result


def test_sub_page_writes_coalesce_into_one_request():
    """Several small writes to one page keep a single request (§3.4:
    'the client usually caches only a single write request per page')."""
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        for _ in range(4):
            yield from bed.syscalls.write(file, 1024)  # same page
        inode = file.inode
        return inode.total_requests_created, bed.nfs.stats.coalesced_updates

    created, coalesced = drive(bed, body())
    assert created == 1
    assert coalesced == 3
    assert bed.pagecache.dirty_bytes == PAGE_SIZE  # one page charged once


def test_each_page_costs_two_index_searches():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        yield from bed.syscalls.write(file, 8192)  # two pages

    drive(bed, body())
    assert bed.nfs.index.searches == 4  # find + update per page


def test_cpu_labels_match_the_papers_hot_functions():
    bed = TestBed(target="netapp", client=LIST)

    def body():
        file = yield from bed.nfs.open_new("f")
        for _ in range(64):
            yield from bed.syscalls.write(file, 8192)

    drive(bed, body())
    labels = bed.client_host.cpus.time_by_label
    assert "nfs_find_request" in labels
    assert "nfs_update_request" in labels
    assert "sock_sendmsg" in labels
    assert "copy_from_user" in labels
    # With the list index the searches dominate setup costs as the list
    # grows; here (128 requests) they are at least visible.
    assert labels["nfs_find_request"] > 0


def test_wsize_boundary_rpc_generation():
    """Writes that are not wsize-aligned still produce full-size RPCs."""
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        for _ in range(8):
            yield from bed.syscalls.write(file, 12 * 1024)  # 1.5 wsize

    drive(bed, body())
    # 96 KB total = 12 full 8 KB RPCs once coalesced.
    assert bed.nfs.stats.writes_sent == 12
    assert bed.nfs.stats.bytes_sent == 96 * 1024


def test_bkl_taken_per_page():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        for _ in range(16):
            yield from bed.syscalls.write(file, 8192)

    drive(bed, body())
    holds = bed.nfs.bkl.stats.hold_by_label
    assert "nfs_commit_write" in holds
    # One acquisition per page = 32, plus daemon work.
    assert bed.nfs.bkl.stats.acquisitions >= 32


def test_index_empty_after_everything_stabilises():
    bed = TestBed(target="linux", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        for _ in range(32):
            yield from bed.syscalls.write(file, 8192)
        yield from bed.syscalls.close(file)

    drive(bed, body())
    assert len(bed.nfs.index) == 0
    assert bed.nfs.index.searches > 0


def test_backward_sequential_writes():
    """Descending page order defeats coalescing runs but stays correct."""
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        for page in reversed(range(16)):
            file.pos = page * PAGE_SIZE
            yield from bed.syscalls.write(file, PAGE_SIZE)
        yield from bed.syscalls.close(file)

    drive(bed, body())
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == 16 * PAGE_SIZE
    assert bed.nfs.live_requests == 0
