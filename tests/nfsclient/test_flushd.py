"""Tests for the nfs_flushd write-behind daemon."""

from repro.bench import TestBed
from repro.config import ClientHwConfig, NfsClientConfig, scaled
from repro.units import MB, PAGE_SIZE, ms, seconds

LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def drive(bed, gen):
    task = bed.sim.spawn(gen, daemon=True)
    bed.sim.run_until(lambda: task.done)
    if task.error:
        raise task.error
    return task.result


def test_aged_partial_page_flushed_by_daemon():
    """A lone sub-wsize request never triggers nfs_strategy; flushd's
    age limit pushes it out without fsync/close."""
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        yield from bed.syscalls.write(file, PAGE_SIZE)  # half a wsize
        assert bed.nfs.stats.writes_sent == 0
        yield bed.sim.timeout(seconds(1))  # > age limit + interval
        return bed.nfs.stats.writes_sent

    writes_sent = drive(bed, body())
    assert writes_sent == 1
    assert bed.nfs.flushd.wakeups > 0


def test_fresh_requests_not_flushed_early():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        yield from bed.syscalls.write(file, PAGE_SIZE)
        yield bed.sim.timeout(ms(200))  # below the 500 ms age limit
        return bed.nfs.stats.writes_sent

    assert drive(bed, body()) == 0


def test_pressure_commit_only_when_unstable():
    """flushd commits under pressure only when there is unstable data."""
    hw = scaled(ClientHwConfig(), 16)
    bed = TestBed(target="netapp", client=LAZY, hw=hw)  # filer: FILE_SYNC

    def body():
        file = yield from bed.nfs.open_new("f")
        remaining = 20 * MB
        while remaining:
            chunk = min(8192, remaining)
            yield from bed.syscalls.write(file, chunk)
            remaining -= chunk
        yield from bed.syscalls.close(file)

    drive(bed, body())
    # Memory pressure occurred, but FILE_SYNC replies free pages without
    # COMMIT: the daemon never commits against the filer.
    assert bed.pagecache.throttled_count > 0
    assert bed.nfs.flushd.commits_started == 0


def test_daemon_holds_bkl_while_flushing():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        yield from bed.syscalls.write(file, PAGE_SIZE)
        yield bed.sim.timeout(seconds(1))

    drive(bed, body())
    assert "nfs_flushd" in bed.nfs.bkl.stats.hold_by_label


def test_kick_coalesces_wakeups():
    bed = TestBed(target="netapp", client=LAZY)
    flushd = bed.nfs.flushd
    for _ in range(10):
        flushd.kick()  # repeated kicks before the loop runs
    bed.sim.run_for(ms(10))
    assert flushd.wakeups == 1
