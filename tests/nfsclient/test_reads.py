"""Tests for the read path: caching, read-ahead, server media costs."""

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.units import MB, PAGE_SIZE

LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def write_then(bed, nbytes, body_after):
    """Write a file, close it, then run ``body_after(file)``."""
    out = {}

    def body():
        file = yield from bed.nfs.open_new("f")
        remaining = nbytes
        while remaining:
            chunk = min(8192, remaining)
            yield from bed.syscalls.write(file, chunk)
            remaining -= chunk
        yield from bed.syscalls.fsync(file)
        file.pos = 0
        yield from body_after(file, out)

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    if task.error:
        raise task.error
    return out


def test_read_after_write_hits_client_cache():
    """§2.3: caching moderates reads — a re-read sends no RPCs."""
    bed = TestBed(target="netapp", client=LAZY)

    def after(file, out):
        reads_before = bed.nfs.stats.reads_sent
        start = bed.sim.now
        total = 0
        while True:
            n = yield from bed.syscalls.read(file, 8192)
            if n == 0:
                break
            total += n
        out["elapsed"] = bed.sim.now - start
        out["rpcs"] = bed.nfs.stats.reads_sent - reads_before
        out["total"] = total

    out = write_then(bed, 1 * MB, after)
    assert out["rpcs"] == 0
    assert out["total"] == 1 * MB
    # Pure memory speed (copy-bound, ~190 MBps like local ext2 writes).
    assert out["total"] / (out["elapsed"] / 1e9) > 150e6


def test_cold_read_fetches_over_the_wire():
    bed = TestBed(target="netapp", client=LAZY)

    def after(file, out):
        file.cached_pages.clear()  # evict the client cache
        total = 0
        while True:
            n = yield from bed.syscalls.read(file, 8192)
            if n == 0:
                break
            total += n
        out["total"] = total

    out = write_then(bed, 512 * 1024, after)
    assert out["total"] == 512 * 1024
    assert bed.nfs.stats.reads_sent > 0
    assert bed.server.reads_handled > 0
    assert bed.server.bytes_served == 512 * 1024


def test_readahead_overfetches_sequentially():
    """One faulting read triggers a window of background fetches."""
    bed = TestBed(target="netapp", client=LAZY)

    def after(file, out):
        file.cached_pages.clear()
        yield from bed.syscalls.read(file, 8192)
        out["reads_sent"] = bed.nfs.stats.reads_sent
        out["fetched"] = bed.nfs.stats.bytes_fetched

    out = write_then(bed, 1 * MB, after)
    # The first fault fetched its rsize chunk plus the RA window.
    assert out["reads_sent"] > 1
    assert out["fetched"] > 8192


def test_read_past_eof_returns_short():
    bed = TestBed(target="netapp", client=LAZY)

    def after(file, out):
        file.pos = file.size - 100
        n = yield from bed.syscalls.read(file, 8192)
        out["n"] = n
        n2 = yield from bed.syscalls.read(file, 8192)
        out["n2"] = n2

    out = write_then(bed, 64 * 1024, after)
    assert out["n"] == 100
    assert out["n2"] == 0


def test_dirty_pages_are_readable_without_rpc():
    bed = TestBed(target="netapp", client=LAZY)

    def body():
        file = yield from bed.nfs.open_new("f")
        yield from bed.syscalls.write(file, 8192)
        file.cached_pages.clear()  # only the dirty write requests remain
        file.pos = 0
        n = yield from bed.syscalls.read(file, 8192)
        return n, bed.nfs.stats.reads_sent

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    n, reads = task.result
    assert n == 8192
    assert reads == 0


def test_huge_file_reads_hit_server_media():
    """Beyond the knfsd cache budget, reads cost real disk time."""
    bed = TestBed(target="linux", client=LAZY)
    server_file_size = bed.server.dirty_limit + 10 * MB

    def body():
        file = yield from bed.nfs.open_new("big")
        # Fabricate a large server file without simulating the write.
        server_file = next(iter(bed.server.files.values()))
        server_file.size = server_file_size
        file.size = server_file_size
        file.pos = 0
        yield from bed.syscalls.read(file, 8192)

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    assert task.error is None
    assert bed.server.disk.bytes_read > 0


def test_local_ext2_reads():
    bed = TestBed(target="local", client="stock")

    def body():
        file = yield from bed.ext2.open_new("f")
        yield from bed.syscalls.write(file, 64 * 1024)
        # Warm re-read: no disk.
        file.pos = 0
        disk_reads_before = bed.ext2.disk.bytes_read
        yield from bed.syscalls.read(file, 64 * 1024)
        warm = bed.ext2.disk.bytes_read - disk_reads_before
        # Cold read: evict, must hit the disk with read-ahead.
        file.cached_pages.clear()
        file.dirty_pages.clear()
        file.pos = 0
        yield from bed.syscalls.read(file, 8192)
        cold = bed.ext2.disk.bytes_read - disk_reads_before
        return warm, cold

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    warm, cold = task.result
    assert warm == 0
    assert cold >= 8192  # read-ahead fetched at least the chunk


def test_read_insensitive_to_server_speed_when_cached():
    """The §2.3 asymmetry: cached reads don't see the server at all."""
    elapsed = {}
    for target in ("netapp", "linux-100"):
        bed = TestBed(target=target, client=LAZY)

        def after(file, out):
            start = bed.sim.now
            while True:
                n = yield from bed.syscalls.read(file, 8192)
                if n == 0:
                    break
            out["elapsed"] = bed.sim.now - start

        out = write_then(bed, 512 * 1024, after)
        elapsed[target] = out["elapsed"]
    assert elapsed["netapp"] == elapsed["linux-100"]
