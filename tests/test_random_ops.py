"""End-to-end property test: random op sequences vs a reference model.

Hypothesis drives arbitrary interleavings of write/seek/read/fsync
against the full client/network/server stack and checks the observable
invariants against a trivial in-memory reference: final file size,
bytes durable after fsync, cache cleanliness after close, and page
accounting returning to zero.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.units import PAGE_SIZE

LAZY = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)
STOCK = NfsClientConfig()

MAX_EXTENT = 64 * PAGE_SIZE

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(min_value=1, max_value=20_000)),
        st.tuples(st.just("seek"), st.integers(min_value=0, max_value=MAX_EXTENT)),
        st.tuples(st.just("read"), st.integers(min_value=1, max_value=20_000)),
        st.tuples(st.just("fsync"), st.just(0)),
    ),
    min_size=1,
    max_size=25,
)


def run_ops(ops, client_config, target="netapp"):
    bed = TestBed(target=target, client=client_config)
    model = {"size": 0, "pos": 0}

    def body():
        file = yield from bed.nfs.open_new("f")
        for op, arg in ops:
            if op == "write":
                yield from bed.syscalls.write(file, arg)
                model["size"] = max(model["size"], model["pos"] + arg)
                model["pos"] += arg
            elif op == "seek":
                file.pos = arg
                model["pos"] = arg
            elif op == "read":
                n = yield from bed.syscalls.read(file, arg)
                expected = max(0, min(arg, model["size"] - model["pos"]))
                assert n == expected
                model["pos"] += expected
            else:
                yield from bed.syscalls.fsync(file)
                assert bed.pagecache.dirty_bytes == 0
        yield from bed.syscalls.close(file)

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done, limit=600_000_000_000)
    if task.error:
        raise task.error
    return bed, model


@given(op_strategy)
@settings(max_examples=25, deadline=None)
def test_random_ops_lazy_client_against_filer(ops):
    bed, model = run_ops(ops, LAZY, target="netapp")
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == model["size"]
    assert bed.pagecache.dirty_bytes == 0
    assert bed.nfs.live_requests == 0
    assert len(bed.nfs.index) == 0
    inode = next(iter(bed.nfs.inodes()))
    assert inode.is_clean()


@given(op_strategy)
@settings(max_examples=15, deadline=None)
def test_random_ops_stock_client_against_linux_server(ops):
    bed, model = run_ops(ops, STOCK, target="linux")
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == model["size"]
    # Everything durable after close (close flushes + commits).
    assert server_file.dirty_bytes == 0
    assert bed.pagecache.dirty_bytes == 0
    assert bed.nfs.writeback_count == 0


@given(op_strategy)
@settings(max_examples=10, deadline=None)
def test_random_ops_deterministic(ops):
    def fingerprint():
        bed, _model = run_ops(ops, LAZY)
        return (
            bed.sim.now,
            bed.nfs.stats.writes_sent,
            bed.nfs.stats.reads_sent,
            bed.nfs.stats.bytes_sent,
        )

    assert fingerprint() == fingerprint()
