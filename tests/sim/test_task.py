"""Unit tests for generator-based tasks."""

import pytest

from repro.errors import SimulationError, TaskFailed
from repro.sim import AllOf, Simulator


def test_task_runs_and_returns_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(100)
        return 42

    task = sim.spawn(worker())
    sim.run()
    assert task.done
    assert task.result == 42
    assert sim.now == 100


def test_yield_from_composes():
    sim = Simulator()

    def inner():
        yield sim.timeout(10)
        return "inner"

    def outer():
        value = yield from inner()
        yield sim.timeout(5)
        return value + "-outer"

    task = sim.spawn(outer())
    sim.run()
    assert task.result == "inner-outer"
    assert sim.now == 15


def test_join_returns_result():
    sim = Simulator()

    def producer():
        yield sim.timeout(50)
        return "data"

    def consumer(prod):
        value = yield prod.join()
        return value.upper()

    prod = sim.spawn(producer())
    cons = sim.spawn(consumer(prod))
    sim.run()
    assert cons.result == "DATA"


def test_join_already_finished_task():
    sim = Simulator()

    def quick():
        return "done"
        yield  # pragma: no cover

    def late(q):
        yield sim.timeout(100)
        value = yield q.join()
        return value

    q = sim.spawn(quick())
    waiter = sim.spawn(late(q))
    sim.run()
    assert waiter.result == "done"


def test_unjoined_failure_raises_task_failed():
    sim = Simulator()

    def boom():
        yield sim.timeout(10)
        raise ValueError("kaput")

    sim.spawn(boom())
    with pytest.raises(TaskFailed) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_daemon_failure_is_recorded_not_raised():
    sim = Simulator()

    def boom():
        yield sim.timeout(10)
        raise ValueError("kaput")

    task = sim.spawn(boom(), daemon=True)
    sim.run()
    assert task.done
    assert isinstance(task.error, ValueError)


def test_joiner_receives_exception():
    sim = Simulator()

    def boom():
        yield sim.timeout(10)
        raise KeyError("gone")

    def watcher(b):
        try:
            yield b.join()
        except KeyError:
            return "caught"
        return "missed"

    b = sim.spawn(boom())
    w = sim.spawn(watcher(b))
    sim.run()
    assert w.result == "caught"


def test_yielding_non_waitable_fails_task():
    sim = Simulator()

    def bad():
        yield 17

    sim.spawn(bad())
    with pytest.raises(TaskFailed):
        sim.run()


def test_spawn_rejects_non_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


def test_cancel_stops_task():
    sim = Simulator()
    progress = []

    def worker():
        for i in range(10):
            yield sim.timeout(10)
            progress.append(i)

    task = sim.spawn(worker())
    sim.run(until=35)
    task.cancel()
    sim.run()
    assert progress == [0, 1, 2]
    assert task.done


def test_all_of_gathers_results_in_order():
    sim = Simulator()

    def worker(delay, value):
        yield sim.timeout(delay)
        return value

    def main():
        tasks = [
            sim.spawn(worker(30, "a")),
            sim.spawn(worker(10, "b")),
            sim.spawn(worker(20, "c")),
        ]
        results = yield AllOf(tasks)
        return results

    m = sim.spawn(main())
    sim.run()
    assert m.result == ["a", "b", "c"]
    assert sim.now == 30


def test_all_of_propagates_failure():
    sim = Simulator()

    def ok():
        yield sim.timeout(5)

    def bad():
        yield sim.timeout(1)
        raise RuntimeError("nope")

    def main():
        tasks = [sim.spawn(ok()), sim.spawn(bad())]
        try:
            yield AllOf(tasks)
        except RuntimeError:
            return "failed"
        return "ok"

    m = sim.spawn(main())
    sim.run()
    assert m.result == "failed"


def test_task_name_defaults():
    sim = Simulator()

    def my_worker():
        yield sim.timeout(1)

    task = sim.spawn(my_worker(), name="explicit")
    assert task.name == "explicit"
    sim.run()


def test_current_task_visible_during_step():
    sim = Simulator()
    seen = []

    def worker():
        seen.append(sim.current_task)
        yield sim.timeout(1)
        seen.append(sim.current_task)

    task = sim.spawn(worker())
    sim.run()
    assert seen == [task, task]
    assert sim.current_task is None
