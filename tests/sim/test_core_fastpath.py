"""Tests for the event-loop fast lane, compaction, and the run_until
limit fix (peek before pop)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestCallAfter:
    def test_interleaves_with_handle_events_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, fired.append, "handle-30")
        sim.call_after(10, fired.append, "fast-10")
        sim.call_after(30, fired.append, "fast-30")
        sim.schedule(20, fired.append, "handle-20")
        sim.run()
        assert fired == ["fast-10", "handle-20", "handle-30", "fast-30"]

    def test_same_time_fires_in_schedule_order_across_lanes(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, fired.append, 0)
        sim.call_after(5, fired.append, 1)
        sim.schedule(5, fired.append, 2)
        sim.run()
        assert fired == [0, 1, 2]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_after(-1, lambda: None)

    def test_call_at_in_past_rejected(self):
        sim = Simulator()
        sim.run(until=100)
        with pytest.raises(SimulationError):
            sim.call_at(50, lambda: None)

    def test_fast_events_work_in_run_until(self):
        sim = Simulator()
        fired = []
        sim.call_after(10, fired.append, "a")
        sim.call_after(20, fired.append, "b")
        sim.run_until(lambda: len(fired) == 1)
        assert fired == ["a"]
        assert sim.pending_events() == 1


class TestEventsProcessed:
    def test_counts_dispatched_callbacks(self):
        sim = Simulator()
        for i in range(5):
            sim.call_after(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_cancelled_events_not_counted(self):
        sim = Simulator()
        handles = [sim.schedule(i, lambda: None) for i in range(4)]
        handles[1].cancel()
        handles[2].cancel()
        sim.run()
        assert sim.events_processed == 2

    def test_accumulates_across_runs(self):
        sim = Simulator()
        sim.call_after(1, lambda: None)
        sim.run()
        sim.call_after(1, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestCompaction:
    def test_mass_cancellation_shrinks_the_heap(self):
        sim = Simulator()
        handles = [sim.schedule(1000 + i, lambda: None) for i in range(100)]
        assert sim.pending_events() == 100
        for handle in handles[:60]:
            handle.cancel()
        # Once dead entries outnumbered live ones the heap was rebuilt;
        # only the post-compaction stragglers may still linger.
        assert sim.pending_events() < 60
        sim.run()
        assert sim.events_processed == 40  # exactly the live events fired

    def test_few_cancellations_do_not_compact(self):
        sim = Simulator()
        handles = [sim.schedule(1000 + i, lambda: None) for i in range(100)]
        for handle in handles[:5]:
            handle.cancel()
        assert sim.pending_events() == 100  # lazy deletion only

    def test_compaction_preserves_order_and_cancellation(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(10 * i, fired.append, i) for i in range(50)]
        sim.call_after(5, fired.append, "fast")
        for handle in handles[1:40]:  # cancel enough to trigger compaction
            handle.cancel()
        sim.run()
        assert fired == [0, "fast"] + list(range(40, 50))

    def test_cancel_during_run_stays_consistent(self):
        sim = Simulator()
        fired = []
        victims = [sim.schedule(1000 + i, fired.append, i) for i in range(40)]

        def axe():
            for victim in victims:
                victim.cancel()

        sim.schedule(500, axe)
        sim.run()
        assert fired == []
        assert sim.pending_events() == 0

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        handle = sim.schedule(1, lambda: None)
        sim.run()
        for _ in range(20):
            handle.cancel()  # counter noise must not corrupt the queue
        sim.call_after(1, lambda: None)
        sim.run()
        assert sim.pending_events() == 0


class TestRunUntilLimit:
    def test_limit_hit_raises_and_pins_clock(self):
        sim = Simulator()
        sim.call_after(100, lambda: None)
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, limit=50)
        assert sim.now == 50

    def test_over_limit_event_is_not_dropped(self):
        """Regression: the event past the limit used to be heap-popped
        before the limit check and lost; a caller that caught the error
        and resumed ran a corrupted simulation."""
        sim = Simulator()
        fired = []
        sim.call_after(100, fired.append, "late")
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, limit=50)
        assert sim.pending_events() == 1
        sim.run()  # resume after the guard: the event must still fire
        assert fired == ["late"]
        assert sim.now == 100

    def test_resume_with_extended_limit(self):
        sim = Simulator()
        fired = []
        sim.call_after(100, fired.append, "late")
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, limit=50)
        sim.run_until(lambda: bool(fired), limit=200)
        assert fired == ["late"]

    def test_cancelled_events_past_limit_drain_without_raising(self):
        sim = Simulator()
        handle = sim.schedule(100, lambda: None)
        handle.cancel()
        sim.run_until(lambda: False, limit=50)  # queue drains, no error
        assert sim.pending_events() == 0

    def test_limit_exactly_at_event_time_fires(self):
        sim = Simulator()
        fired = []
        sim.call_after(50, fired.append, "edge")
        sim.run_until(lambda: bool(fired), limit=50)
        assert fired == ["edge"]
        assert sim.now == 50
