"""Unit tests for the CPU model and sampling profiler."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    PRIO_INTERRUPT,
    PRIO_USER,
    CpuSet,
    SamplingProfiler,
    Simulator,
)
from repro.units import us


def test_single_cpu_serializes_work():
    sim = Simulator()
    cpus = CpuSet(sim, 1)
    finished = []

    def worker(tag):
        yield from cpus.execute(us(10), label=f"w{tag}")
        finished.append((tag, sim.now))

    sim.spawn(worker(0))
    sim.spawn(worker(1))
    sim.run()
    assert finished == [(0, us(10)), (1, us(20))]


def test_two_cpus_run_in_parallel():
    sim = Simulator()
    cpus = CpuSet(sim, 2)
    finished = []

    def worker(tag):
        yield from cpus.execute(us(10), label="work")
        finished.append((tag, sim.now))

    sim.spawn(worker(0))
    sim.spawn(worker(1))
    sim.run()
    assert finished == [(0, us(10)), (1, us(10))]


def test_priority_queue_prefers_interrupts():
    sim = Simulator()
    cpus = CpuSet(sim, 1)
    order = []

    def hog():
        yield from cpus.execute(us(10), label="hog")
        order.append("hog")

    def user():
        yield sim.timeout(1)
        yield from cpus.execute(us(5), label="user", priority=PRIO_USER)
        order.append("user")

    def intr():
        yield sim.timeout(2)
        yield from cpus.execute(us(1), label="intr", priority=PRIO_INTERRUPT)
        order.append("intr")

    sim.spawn(hog())
    sim.spawn(user())
    sim.spawn(intr())
    sim.run()
    assert order == ["hog", "intr", "user"]


def test_time_accounting_by_label():
    sim = Simulator()
    cpus = CpuSet(sim, 2)

    def worker():
        yield from cpus.execute(us(10), label="alpha")
        yield from cpus.execute(us(20), label="beta")
        yield from cpus.execute(us(5), label="alpha")

    sim.spawn(worker())
    sim.run()
    assert cpus.time_by_label == {"alpha": us(15), "beta": us(20)}
    assert cpus.total_busy_ns == us(35)
    assert cpus.top_labels() == [("beta", us(20)), ("alpha", us(15))]


def test_zero_duration_execute_is_free():
    sim = Simulator()
    cpus = CpuSet(sim, 1)

    def worker():
        yield from cpus.execute(0, label="nothing")
        return sim.now

    task = sim.spawn(worker())
    sim.run()
    assert task.result == 0
    assert "nothing" not in cpus.time_by_label


def test_negative_duration_rejected():
    sim = Simulator()
    cpus = CpuSet(sim, 1)

    def worker():
        yield from cpus.execute(-1)

    sim.spawn(worker(), daemon=True)
    sim.run()


def test_utilization():
    sim = Simulator()
    cpus = CpuSet(sim, 2)

    def worker():
        yield from cpus.execute(us(10), label="w")

    sim.spawn(worker())
    sim.run(until=us(10))
    assert cpus.utilization() == pytest.approx(0.5)


def test_need_at_least_one_cpu():
    sim = Simulator()
    with pytest.raises(SimulationError):
        CpuSet(sim, 0)


def test_profiler_samples_busy_labels():
    sim = Simulator()
    cpus = CpuSet(sim, 1)
    prof = SamplingProfiler(sim, cpus, period=us(1))

    def worker():
        yield from cpus.execute(us(100), label="hot")
        yield from cpus.execute(us(10), label="cool")

    prof.start()
    sim.spawn(worker())
    sim.run(until=us(110))
    prof.stop()
    top = prof.top(2)
    assert top[0][0] == "hot"
    assert prof.fraction("hot") > prof.fraction("cool")
    assert "samples" in prof.report()


def test_profiler_counts_idle():
    sim = Simulator()
    cpus = CpuSet(sim, 1)
    prof = SamplingProfiler(sim, cpus, period=us(1))
    prof.start()
    sim.run(until=us(50))
    prof.stop()
    assert prof.samples.get(SamplingProfiler.IDLE, 0) == 50
    assert prof.fraction("anything") == 0.0
