"""Additional profiler coverage."""

import pytest

from repro.errors import SimulationError
from repro.sim import CpuSet, SamplingProfiler, Simulator
from repro.units import us


def test_double_start_rejected():
    sim = Simulator()
    prof = SamplingProfiler(sim, CpuSet(sim, 1), period=us(1))
    prof.start()
    with pytest.raises(SimulationError):
        prof.start()


def test_invalid_period_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        SamplingProfiler(sim, CpuSet(sim, 1), period=0)


def test_stop_halts_sampling():
    sim = Simulator()
    cpus = CpuSet(sim, 1)
    prof = SamplingProfiler(sim, cpus, period=us(1))
    prof.start()
    sim.run(until=us(10))
    prof.stop()
    count = prof.total_samples
    sim.run(until=us(50))
    assert prof.total_samples == count


def test_multi_core_samples_all_cores():
    sim = Simulator()
    cpus = CpuSet(sim, 2)
    prof = SamplingProfiler(sim, cpus, period=us(1))

    def worker(label):
        yield from cpus.execute(us(20), label=label)

    prof.start()
    sim.spawn(worker("alpha"))
    sim.spawn(worker("beta"))
    sim.run(until=us(20))
    prof.stop()
    assert prof.samples.get("alpha", 0) > 0
    assert prof.samples.get("beta", 0) > 0
    # Two cores per tick.
    assert prof.total_samples == 2 * 20


def test_fraction_sums_to_one_over_busy_labels():
    sim = Simulator()
    cpus = CpuSet(sim, 1)
    prof = SamplingProfiler(sim, cpus, period=us(1))

    def worker():
        yield from cpus.execute(us(30), label="a")
        yield from cpus.execute(us(10), label="b")

    prof.start()
    sim.spawn(worker())
    sim.run(until=us(40))
    prof.stop()
    total = prof.fraction("a") + prof.fraction("b")
    assert total == pytest.approx(1.0)
    assert prof.fraction("a") > prof.fraction("b")
