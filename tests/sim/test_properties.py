"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CpuSet, Lock, Simulator


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
@settings(max_examples=60, deadline=None)
def test_event_loop_never_goes_backwards(delays):
    sim = Simulator()
    times = []
    for delay in delays:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),  # arrival
            st.integers(min_value=1, max_value=50),  # hold duration
        ),
        max_size=25,
    )
)
@settings(max_examples=50, deadline=None)
def test_lock_is_exclusive_under_arbitrary_schedules(workers):
    sim = Simulator()
    lock = Lock(sim)
    holders = []
    overlap = []

    def worker(arrival, hold):
        yield sim.timeout(arrival)
        yield lock.acquire()
        holders.append(1)
        overlap.append(len(holders))
        yield sim.timeout(hold)
        holders.pop()
        lock.release()

    for arrival, hold in workers:
        sim.spawn(worker(arrival, hold))
    sim.run()
    assert all(n == 1 for n in overlap)
    assert not lock.locked


@given(
    st.integers(min_value=1, max_value=4),
    st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_cpu_conserves_work(ncpus, durations):
    """Total accounted CPU time equals the sum of submitted work, and the
    makespan is bounded between ideal parallel time and serial time."""
    sim = Simulator()
    cpus = CpuSet(sim, ncpus)

    def worker(duration):
        yield from cpus.execute(duration, label="w")

    for duration in durations:
        sim.spawn(worker(duration))
    end = sim.run()
    total = sum(durations)
    assert cpus.total_busy_ns == total
    assert end >= max(durations)
    assert end >= -(-total // ncpus)  # ceil division: ideal makespan
    assert end <= total


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=40))
@settings(max_examples=40, deadline=None)
def test_runs_are_deterministic(delays):
    def one_run():
        sim = Simulator()
        log = []
        for i, delay in enumerate(delays):
            sim.schedule(delay, lambda i=i: log.append((sim.now, i)))
        sim.run()
        return log

    assert one_run() == one_run()
