"""Additional task-combinator and event-handle coverage."""

from repro.sim import AllOf, Simulator


def test_allof_with_all_already_done():
    sim = Simulator()

    def quick(v):
        return v
        yield  # pragma: no cover

    def main():
        tasks = [sim.spawn(quick(1)), sim.spawn(quick(2))]
        yield sim.timeout(100)  # both finished long ago
        results = yield AllOf(tasks)
        return results

    m = sim.spawn(main())
    sim.run()
    assert m.result == [1, 2]


def test_allof_empty_list():
    sim = Simulator()

    def main():
        results = yield AllOf([])
        return results

    m = sim.spawn(main())
    sim.run()
    assert m.result == []


def test_allof_with_prefailed_task():
    sim = Simulator()

    def boom():
        raise ValueError("pre")
        yield  # pragma: no cover

    def main():
        bad = sim.spawn(boom(), daemon=True)
        yield sim.timeout(10)
        try:
            yield AllOf([bad])
        except ValueError:
            return "caught"
        return "missed"

    m = sim.spawn(main())
    sim.run()
    assert m.result == "caught"


def test_cancelled_handle_not_counted_as_fired():
    sim = Simulator()
    fired = []
    keep = sim.schedule(10, fired.append, "keep")
    drop = sim.schedule(10, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.cancelled is False
    assert drop.cancelled is True


def test_pending_events_counts_queue():
    sim = Simulator()
    assert sim.pending_events() == 0
    sim.schedule(5, lambda: None)
    sim.schedule(7, lambda: None)
    assert sim.pending_events() == 2
    sim.run()
    assert sim.pending_events() == 0
