"""Unit tests for synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Event, Lock, MonitoredLock, Semaphore, Simulator, WaitQueue


# --- Event -----------------------------------------------------------------


def test_event_wakes_waiters_with_value():
    sim = Simulator()
    ev = Event(sim)
    results = []

    def waiter(tag):
        value = yield ev
        results.append((tag, value, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.schedule(100, ev.trigger, "payload")
    sim.run()
    assert results == [("a", "payload", 100), ("b", "payload", 100)]


def test_event_after_fire_resumes_immediately():
    sim = Simulator()
    ev = Event(sim)
    ev.trigger("x")

    def late():
        value = yield ev
        return value

    task = sim.spawn(late())
    sim.run()
    assert task.result == "x"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = Event(sim)
    ev.trigger()
    with pytest.raises(SimulationError):
        ev.trigger()


# --- Lock --------------------------------------------------------------------


def test_lock_mutual_exclusion():
    sim = Simulator()
    lock = Lock(sim)
    inside = []
    max_inside = []

    def worker(tag):
        yield lock.acquire()
        inside.append(tag)
        max_inside.append(len(inside))
        yield sim.timeout(10)
        inside.remove(tag)
        lock.release()

    for tag in range(5):
        sim.spawn(worker(tag))
    sim.run()
    assert max(max_inside) == 1
    assert sim.now == 50


def test_lock_fifo_order():
    sim = Simulator()
    lock = Lock(sim)
    order = []

    def worker(tag):
        yield lock.acquire()
        order.append(tag)
        yield sim.timeout(1)
        lock.release()

    for tag in range(8):
        sim.spawn(worker(tag))
    sim.run()
    assert order == list(range(8))


def test_lock_release_unlocked_rejected():
    sim = Simulator()
    lock = Lock(sim)
    with pytest.raises(SimulationError):
        lock.release()


# --- MonitoredLock --------------------------------------------------------------


def test_monitored_lock_reentrant():
    sim = Simulator()
    mlock = MonitoredLock(sim, "bkl")

    def worker():
        yield from mlock.acquire("outer")
        yield from mlock.acquire("inner")
        assert mlock.depth == 2
        yield sim.timeout(10)
        mlock.release()
        assert mlock.locked
        mlock.release()
        assert not mlock.locked

    sim.spawn(worker())
    sim.run()


def test_monitored_lock_contention_stats():
    sim = Simulator()
    mlock = MonitoredLock(sim, "bkl")

    def holder():
        yield from mlock.acquire("holder")
        yield sim.timeout(100)
        mlock.release()

    def contender():
        yield sim.timeout(10)
        yield from mlock.acquire("contender")
        mlock.release()

    sim.spawn(holder())
    sim.spawn(contender())
    sim.run()
    assert mlock.stats.acquisitions == 2
    assert mlock.stats.contended == 1
    assert mlock.stats.total_wait_ns == 90
    assert mlock.stats.wait_by_label["contender"] == 90
    assert mlock.stats.hold_by_label["holder"] == 100
    assert mlock.stats.contention_ratio == 0.5


def test_monitored_lock_release_by_non_owner_rejected():
    sim = Simulator()
    mlock = MonitoredLock(sim, "bkl")

    def holder():
        yield from mlock.acquire("h")
        yield sim.timeout(100)
        mlock.release()

    def thief():
        yield sim.timeout(10)
        mlock.release()

    sim.spawn(holder())
    sim.spawn(thief())
    with pytest.raises(Exception):
        sim.run()


def test_monitored_lock_hold_helper():
    sim = Simulator()
    mlock = MonitoredLock(sim, "bkl")

    def body():
        yield sim.timeout(25)
        return "done"

    def worker():
        result = yield from mlock.hold("work", body())
        assert not mlock.locked
        return result

    task = sim.spawn(worker())
    sim.run()
    assert task.result == "done"
    assert mlock.stats.hold_by_label["work"] == 25


def test_monitored_lock_fifo_handoff():
    sim = Simulator()
    mlock = MonitoredLock(sim, "bkl")
    order = []

    def worker(tag, start):
        yield sim.timeout(start)
        yield from mlock.acquire(str(tag))
        order.append(tag)
        yield sim.timeout(50)
        mlock.release()

    for tag in range(4):
        sim.spawn(worker(tag, tag))
    sim.run()
    assert order == [0, 1, 2, 3]


# --- Semaphore ---------------------------------------------------------------


def test_semaphore_limits_concurrency():
    sim = Simulator()
    sem = Semaphore(sim, 2)
    active = []
    peak = []

    def worker(tag):
        yield sem.acquire()
        active.append(tag)
        peak.append(len(active))
        yield sim.timeout(10)
        active.remove(tag)
        sem.release()

    for tag in range(6):
        sim.spawn(worker(tag))
    sim.run()
    assert max(peak) == 2
    assert sim.now == 30


def test_semaphore_negative_initial_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Semaphore(sim, -1)


# --- WaitQueue ---------------------------------------------------------------


def test_waitqueue_wake_all():
    sim = Simulator()
    wq = WaitQueue(sim)
    woken = []

    def sleeper(tag):
        yield from wq.sleep()
        woken.append((tag, sim.now))

    sim.spawn(sleeper("a"))
    sim.spawn(sleeper("b"))
    sim.schedule(40, wq.wake_all)
    sim.run()
    assert woken == [("a", 40), ("b", 40)]
    assert wq.total_sleeps == 2
    assert wq.total_sleep_ns == 80


def test_waitqueue_wake_one_is_fifo():
    sim = Simulator()
    wq = WaitQueue(sim)
    woken = []

    def sleeper(tag):
        yield from wq.sleep()
        woken.append(tag)

    for tag in range(3):
        sim.spawn(sleeper(tag))
    sim.schedule(10, wq.wake_one)
    sim.schedule(20, wq.wake_one)
    sim.run()
    assert woken == [0, 1]
    assert wq.sleeping == 1
    wq.wake_all()
    sim.run()
    assert woken == [0, 1, 2]


def test_waitqueue_wait_until_rechecks_predicate():
    sim = Simulator()
    wq = WaitQueue(sim)
    state = {"ready": False}
    log = []

    def waiter():
        yield from wq.wait_until(lambda: state["ready"])
        log.append(sim.now)

    def spurious_then_real():
        yield sim.timeout(10)
        wq.wake_all()  # spurious: predicate still false
        yield sim.timeout(10)
        state["ready"] = True
        wq.wake_all()

    sim.spawn(waiter())
    sim.spawn(spurious_then_real())
    sim.run()
    assert log == [20]
