"""Unit tests for the simulation event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, fired.append, "c")
    sim.schedule(10, fired.append, "a")
    sim.schedule(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(5, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, fired.append, "early")
    sim.schedule(100, fired.append, "late")
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=1000)
    assert sim.now == 1000


def test_run_for_is_relative():
    sim = Simulator()
    sim.run(until=100)
    sim.run_for(50)
    assert sim.now == 150


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)
    sim.run(until=100)
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(10, chain, n + 1)

    sim.schedule(0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 30


def test_reentrant_run_rejected():
    sim = Simulator()

    def bad():
        sim.run()

    sim.schedule(0, bad)
    with pytest.raises(SimulationError):
        sim.run()


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        order = []
        for i in range(100):
            sim.schedule((i * 7919) % 50, order.append, i)
        sim.run()
        return order

    assert build() == build()
