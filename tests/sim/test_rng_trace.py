"""Tests for RNG streams and the tracer."""

from repro.sim import RngStreams, Simulator, Tracer


def test_named_streams_are_independent():
    streams = RngStreams(seed=42)
    a1 = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    # Fresh factory, draw from b first: a's sequence must not change.
    streams2 = RngStreams(seed=42)
    [streams2.stream("b").random() for _ in range(5)]
    a2 = [streams2.stream("a").random() for _ in range(5)]
    assert a1 == a2
    assert a1 != b


def test_streams_depend_on_seed():
    a = RngStreams(seed=1).stream("x").random()
    b = RngStreams(seed=2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RngStreams()
    assert streams.stream("x") is streams.stream("x")


def test_tracer_disabled_by_default():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.record("comp", "event", value=1)
    assert len(tracer) == 0


def test_tracer_records_and_filters():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    sim.schedule(10, lambda: tracer.record("rpc", "send", xid=1))
    sim.schedule(20, lambda: tracer.record("rpc", "reply", xid=1))
    sim.schedule(30, lambda: tracer.record("vm", "charge", bytes=4096))
    sim.run()
    assert len(tracer) == 3
    assert [r.kind for r in tracer.records(component="rpc")] == ["send", "reply"]
    reply = tracer.records(kind="reply")[0]
    assert reply.time == 20
    assert reply.fields == {"xid": 1}
    tracer.clear()
    assert len(tracer) == 0


def test_tracer_ring_is_bounded():
    sim = Simulator()
    tracer = Tracer(sim, capacity=10, enabled=True)
    for i in range(25):
        tracer.record("c", "k", i=i)
    assert len(tracer) == 10
    assert tracer.records()[0].fields["i"] == 15
