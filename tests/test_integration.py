"""Cross-cutting integration tests at the paper level."""

import pytest

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.nfsclient import VARIANT_ORDER
from repro.units import MB, PAGE_SIZE


def test_variant_progression_improves_throughput():
    """The paper's storyline: each patch (or patch set) helps.

    stock -> noflush fixes spikes (but list scans bite on large files);
    noflush -> hashtable fixes the scans; hashtable -> nolock fixes SMP
    contention.  Throughput must be monotone along stock, hashtable,
    nolock for a mid-size file.
    """
    results = {}
    for variant in VARIANT_ORDER:
        bed = TestBed(target="netapp", client=variant)
        results[variant] = bed.run_sequential_write(20 * MB).write_mbps
    assert results["hashtable"] > results["stock"] * 2
    assert results["nolock"] > results["hashtable"]
    # noflush alone beats stock on this size despite the list scans.
    assert results["noflush"] > results["stock"]


def test_abstract_headline_threefold_improvement():
    """Abstract: 'Memory write throughput to NFS files improves by more
    than a factor of three.'"""
    stock = TestBed(target="netapp", client="stock").run_sequential_write(30 * MB)
    enhanced = TestBed(target="netapp", client="enhanced").run_sequential_write(30 * MB)
    assert enhanced.write_throughput > 3 * stock.write_throughput


def test_two_files_interleaved_writes():
    bed = TestBed(target="netapp", client="enhanced")

    def body():
        a = yield from bed.nfs.open_new("a")
        b = yield from bed.nfs.open_new("b")
        for _ in range(64):
            yield from bed.syscalls.write(a, 8192)
            yield from bed.syscalls.write(b, 8192)
        yield from bed.syscalls.close(a)
        yield from bed.syscalls.close(b)

    task = bed.sim.spawn(body())
    bed.sim.run_until(lambda: task.done)
    assert task.error is None
    sizes = sorted(f.size for f in bed.server.files.values())
    assert sizes == [64 * 8192, 64 * 8192]
    assert all(inode.is_clean() for inode in bed.nfs.inodes())


def test_two_concurrent_writer_processes():
    """Two writers to separate files share the client sanely."""
    bed = TestBed(target="netapp", client="enhanced")
    done = []

    def writer(name, nbytes):
        file = yield from bed.nfs.open_new(name)
        remaining = nbytes
        while remaining:
            chunk = min(8192, remaining)
            yield from bed.syscalls.write(file, chunk)
            remaining -= chunk
        yield from bed.syscalls.close(file)
        done.append(name)

    bed.sim.spawn(writer("a", 2 * MB))
    bed.sim.spawn(writer("b", 1 * MB))
    bed.sim.run_until(lambda: len(done) == 2)
    total = sum(f.size for f in bed.server.files.values())
    assert total == 3 * MB
    assert bed.pagecache.dirty_bytes == 0


def test_rewrite_same_page_waits_for_inflight_request():
    """Overlapping rewrite of an in-flight page must wait (write order)."""
    bed = TestBed(target="netapp", client="enhanced")

    def body():
        file = yield from bed.nfs.open_new("f")
        yield from bed.syscalls.write(file, 8192)  # schedules an RPC
        file.pos = 0
        yield from bed.syscalls.write(file, 8192)  # rewrites pages 0-1
        yield from bed.syscalls.close(file)

    task = bed.sim.spawn(body())
    bed.sim.run_until(lambda: task.done)
    assert task.error is None
    assert bed.nfs.stats.page_waits >= 1
    file = next(iter(bed.server.files.values()))
    assert file.size == 8192


def test_sparse_writes_commit_partial_groups():
    """Non-contiguous dirty pages still flush correctly at close."""
    bed = TestBed(target="netapp", client="enhanced")

    def body():
        file = yield from bed.nfs.open_new("f")
        for pos in (0, 3 * PAGE_SIZE, 10 * PAGE_SIZE):
            file.pos = pos
            yield from bed.syscalls.write(file, PAGE_SIZE)
        yield from bed.syscalls.close(file)

    task = bed.sim.spawn(body())
    bed.sim.run_until(lambda: task.done)
    assert task.error is None
    assert bed.nfs.live_requests == 0
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == 11 * PAGE_SIZE


def test_fsync_midstream_then_more_writes():
    bed = TestBed(target="linux", client="enhanced")

    def body():
        file = yield from bed.nfs.open_new("f")
        for _ in range(10):
            yield from bed.syscalls.write(file, 8192)
        yield from bed.syscalls.fsync(file)
        dirty_after_fsync = bed.pagecache.dirty_bytes
        for _ in range(10):
            yield from bed.syscalls.write(file, 8192)
        yield from bed.syscalls.close(file)
        return dirty_after_fsync

    task = bed.sim.spawn(body())
    bed.sim.run_until(lambda: task.done)
    assert task.error is None
    assert task.result == 0  # fsync made everything stable
    server_file = next(iter(bed.server.files.values()))
    assert server_file.stable_bytes >= 20 * 8192


def test_determinism_across_full_stack():
    def one():
        bed = TestBed(target="linux", client="stock")
        result = bed.run_sequential_write(3 * MB)
        return (
            result.trace.latencies_ns,
            bed.nfs.stats.writes_sent,
            bed.nfs.stats.commits_sent,
            bed.server.disk.bytes_written,
        )

    assert one() == one()
