"""Fuzzer: bit-reproducibility, generator validity, finding auto-save."""

import json

import pytest

from repro.chaos import fuzz, load_scenario
from repro.chaos.fuzz import draw_spec
from repro.chaos.legacy import legacy_specs
from repro.chaos.schema import SCENARIO_SCHEMA, validate
from repro.chaos.spec import ScenarioSpec
from repro.sim import RngStreams

DRAWS = 4  # enough to cover single-client and fleet shapes at seed 7


def test_campaign_is_bit_reproducible():
    first = fuzz(seed=7, draws=DRAWS, sanitize=False)
    second = fuzz(seed=7, draws=DRAWS, sanitize=False)
    assert first.payload() == second.payload()
    assert first.fingerprint() == second.fingerprint()


def test_draws_are_prefix_stable():
    """Draw k is the same scenario whether the campaign runs k+1 or N
    draws — per-draw RNG streams, not one shared stream."""
    short = fuzz(seed=7, draws=2, sanitize=False)
    longer = fuzz(seed=7, draws=DRAWS, sanitize=False)
    assert longer.rows[:2] == short.rows


def test_different_seeds_draw_different_schedules():
    a = fuzz(seed=7, draws=2, sanitize=False)
    b = fuzz(seed=8, draws=2, sanitize=False)
    assert a.payload() != b.payload()


def test_drawn_specs_serialize_and_validate():
    for i in range(12):
        rng = RngStreams(3).stream(f"fuzz/draw{i}")
        spec = draw_spec(rng, f"fuzz-3-{i:03d}")
        doc = json.loads(spec.to_json())
        validate(doc, SCENARIO_SCHEMA)
        assert ScenarioSpec.from_dict(doc) == spec


def test_finding_is_shrunk_and_saved_as_regression(tmp_path, monkeypatch):
    """A violating draw must be shrunk and auto-saved with provenance."""
    base = legacy_specs()["server-restart"]
    # Expecting the run to fail 'verifier-bumped' (expected=3, actual 2)
    # makes a deterministic, genuinely failing draw.
    rigged = base.replace(
        name="fuzz-1-000",
        checks=tuple(
            c.__class__(c.kind, params=(("expected", 3),))
            if c.kind == "verifier-bumped"
            else c
            for c in base.checks
        ),
    )
    import importlib

    # ``repro.chaos.fuzz`` the *module* is shadowed by the re-exported
    # ``fuzz`` function on the package, so resolve it explicitly.
    fuzz_mod = importlib.import_module("repro.chaos.fuzz")
    monkeypatch.setattr(
        fuzz_mod, "draw_spec", lambda rng, name: rigged.replace(name=name)
    )

    report = fuzz(seed=1, draws=1, sanitize=False, corpus_root=str(tmp_path))
    assert not report.passed
    (finding,) = report.findings
    assert finding.signature == ("verifier-bumped",)
    # Shrinking kept only what the signature needs: the crash+restart
    # pair that produces exactly two verifier bumps.
    assert finding.shrunk.fault_count() <= rigged.fault_count()
    assert finding.shrunk.probes == ()
    assert finding.saved_path is not None

    saved = load_scenario(finding.saved_path)
    assert saved.expect.passed is False
    assert saved.expect.failed == ("verifier-bumped",)
    assert saved.expect.fingerprint == finding.shrunk_outcome.fingerprint
    prov = dict(saved.provenance)
    assert prov["fuzz_seed"] == 1
    assert prov["draw"] == 0
    assert prov["shrink_steps"] == finding.shrink.steps

    # The saved regression replays to the same verdict.
    from repro.chaos import replay_file

    replay = replay_file(finding.saved_path, verify_determinism=False)
    assert replay.ok
    assert replay.verdict_ok


def test_default_campaign_finds_nothing_spurious():
    """A slice of the CI smoke campaign: sanitized draws at seed 1 stay
    green (the full 25-draw run lives in the CI fuzz job)."""
    report = fuzz(seed=1, draws=6, sanitize=True, shards=2)
    assert report.passed, [
        (f.draw, f.signature) for f in report.findings
    ]
