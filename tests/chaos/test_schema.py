"""The scenario schema: validator subset + placeholder substitution."""

import pytest

from repro.chaos import SchemaError, loads_scenario, validate
from repro.chaos.schema import SCENARIO_SCHEMA, substitute_placeholders


def minimal(**overrides):
    doc = {
        "schema": "repro-nfs/scenario@1",
        "name": "t",
        "bed": {"target": "netapp", "client": "stock"},
        "workload": {"file_bytes": 65536},
    }
    doc.update(overrides)
    return doc


def test_minimal_scenario_validates():
    validate(minimal(), SCENARIO_SCHEMA)


def test_wrong_schema_tag_rejected():
    with pytest.raises(SchemaError, match=r"\$\.schema"):
        validate(minimal(schema="repro-nfs/scenario@99"), SCENARIO_SCHEMA)


def test_missing_required_key_names_path():
    doc = minimal()
    del doc["bed"]
    with pytest.raises(SchemaError, match="missing required key 'bed'"):
        validate(doc, SCENARIO_SCHEMA)


def test_workload_is_schema_optional_but_spec_required():
    # The schema admits a workload-less document (experiment scenarios
    # omit it); the spec layer enforces workload-xor-experiment.
    import json

    doc = minimal()
    del doc["workload"]
    validate(doc, SCENARIO_SCHEMA)
    with pytest.raises(Exception, match="workload or an experiment"):
        loads_scenario(json.dumps(doc))


def test_unknown_key_rejected_with_path():
    with pytest.raises(SchemaError, match="unknown key"):
        validate(minimal(bogus=1), SCENARIO_SCHEMA)


def test_type_mismatch_names_json_path():
    doc = minimal()
    doc["workload"]["file_bytes"] = "lots"
    with pytest.raises(SchemaError, match=r"\$\.workload\.file_bytes"):
        validate(doc, SCENARIO_SCHEMA)


def test_bool_is_not_an_integer():
    doc = minimal()
    doc["workload"]["file_bytes"] = True
    with pytest.raises(SchemaError):
        validate(doc, SCENARIO_SCHEMA)


def test_enum_violation_rejected():
    doc = minimal()
    doc["bed"]["target"] = "solaris"
    with pytest.raises(SchemaError, match="solaris"):
        validate(doc, SCENARIO_SCHEMA)


def test_exclusive_minimum_rejects_zero_file():
    doc = minimal()
    doc["workload"]["file_bytes"] = 0
    with pytest.raises(SchemaError, match="exclusiveMinimum"):
        validate(doc, SCENARIO_SCHEMA)


def test_array_items_validated_with_index():
    doc = minimal(
        faults={"link": [{"kind": "nope", "attach": "client", "direction": "downlink"}]}
    )
    with pytest.raises(SchemaError, match=r"\$\.faults\.link\[0\]"):
        validate(doc, SCENARIO_SCHEMA)


def test_sweep_needs_at_least_one_rate():
    doc = minimal(sweep={"loss_rates": []})
    with pytest.raises(SchemaError, match="at least 1"):
        validate(doc, SCENARIO_SCHEMA)


# -- placeholders --------------------------------------------------------------


def test_full_string_placeholder_coerces_types():
    node = {
        "n": "{{ COUNT }}",
        "f": "{{ RATE }}",
        "b": "{{ FLAG }}",
        "s": "{{ NAME }}",
    }
    env = {"COUNT": "42", "RATE": "0.25", "FLAG": "true", "NAME": "hello"}
    out = substitute_placeholders(node, env)
    assert out == {"n": 42, "f": 0.25, "b": True, "s": "hello"}


def test_embedded_placeholder_substitutes_textually():
    out = substitute_placeholders({"msg": "run-{{ TAG }}-x"}, {"TAG": "7"})
    assert out == {"msg": "run-7-x"}


def test_missing_placeholder_names_variable_and_path():
    with pytest.raises(SchemaError, match=r"\$\.a\[0\].*MISSING"):
        substitute_placeholders({"a": ["{{ MISSING }}"]}, {})


def test_loads_scenario_substitutes_then_validates():
    import json

    doc = minimal()
    doc["workload"]["file_bytes"] = "{{ FB }}"
    spec = loads_scenario(json.dumps(doc), env={"FB": "65536"})
    assert spec.workload.file_bytes == 65536
    with pytest.raises(SchemaError):
        loads_scenario(json.dumps(doc), env={"FB": "not-a-number"})


# -- the arrivals block (PR 10) -----------------------------------------------


def arrivals_doc(**arrival_overrides):
    arrivals = {
        "process": "poisson",
        "rate_per_s": 100.0,
        "duration_ns": 50000000,
    }
    arrivals.update(arrival_overrides)
    doc = minimal(arrivals=arrivals)
    del doc["workload"]
    return doc


def test_arrivals_block_validates():
    validate(arrivals_doc(), SCENARIO_SCHEMA)


def test_arrivals_full_block_validates():
    validate(
        arrivals_doc(
            process="mmpp",
            burst_rate_per_s=400.0,
            mean_idle_ns=20000000,
            mean_burst_ns=10000000,
            sizes={"dist": "lognormal", "bytes": 65536, "sigma": 1.0},
            mix=[
                {"workload": "sequential-write", "weight": 3.0},
                {"workload": "database-fsync", "params": {"transactions": 5}},
            ],
            diurnal=[0.5, 1.0, 2.0],
            max_sessions=64,
        ),
        SCENARIO_SCHEMA,
    )


def test_arrivals_process_enum_names_path():
    with pytest.raises(SchemaError, match=r"\$\.arrivals\.process"):
        validate(arrivals_doc(process="periodic"), SCENARIO_SCHEMA)


def test_arrivals_rate_type_names_path():
    with pytest.raises(SchemaError, match=r"\$\.arrivals\.rate_per_s"):
        validate(arrivals_doc(rate_per_s="fast"), SCENARIO_SCHEMA)


def test_arrivals_unknown_key_names_path():
    with pytest.raises(SchemaError, match="unknown key"):
        validate(arrivals_doc(cadence=3), SCENARIO_SCHEMA)


def test_arrivals_sizes_dist_enum_names_path():
    with pytest.raises(SchemaError, match=r"\$\.arrivals\.sizes\.dist"):
        validate(arrivals_doc(sizes={"dist": "zipf"}), SCENARIO_SCHEMA)


def test_arrivals_mix_entry_needs_workload():
    with pytest.raises(
        SchemaError, match=r"\$\.arrivals\.mix\[0\].*workload"
    ):
        validate(arrivals_doc(mix=[{"weight": 1.0}]), SCENARIO_SCHEMA)


def test_arrivals_empty_mix_rejected():
    with pytest.raises(SchemaError, match=r"\$\.arrivals\.mix"):
        validate(arrivals_doc(mix=[]), SCENARIO_SCHEMA)


def test_workload_name_admitted_without_file_bytes():
    doc = minimal(workload={"name": "database-fsync",
                            "params": {"transactions": 10}})
    validate(doc, SCENARIO_SCHEMA)
