"""CLI exit-code gating for the chaos surface (and the legacy lock-in).

Satellite contract: ``repro-nfs faults``, ``fleet``, ``run
<scenario.json>``, ``corpus``, and ``fuzz`` all exit non-zero on any
invariant failure or expectation drift, so CI can gate on them.
"""

import io
import json
import os

import pytest

from repro.chaos import pin_expectations, run_spec, save_scenario
from repro.chaos.legacy import legacy_specs
from repro.chaos.spec import ExpectSpec
from repro.experiments.cli import (
    main,
    run_corpus,
    run_fault_scenarios,
    run_scenario_files,
)

REPO = os.path.join(os.path.dirname(__file__), "..", "..")


def _pinned(name, tmp_path, **replace):
    spec = legacy_specs()[name]
    if replace:
        spec = spec.replace(**replace)
    outcome = run_spec(spec, verify_determinism=False)
    return save_scenario(pin_expectations(spec, outcome), str(tmp_path))


def test_run_scenario_file_exits_zero_on_pass(tmp_path, capsys):
    path = _pinned("jukebox", tmp_path)
    assert main(["run", path]) == 0
    out = capsys.readouterr().out
    assert "PASS jukebox" in out


def test_run_scenario_file_exits_one_on_drift(tmp_path, capsys):
    path = _pinned("jukebox", tmp_path)
    doc = json.loads(open(path, encoding="utf-8").read())
    doc["expect"]["fingerprint"] = "0" * 64
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    assert main(["run", path]) == 1
    out = capsys.readouterr().out
    assert "FAIL jukebox" in out
    assert "DRIFT" in out
    assert "fingerprint drift" in out


def test_run_template_reads_placeholders_from_environment(
    monkeypatch, capsys
):
    template = os.path.join(REPO, "scenarios", "templates", "burst-loss.json")
    monkeypatch.setenv("CHAOS_FILE_BYTES", str(2 * 1024 * 1024))
    monkeypatch.setenv("CHAOS_TIMEO_NS", str(25_000_000))
    assert main(["run", template]) == 0
    assert "PASS burst-loss" in capsys.readouterr().out


def test_run_template_without_env_fails_loudly(monkeypatch):
    template = os.path.join(REPO, "scenarios", "templates", "burst-loss.json")
    monkeypatch.delenv("CHAOS_FILE_BYTES", raising=False)
    monkeypatch.delenv("CHAOS_TIMEO_NS", raising=False)
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="CHAOS_"):
        main(["run", template])


def test_corpus_command_gates_on_drift(tmp_path):
    _pinned("jukebox", tmp_path)
    out = io.StringIO()
    assert run_corpus(str(tmp_path), verify=False, out=out) is True
    assert "1 scenario(s) replayed" in out.getvalue()

    # Tamper a pinned verdict: the same corpus must now fail.
    spec = legacy_specs()["jukebox"]
    tampered = spec.replace(
        expect=ExpectSpec(passed=False, failed=("stability",), fingerprint=None)
    )
    save_scenario(tampered, str(tmp_path))
    out = io.StringIO()
    assert run_corpus(str(tmp_path), verify=False, out=out) is False
    assert "FAIL" in out.getvalue()


def test_fuzz_command_writes_json_report(tmp_path, capsys):
    json_path = str(tmp_path / "report.json")
    assert (
        main(
            [
                "fuzz",
                "--seed",
                "7",
                "--draws",
                "2",
                "--no-sanitize",
                "--shards",
                "0",
                "--json",
                json_path,
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "PASS fuzz seed=7" in out
    with open(json_path, encoding="utf-8") as fh:
        report = json.load(fh)
    assert report["seed"] == 7
    assert len(report["scenarios"]) == 2


def test_fuzz_rejects_bad_draws():
    with pytest.raises(SystemExit):
        main(["fuzz", "--draws", "0"])


def test_faults_exits_nonzero_on_invariant_failure(monkeypatch):
    """Lock in the satellite: a failing scripted scenario must surface
    as a False return (exit 1 in main)."""
    from repro.faults import scenarios as sc

    def rigged(seed):
        return {"seed": seed}, [sc.Invariant("rigged", False, "forced")]

    monkeypatch.setitem(
        sc.SCENARIOS, "rigged", sc.Scenario("rigged", "always fails", rigged)
    )
    out = io.StringIO()
    assert (
        run_fault_scenarios(["rigged"], seed=1, verify=False, out=out) is False
    )
    assert main(["faults", "--scenario", "rigged", "--no-verify"]) == 1


def test_run_mixes_scenarios_and_experiments_gate_together(tmp_path):
    """`run` accepts .json paths alongside experiment ids; a failing
    scenario fails the combined run even if experiments pass."""
    spec = legacy_specs()["jukebox"].replace(
        expect=ExpectSpec(passed=False, failed=("stability",), fingerprint=None)
    )
    path = save_scenario(spec, str(tmp_path))
    out = io.StringIO()
    assert run_scenario_files([path], out=out) is False
    assert "DRIFT" in out.getvalue()
