"""Delta-debugging shrinker: minimality, determinism, and bounds."""

import pytest

from repro.chaos.legacy import legacy_specs
from repro.chaos.shrink import shrink
from repro.chaos.spec import BedSpec
from repro.errors import ConfigError


def crash_oracle(spec):
    """Synthetic failure: fires iff the schedule contains a crash."""
    if any(ev.op == "crash" for ev in spec.server_events):
        return ("no-stable-data-lost",)
    return ()


def test_shrinks_to_single_event_minimal_reproducer():
    spec = legacy_specs()["server-restart"]
    result = shrink(spec, crash_oracle)
    # Only the crash event is load-bearing for this oracle: the restart,
    # the probe, and all but one chunk of the file must be gone.
    assert [ev.op for ev in result.spec.server_events] == ["crash"]
    assert result.spec.probes == ()
    assert result.spec.fault_count() == 1
    assert result.spec.workload.file_bytes == spec.workload.chunk_bytes
    assert result.signature == ("no-stable-data-lost",)
    assert result.steps == len(result.trace) > 0


def test_shrink_is_deterministic():
    spec = legacy_specs()["server-restart"]
    first = shrink(spec, crash_oracle)
    second = shrink(spec, crash_oracle)
    assert first.spec == second.spec
    assert first.trace == second.trace
    assert first.attempts == second.attempts


def test_halved_durations_survive_when_load_bearing():
    spec = legacy_specs()["server-restart"]

    def late_crash_oracle(candidate):
        # Fails only while the crash happens at its original time, so
        # the time-halving pass must NOT be accepted.
        crashes = [ev for ev in candidate.server_events if ev.op == "crash"]
        if any(ev.at_ns == spec.server_events[0].at_ns for ev in crashes):
            return ("deterministic",)
        return ()

    result = shrink(spec, late_crash_oracle)
    assert [ev.op for ev in result.spec.server_events] == ["crash"]
    assert result.spec.server_events[0].at_ns == spec.server_events[0].at_ns


def test_passing_spec_is_a_usage_error():
    spec = legacy_specs()["lossy-burst"]
    with pytest.raises(ConfigError, match="passing scenario"):
        shrink(spec, lambda s: ())


def test_max_attempts_bounds_oracle_invocations():
    spec = legacy_specs()["server-restart"]
    calls = []

    def counting_oracle(candidate):
        calls.append(1)
        return crash_oracle(candidate)

    result = shrink(spec, counting_oracle, max_attempts=5)
    # 1 signature probe + at most 5 shrink attempts.
    assert len(calls) <= 6
    assert result.attempts <= 5
    # Partial progress is still returned.
    assert result.spec.fault_count() <= spec.fault_count()


def test_oracle_config_errors_skip_candidate():
    spec = legacy_specs()["server-restart"]

    def fragile_oracle(candidate):
        # Pretend any candidate without a restart is unbuildable; the
        # shrinker must skip those, not crash, and keep the restart.
        if not any(ev.op == "restart" for ev in candidate.server_events):
            raise ConfigError("restart reference dangling")
        return crash_oracle(candidate)

    result = shrink(spec, fragile_oracle)
    ops = sorted(ev.op for ev in result.spec.server_events)
    assert ops == ["crash", "restart"]


def test_client_shedding_halves_fleet():
    base = legacy_specs()["server-restart"]
    fleet = base.replace(
        bed=BedSpec(
            target=base.bed.target,
            client=base.bed.client,
            clients=4,
            mount=base.bed.mount,
        )
    )
    result = shrink(fleet, crash_oracle)
    assert result.spec.bed.clients == 1
