"""The declarative corpus must stay bit-identical to the scripted scenarios.

Each legacy chaos scenario in :mod:`repro.faults.scenarios` has a
declarative twin in :mod:`repro.chaos.legacy`.  These tests replay both
forms at the default seed and require the exact same payload
fingerprint and the exact same invariant verdicts — so the scenario
corpus can never drift from the scripted originals unnoticed.
"""

import pytest

from repro.chaos import loads_scenario, run_spec
from repro.chaos.legacy import legacy_specs
from repro.faults.scenarios import run_scenario

LEGACY_NAMES = sorted(legacy_specs())


def _rows(outcome):
    return [(inv.name, inv.ok) for inv in outcome.invariants]


@pytest.mark.parametrize("name", LEGACY_NAMES)
def test_declarative_twin_matches_scripted_scenario(name):
    spec = legacy_specs()[name]
    scripted = run_scenario(name, seed=1, verify_determinism=False)
    declared = run_spec(spec, verify_determinism=False)
    assert declared.fingerprint == scripted.fingerprint
    assert _rows(declared) == _rows(scripted)
    assert declared.passed


@pytest.mark.parametrize("name", LEGACY_NAMES)
def test_declarative_twin_survives_json_round_trip(name):
    spec = legacy_specs()[name]
    assert loads_scenario(spec.to_json()) == spec
