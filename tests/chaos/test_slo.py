"""The ``slo`` expect-block: schema, spec guards, runner gating."""

import pytest

from repro.chaos import loads_scenario, run_spec
from repro.chaos.spec import BedSpec, CheckSpec, ScenarioSpec, WorkloadSpec
from repro.errors import ConfigError
from repro.obs.slo import SloSpec
from repro.units import KIB


EASY = SloSpec(
    name="writes-finish", metric="syscall/write_latency_us",
    threshold=1e9, target=0.5,
)
IMPOSSIBLE = SloSpec(
    name="instant-writes", metric="syscall/write_latency_us",
    threshold=0.0, target=0.999,
)


def _slo_spec(slos, **kwargs):
    base = dict(
        name="t-slo",
        bed=BedSpec(target="netapp", client="stock", clients=2),
        workload=WorkloadSpec(file_bytes=64 * KIB),
        checks=(CheckSpec("fleet-files-durable"),),
        slos=slos,
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


def _inv(outcome, name):
    for inv in outcome.invariants:
        if inv.name == name:
            return inv
    raise AssertionError(f"no invariant {name!r} in {outcome.invariants}")


def test_slo_block_round_trips_through_json():
    spec = _slo_spec((EASY, IMPOSSIBLE))
    assert loads_scenario(spec.to_json()) == spec


def test_slo_block_schema_rejects_unknown_keys():
    spec = _slo_spec((EASY,))
    doc = spec.to_json().replace('"threshold"', '"thresh0ld"')
    with pytest.raises(ConfigError):
        loads_scenario(doc)


def test_slo_block_single_run_only():
    with pytest.raises(ConfigError, match="single-run workload scenarios"):
        _slo_spec((EASY,), sweep_loss_rates=(0.0, 0.02))
    from repro.chaos.spec import ExperimentSpec

    with pytest.raises(ConfigError, match="single-run workload scenarios"):
        ScenarioSpec(
            name="t-exp",
            bed=BedSpec(target="netapp", client="stock"),
            experiment=ExperimentSpec(id="fig2"),
            slos=(EASY,),
        )


def test_runner_gates_on_slo_and_stays_deterministic():
    outcome = run_spec(_slo_spec((EASY,)), verify_determinism=True)
    assert outcome.passed, [
        (i.name, i.detail) for i in outcome.invariants if not i.ok
    ]
    slo_inv = _inv(outcome, "slo-writes-finish")
    assert slo_inv.ok
    assert "attained" in slo_inv.detail
    # The determinism replay runs UNOBSERVED; a matching fingerprint is
    # the pure-observer proof for the SLO-gated first run.
    assert _inv(outcome, "deterministic").ok


def test_runner_fails_violated_slo():
    outcome = run_spec(_slo_spec((IMPOSSIBLE,)), verify_determinism=False)
    assert not outcome.passed
    slo_inv = _inv(outcome, "slo-instant-writes")
    assert not slo_inv.ok
    assert slo_inv.detail.startswith("violated")
