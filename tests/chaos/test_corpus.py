"""The on-disk scenario corpus: discovery, strict replay, drift detection."""

import json
import os

import pytest

from repro.chaos import (
    corpus_files,
    load_scenario,
    pin_expectations,
    replay_file,
    run_spec,
    save_regression,
    save_scenario,
)
from repro.chaos.legacy import corpus_specs, legacy_specs
from repro.errors import ConfigError

CORPUS = os.path.join(os.path.dirname(__file__), "..", "..", "scenarios")


def test_corpus_discovery_excludes_templates(tmp_path):
    (tmp_path / "a.json").write_text("{}")
    (tmp_path / "notes.txt").write_text("")
    (tmp_path / "templates").mkdir()
    (tmp_path / "templates" / "t.json").write_text("{}")
    (tmp_path / "regressions").mkdir()
    (tmp_path / "regressions" / "r.json").write_text("{}")
    files = corpus_files(str(tmp_path))
    names = [os.path.relpath(p, str(tmp_path)) for p in files]
    assert names == ["a.json", os.path.join("regressions", "r.json")]
    assert corpus_files(str(tmp_path), include_regressions=False) == [
        str(tmp_path / "a.json")
    ]


def test_missing_corpus_is_config_error(tmp_path):
    with pytest.raises(ConfigError, match="no scenario corpus"):
        corpus_files(str(tmp_path / "nowhere"))


def test_checked_in_corpus_covers_every_builder():
    files = {
        os.path.splitext(os.path.basename(p))[0]
        for p in corpus_files(CORPUS, include_regressions=False)
    }
    assert set(corpus_specs()) <= files


def test_checked_in_files_match_their_builders():
    """scenarios/*.json must be exactly what regen_scenarios.py writes
    (modulo the pinned expect block, which the builders do not carry)."""
    for name, spec in corpus_specs().items():
        on_disk = load_scenario(os.path.join(CORPUS, f"{name}.json"))
        assert on_disk.replace(expect=spec.expect) == spec, name
        assert on_disk.expect.passed is True
        assert on_disk.expect.fingerprint


def test_replay_detects_fingerprint_drift(tmp_path):
    spec = legacy_specs()["slot-starvation"]
    outcome = run_spec(spec, verify_determinism=False)
    pinned = pin_expectations(spec, outcome)
    tampered = pinned.replace(
        expect=pinned.expect.__class__(
            passed=pinned.expect.passed,
            failed=pinned.expect.failed,
            fingerprint="0" * 64,
        )
    )
    path = save_scenario(tampered, str(tmp_path))
    replay = replay_file(path, verify_determinism=False)
    assert not replay.ok
    assert not replay.verdict_ok
    assert any("fingerprint drift" in m for m in replay.mismatches)


def test_replay_detects_verdict_drift(tmp_path):
    spec = legacy_specs()["slot-starvation"]
    outcome = run_spec(spec, verify_determinism=False)
    pinned = pin_expectations(spec, outcome)
    tampered = pinned.replace(
        expect=pinned.expect.__class__(
            passed=False,
            failed=("stability",),
            fingerprint=pinned.expect.fingerprint,
        )
    )
    path = save_scenario(tampered, str(tmp_path))
    replay = replay_file(path, verify_determinism=False)
    assert not replay.ok
    assert any("expected pass=False" in m for m in replay.mismatches)
    assert any("stability" in m for m in replay.mismatches)


def test_unpinned_scenario_gates_on_its_own_verdict(tmp_path):
    """A file with no expect block is still a CI gate: the run must pass."""
    spec = legacy_specs()["slot-starvation"]
    path = save_scenario(spec, str(tmp_path))
    replay = replay_file(path, verify_determinism=False)
    assert replay.ok  # no expectations to violate...
    assert replay.verdict_ok  # ...but the run itself passed

    failing = spec.replace(
        name="rigged",
        checks=spec.checks
        + (spec.checks[1].__class__("backlog-built-up", params=(("min", 10**9),)),),
    )
    path = save_scenario(failing, str(tmp_path))
    replay = replay_file(path, verify_determinism=False)
    assert replay.ok
    assert not replay.verdict_ok


def test_save_regression_lands_in_subdir_with_provenance(tmp_path):
    spec = legacy_specs()["jukebox"]
    outcome = run_spec(spec, verify_determinism=False)
    path = save_regression(
        spec, outcome, str(tmp_path), provenance=(("fuzz_seed", 9),)
    )
    assert os.path.dirname(path).endswith("regressions")
    saved = load_scenario(path)
    assert dict(saved.provenance)["fuzz_seed"] == 9
    assert saved.expect.fingerprint == outcome.fingerprint
    assert path in corpus_files(str(tmp_path))


@pytest.mark.parametrize(
    "name", ["fleet-crash-commit", "fleet-starved-client"]
)
def test_fleet_corpus_scenarios_replay_strictly(name):
    """The fleet scenarios exist only declaratively (no scripted twin),
    so their pinned expectations are replayed here rather than in the
    equivalence tests."""
    replay = replay_file(
        os.path.join(CORPUS, f"{name}.json"), verify_determinism=False
    )
    assert replay.ok, replay.mismatches
    assert replay.outcome.passed


def test_corpus_files_are_canonical_json():
    for path in corpus_files(CORPUS, include_regressions=False):
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        doc = json.loads(text)
        assert text == load_scenario(path).to_json(), path
        assert doc["schema"] == "repro-nfs/scenario@1"


# -- experiment scenarios (paper figures replayed as corpus gates) ------------


def test_experiment_spec_round_trips():
    from repro.chaos import ExperimentSpec, ScenarioSpec, BedSpec

    spec = ScenarioSpec(
        name="fig1-rt",
        bed=BedSpec(),
        experiment=ExperimentSpec(id="fig1", scale=16.0, quick=True),
    )
    rebuilt = ScenarioSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.workload is None
    assert rebuilt.experiment.id == "fig1"


def test_experiment_spec_rejects_workload_and_faults():
    from repro.chaos import (
        BedSpec,
        ExperimentSpec,
        ScenarioSpec,
        ServerEventSpec,
        WorkloadSpec,
    )

    exp = ExperimentSpec(id="fig1", scale=16.0, quick=True)
    with pytest.raises(ConfigError, match="no workload"):
        ScenarioSpec(
            name="x",
            bed=BedSpec(),
            workload=WorkloadSpec(file_bytes=1),
            experiment=exp,
        )
    with pytest.raises(ConfigError, match="no fault schedule"):
        ScenarioSpec(
            name="x",
            bed=BedSpec(),
            experiment=exp,
            server_events=(ServerEventSpec(op="crash", at_ns=1),),
        )
    with pytest.raises(ConfigError, match="workload or an experiment"):
        ScenarioSpec(name="x", bed=BedSpec())


def test_experiment_scenario_rejects_unknown_registry_id():
    from repro.chaos import BedSpec, ExperimentSpec, ScenarioSpec

    spec = ScenarioSpec(
        name="x",
        bed=BedSpec(),
        experiment=ExperimentSpec(id="no-such-figure"),
    )
    with pytest.raises(ConfigError, match="unknown experiment"):
        run_spec(spec, verify_determinism=False)


def test_fig1_corpus_scenario_replays_strictly():
    """The Figure 1 sweep is corpus-gated: pinned fingerprint, and every
    paper shape criterion is an invariant row."""
    replay = replay_file(
        os.path.join(CORPUS, "fig1-throughput.json"), verify_determinism=False
    )
    assert replay.ok, replay.mismatches
    assert replay.outcome.passed
    names = [inv.name for inv in replay.outcome.invariants]
    assert "local memory-write peak dwarfs NFS" in names
    assert replay.spec.experiment.id == "fig1"
    assert replay.spec.experiment.quick is True
