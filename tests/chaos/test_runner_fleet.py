"""Fleet scenarios through the chaos runner.

Satellite contract: the fleet crash-during-COMMIT scenario proves the
NFSv3 verifier-mismatch path under concurrency — every client sees the
new boot verifier, re-dirties its unstable pages, and still reaches
durability — and the run reduces bit-identically under ``--shards``.
"""

import pytest

from repro.chaos import run_spec
from repro.chaos.legacy import corpus_specs
from repro.chaos.spec import (
    BedSpec,
    CheckSpec,
    LinkFaultSpec,
    ProbeSpec,
    ScenarioSpec,
    ServerEventSpec,
    WorkloadSpec,
)
from repro.errors import ConfigError
from repro.units import KIB, ms


def _inv(outcome, name):
    """Invariant row by name; per-server rows carry a [host] suffix."""
    for inv in outcome.invariants:
        if inv.name == name or inv.name.startswith(f"{name}["):
            return inv
    raise AssertionError(f"no invariant {name!r} in {outcome.invariants}")


def test_fleet_crash_commit_redirties_every_client():
    spec = corpus_specs()["fleet-crash-commit"]
    outcome = run_spec(spec, verify_determinism=False, shards=2)
    assert outcome.passed, [
        (i.name, i.detail) for i in outcome.invariants if not i.ok
    ]
    assert _inv(outcome, "files-complete-durable").ok
    assert _inv(outcome, "fleet-clients-redirtied").ok
    # Sharded replay reduced to the serial fingerprint.
    assert _inv(outcome, "serial-equivalence").ok
    # The crash really lost unstable state: the server restarted with a
    # new boot verifier and every client saw the mismatch.
    assert outcome.payload["boot_verf"] == [2]
    # The redirty check's detail lists clients that saw no mismatch;
    # its pass + empty list means all three clients hit the new verifier.
    assert _inv(outcome, "fleet-clients-redirtied").detail.endswith(": ")
    assert len(outcome.payload["clients"]) == 3


def test_fleet_starvation_routes_to_owning_client():
    spec = corpus_specs()["fleet-starved-client"]
    outcome = run_spec(spec, verify_determinism=False, shards=2)
    assert outcome.passed
    assert _inv(outcome, "serial-equivalence").ok


def _fleet_spec(**kwargs):
    base = dict(
        name="t-fleet",
        bed=BedSpec(target="netapp", client="stock", clients=2),
        workload=WorkloadSpec(file_bytes=64 * KIB),
        checks=(CheckSpec("fleet-files-durable"),),
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


def test_probes_are_single_client_only():
    spec = _fleet_spec(probes=(ProbeSpec(at_ns=ms(1)),))
    with pytest.raises(ConfigError, match="single-client only"):
        run_spec(spec, verify_determinism=False)


def test_eio_expectation_is_single_client_only():
    spec = _fleet_spec(workload=WorkloadSpec(file_bytes=64 * KIB, expect="eio"))
    with pytest.raises(ConfigError, match="single-client only"):
        run_spec(spec, verify_determinism=False)


def test_bare_client_attach_is_ambiguous_in_fleet():
    spec = _fleet_spec(
        link_faults=(
            LinkFaultSpec(kind="jitter", attach="client", direction="uplink"),
        )
    )
    with pytest.raises(ConfigError, match="ambiguous"):
        run_spec(spec, verify_determinism=False)


def test_server_event_index_bounds_checked():
    spec = _fleet_spec(
        server_events=(ServerEventSpec(op="crash", at_ns=ms(1), server=3),)
    )
    with pytest.raises(ConfigError, match="targets server 3"):
        run_spec(spec, verify_determinism=False)


def test_sweeps_are_single_client_only():
    spec = _fleet_spec(sweep_loss_rates=(0.0, 0.02))
    with pytest.raises(ConfigError, match="single-client only"):
        run_spec(spec, verify_determinism=False)
