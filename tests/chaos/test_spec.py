"""ScenarioSpec round-trips and field validation."""

import pytest

from repro.chaos import loads_scenario
from repro.chaos.legacy import corpus_specs
from repro.chaos.spec import (
    BedSpec,
    ClientEventSpec,
    LinkFaultSpec,
    ProbeSpec,
    ServerEventSpec,
    WorkloadSpec,
)
from repro.errors import ConfigError
from repro.units import ms


@pytest.mark.parametrize("name", sorted(corpus_specs()))
def test_every_corpus_spec_round_trips_through_json(name):
    spec = corpus_specs()[name]
    assert loads_scenario(spec.to_json()) == spec


def test_unknown_link_fault_kind_rejected():
    with pytest.raises(ConfigError, match="unknown link fault kind"):
        LinkFaultSpec(kind="wormhole", attach="client", direction="downlink")


def test_unknown_link_fault_param_rejected():
    with pytest.raises(ConfigError, match="p_bogus"):
        LinkFaultSpec(
            kind="gilbert-elliott",
            attach="client",
            direction="downlink",
            params=(("p_bogus", 0.5),),
        )


def test_bad_link_direction_rejected():
    with pytest.raises(ConfigError, match="direction"):
        LinkFaultSpec(kind="jitter", attach="client", direction="sideways")


def test_server_crash_needs_at_ns():
    with pytest.raises(ConfigError, match="needs at_ns"):
        ServerEventSpec(op="crash")


def test_server_pause_needs_window():
    with pytest.raises(ConfigError, match="start_ns/end_ns"):
        ServerEventSpec(op="pause", at_ns=ms(5))


def test_server_event_schedule_ops():
    op, args = ServerEventSpec(op="crash", at_ns=ms(10)).schedule_ops()
    assert op == "crash_at"
    assert args[0] == ms(10)
    op, args = ServerEventSpec(
        op="jukebox", start_ns=0, end_ns=ms(60)
    ).schedule_ops()
    assert op == "jukebox_between"
    assert args == (0, ms(60))


def test_client_event_window_must_be_positive():
    with pytest.raises(ConfigError, match="positive duration"):
        ClientEventSpec(start_ns=ms(10), end_ns=ms(10), slots=1)


def test_client_event_needs_one_slot():
    with pytest.raises(ConfigError, match="below one slot"):
        ClientEventSpec(start_ns=0, end_ns=ms(1), slots=0)


def test_probe_kind_validated():
    with pytest.raises(ConfigError, match="unknown probe kind"):
        ProbeSpec(kind="crystal-ball", at_ns=0)


def test_bed_needs_a_client():
    with pytest.raises(ConfigError, match="at least one client"):
        BedSpec(target="netapp", client="stock", clients=0)


def test_workload_expect_validated():
    with pytest.raises(ConfigError, match="unknown workload expectation"):
        WorkloadSpec(file_bytes=4096, expect="enoent")


def test_replace_returns_new_spec():
    spec = corpus_specs()["lossy-burst"]
    bigger = spec.replace(workload=spec.workload)
    assert bigger == spec
    shrunk = spec.replace(link_faults=spec.link_faults[:1])
    assert shrunk != spec
    assert shrunk.fault_count() == spec.fault_count() - 1


def test_fault_count_counts_every_schedule_entry():
    spec = corpus_specs()["server-restart"]
    assert spec.fault_count() == len(spec.server_events)


def test_bad_json_is_config_error():
    with pytest.raises(ConfigError, match="not valid JSON"):
        loads_scenario("{nope")
