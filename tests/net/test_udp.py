"""UDP stack edge cases."""

import pytest

from repro.config import NetConfig
from repro.errors import ProtocolError
from repro.net import Host, Switch
from repro.sim import Simulator


def make_host():
    sim = Simulator()
    switch = Switch(sim)
    host = Host(sim, "h", switch, NetConfig.gigabit())
    Host(sim, "peer", switch, NetConfig.gigabit())
    return sim, host


def test_double_bind_rejected():
    _sim, host = make_host()
    host.udp.socket(2049)
    with pytest.raises(ProtocolError):
        host.udp.socket(2049)


def test_send_on_closed_socket_rejected():
    _sim, host = make_host()
    sock = host.udp.socket(2049)
    sock.close()
    with pytest.raises(ProtocolError):
        sock.sendto("peer", 1, "x", 10)


def test_close_unbinds_port():
    sim, host = make_host()
    sock = host.udp.socket(2049)
    sock.close()
    sock2 = host.udp.socket(2049)  # rebindable after close
    assert sock2 is not sock


def test_delivery_to_closed_socket_dropped():
    sim, host = make_host()
    sock = host.udp.socket(2049)
    peer_sock_port = 9
    sock.close()
    from repro.net.packet import Datagram

    host.udp.deliver(Datagram("peer", peer_sock_port, "h", 2049, "x", 10))
    assert host.udp.dropped_no_socket == 1


def test_try_recv_nonblocking():
    sim, host = make_host()
    sock = host.udp.socket(2049)
    assert sock.try_recv() is None
    from repro.net.packet import Datagram

    host.udp.deliver(Datagram("peer", 9, "h", 2049, "hello", 10))
    dgram = sock.try_recv()
    assert dgram.payload == "hello"
    assert sock.try_recv() is None


def test_on_deliver_callback_fires():
    sim, host = make_host()
    sock = host.udp.socket(2049)
    pings = []
    sock.on_deliver = lambda: pings.append(sim.now)
    from repro.net.packet import Datagram

    host.udp.deliver(Datagram("peer", 9, "h", 2049, "x", 10))
    assert pings == [0]


def test_send_cost_monotone_in_size():
    _sim, host = make_host()
    costs = [host.udp.send_cost(size) for size in (100, 2000, 8392, 30000)]
    assert costs == sorted(costs)
    assert costs[0] > 0
