"""Batched per-link delivery must be invisible to simulated outcomes.

A clean link keeps in-flight frames in its own FIFO with only the head
occupying the simulator heap.  Because each frame's (time, seq) key is
reserved at send time, pop order is identical to the historical eager
one-heap-event-per-frame scheme — checked here by running whole fleets
both ways and comparing full payloads, not just digests.
"""

from repro.net.link import Link
from repro.sim import Simulator
from repro.topology import (
    FleetJobSpec,
    FleetWorkload,
    Topology,
    reduce_fleet,
)
from repro.units import KIB, ms


def _point(spec, batch: bool):
    topo = Topology(clients=spec.clients, servers=spec.servers, switch=spec.switch)
    for port in topo.switch.ports():
        port.uplink.batch_delivery = batch
        port.downlink.batch_delivery = batch
    workload = FleetWorkload(topo, spec.file_bytes, chunk_bytes=spec.chunk_bytes)
    return reduce_fleet(workload.run())


def test_batched_and_eager_delivery_produce_identical_payloads():
    spec = FleetJobSpec.homogeneous(3, target="netapp", file_bytes=128 * KIB)
    batched = _point(spec, batch=True)
    eager = _point(spec, batch=False)
    assert batched.to_payload() == eager.to_payload()


def test_batched_delivery_identical_under_contention():
    # linux-100 behind a 100 Mbit downlink queues deeply at the server
    # port — the case batching exists for.
    spec = FleetJobSpec.homogeneous(4, target="linux-100", file_bytes=96 * KIB)
    assert _point(spec, True).to_payload() == _point(spec, False).to_payload()


def test_only_head_frame_occupies_heap():
    sim = Simulator()
    link = Link(sim, bandwidth_bytes_per_sec=1e6, latency_ns=1000, name="l")
    delivered = []
    for i in range(10):
        link.send(1500, delivered.append, i)
    # Ten frames in flight, one heap entry: the rest wait in the FIFO.
    assert len(link._pending) == 10
    assert len(sim._queue) == 1
    sim.run()
    assert delivered == list(range(10))
    assert not link._pending and not link._head_armed


def test_eager_mode_puts_every_frame_on_the_heap():
    sim = Simulator()
    link = Link(sim, 1e6, 1000, name="l", batch_delivery=False)
    delivered = []
    for i in range(10):
        link.send(1500, delivered.append, i)
    assert len(sim._queue) == 10
    sim.run()
    assert delivered == list(range(10))


def test_faulted_links_fall_back_to_eager_path():
    from repro.faults.link import DelayJitter
    import random

    sim = Simulator()
    link = Link(sim, 1e6, 1000, name="l")
    link.fault = DelayJitter(random.Random(1), max_jitter_ns=int(ms(1)))
    delivered = []
    for i in range(5):
        link.send(1500, delivered.append, i)
    # Jittered arrivals are not monotone, so nothing goes in the FIFO.
    assert not link._pending
    sim.run()
    assert sorted(delivered) == list(range(5))
