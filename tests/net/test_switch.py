"""Tests for switch forwarding, reassembly and its GC."""

import pytest

from repro.config import NetConfig
from repro.errors import ConfigError
from repro.net import Host, Switch
from repro.sim import Simulator


def test_three_hosts_forwarding_isolated():
    sim = Simulator()
    switch = Switch(sim)
    net = NetConfig.gigabit()
    hosts = {name: Host(sim, name, switch, net) for name in ("a", "b", "c")}
    socks = {name: host.udp.socket(9) for name, host in hosts.items()}
    got = {name: [] for name in hosts}

    def rx(name):
        while True:
            dgram = yield from socks[name].recv()
            got[name].append(dgram.payload)

    for name in hosts:
        sim.spawn(rx(name), daemon=True)
    socks["a"].sendto("b", 9, "ab", 100)
    socks["a"].sendto("c", 9, "ac", 100)
    socks["b"].sendto("a", 9, "ba", 100)
    sim.run_until(lambda: sum(map(len, got.values())) == 3)
    assert got == {"a": ["ba"], "b": ["ab"], "c": ["ac"]}


def test_duplicate_attachment_rejected():
    sim = Simulator()
    switch = Switch(sim)
    Host(sim, "a", switch, NetConfig.gigabit())
    with pytest.raises(ConfigError):
        switch.attach("a", NetConfig.gigabit())


def test_unknown_port_lookup_rejected():
    sim = Simulator()
    switch = Switch(sim)
    with pytest.raises(ConfigError):
        switch.port("ghost")


def test_frames_to_detached_host_vanish():
    sim = Simulator()
    switch = Switch(sim)
    a = Host(sim, "a", switch, NetConfig.gigabit())
    sock = a.udp.socket(9)
    sock.sendto("nobody", 9, "x", 100)
    sim.run()  # no crash, nothing delivered


def test_reassembly_table_bounded_under_loss():
    sim = Simulator()
    switch = Switch(sim)
    lossy = NetConfig(loss_probability=0.5)
    a = Host(sim, "a", switch, NetConfig.gigabit())
    b = Host(sim, "b", switch, lossy)
    b.udp.socket(9)
    sock = a.udp.socket(9)
    for i in range(6000):
        sock.sendto("b", 9, i, 8392)  # 6 fragments each, half dropped
    sim.run()
    assert len(b.port._partial) <= 4096
    assert switch.fragments_dropped > 0
