"""Unit tests for the serialising link."""

import pytest

from repro.errors import ConfigError
from repro.net import Link
from repro.sim import Simulator
from repro.units import us


def test_single_frame_timing():
    sim = Simulator()
    link = Link(sim, bandwidth_bytes_per_sec=1e9, latency_ns=us(10))
    arrivals = []
    link.send(1000, arrivals.append, "a")
    sim.run()
    # 1000 B at 1 GB/s = 1 µs serialisation + 10 µs latency.
    assert arrivals == ["a"]
    assert sim.now == us(11)


def test_frames_serialise_back_to_back():
    sim = Simulator()
    link = Link(sim, bandwidth_bytes_per_sec=1e9, latency_ns=0)
    times = []
    link.send(1000, lambda: times.append(sim.now))
    link.send(1000, lambda: times.append(sim.now))
    sim.run()
    assert times == [us(1), us(2)]


def test_queue_delay_reflects_backlog():
    sim = Simulator()
    link = Link(sim, bandwidth_bytes_per_sec=1e9, latency_ns=0)
    link.send(5000, lambda: None)
    assert link.queue_delay_ns() == us(5)
    sim.run()
    assert link.queue_delay_ns() == 0


def test_stats_and_utilization():
    sim = Simulator()
    link = Link(sim, bandwidth_bytes_per_sec=1e6, latency_ns=0)
    link.send(500, lambda: None)
    sim.run()
    assert link.frames_sent == 1
    assert link.bytes_sent == 500
    assert link.utilization() == pytest.approx(1.0)


def test_bad_configs_rejected():
    sim = Simulator()
    with pytest.raises(ConfigError):
        Link(sim, bandwidth_bytes_per_sec=0, latency_ns=0)
    link = Link(sim, bandwidth_bytes_per_sec=1e6, latency_ns=0)
    with pytest.raises(ConfigError):
        link.send(0, lambda: None)
