"""Unit and property tests for IP fragmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetConfig
from repro.errors import ConfigError
from repro.net import fragment_count, fragment_sizes

GIGE = NetConfig.gigabit()
JUMBO = NetConfig.gigabit(jumbo=True)


def test_8k_write_fragments_six_ways_at_1500_mtu():
    # 8 KB payload + RPC overhead needs 6 fragments at MTU 1500,
    # the case the paper blames for the network-layer cost.
    assert fragment_count(8192 + 200, GIGE) == 6


def test_jumbo_frames_avoid_fragmentation():
    assert fragment_count(8192 + 200, JUMBO) == 1


def test_small_datagram_single_fragment():
    assert fragment_count(100, GIGE) == 1
    assert fragment_count(0, GIGE) == 1


def test_fragment_payloads_are_8_byte_aligned_except_last():
    sizes = fragment_sizes(8392, GIGE)
    payloads = [s - GIGE.header_bytes for s in sizes]
    for p in payloads[:-1]:
        assert p % 8 == 0


def test_negative_payload_rejected():
    with pytest.raises(ConfigError):
        fragment_sizes(-1, GIGE)


@given(st.integers(min_value=0, max_value=70_000))
@settings(max_examples=200, deadline=None)
def test_fragments_conserve_payload(payload):
    for net in (GIGE, JUMBO):
        sizes = fragment_sizes(payload, net)
        carried = sum(s - net.header_bytes for s in sizes)
        assert carried == payload
        assert all(s <= net.mtu for s in sizes)
        assert len(sizes) == fragment_count(payload, net)
