"""Integration tests: host-to-host datagrams through the switch."""

from repro.config import CpuCosts, NetConfig
from repro.net import Host, Switch
from repro.sim import Simulator
from repro.units import us


def make_pair(sim, net=None):
    net = net or NetConfig.gigabit()
    switch = Switch(sim)
    a = Host(sim, "alice", switch, net, ncpus=1)
    b = Host(sim, "bob", switch, net, ncpus=1)
    return a, b


def test_datagram_round_trip():
    sim = Simulator()
    alice, bob = make_pair(sim)
    bob_sock = bob.udp.socket(2049)
    alice_sock = alice.udp.socket(800)
    log = []

    def server():
        dgram = yield from bob_sock.recv()
        log.append(("bob got", dgram.payload))
        bob_sock.sendto(dgram.src, dgram.src_port, "pong", 100)

    def client():
        alice_sock.sendto("bob", 2049, "ping", 100)
        dgram = yield from alice_sock.recv()
        log.append(("alice got", dgram.payload))

    sim.spawn(server())
    sim.spawn(client())
    sim.run()
    assert log == [("bob got", "ping"), ("alice got", "pong")]


def test_large_datagram_fragmented_and_reassembled():
    sim = Simulator()
    alice, bob = make_pair(sim)
    bob_sock = bob.udp.socket(2049)
    alice_sock = alice.udp.socket(800)
    received = []

    def server():
        dgram = yield from bob_sock.recv()
        received.append(dgram.size)

    def client():
        alice_sock.sendto("bob", 2049, b"...", 8392)
        return
        yield  # pragma: no cover

    sim.spawn(server())
    sim.spawn(client())
    sim.run()
    assert received == [8392]
    # 6 fragments traversed the receiver's NIC.
    assert bob.rx_fragments == 6
    assert bob.rx_datagrams == 1


def test_receive_charges_interrupt_cpu():
    sim = Simulator()
    costs = CpuCosts()
    alice, bob = make_pair(sim)
    alice_sock = alice.udp.socket(800)
    bob.udp.socket(2049)
    alice_sock.sendto("bob", 2049, "x", 8392)
    sim.run()
    assert bob.cpus.time_by_label.get("net_rx_irq") == 6 * costs.rx_frame_irq


def test_datagram_to_unbound_port_dropped():
    sim = Simulator()
    alice, bob = make_pair(sim)
    alice_sock = alice.udp.socket(800)
    alice_sock.sendto("bob", 999, "void", 50)
    sim.run()
    assert bob.udp.dropped_no_socket == 1


def test_wire_time_scales_with_bandwidth():
    fast_net = NetConfig.gigabit()
    slow_net = NetConfig.fast_ethernet()
    times = {}
    for label, net in (("fast", fast_net), ("slow", slow_net)):
        sim = Simulator()
        alice, bob = make_pair(sim, net)
        sock = bob.udp.socket(2049)
        asock = alice.udp.socket(800)
        done = []

        def server(sock=sock, done=done):
            yield from sock.recv()
            done.append(sim.now)

        sim.spawn(server())
        asock.sendto("bob", 2049, "x", 8392)
        sim.run()
        times[label] = done[0]
    assert times["slow"] > times["fast"] * 5


def test_send_cost_reflects_fragmentation():
    sim = Simulator()
    switch = Switch(sim)
    costs = CpuCosts()
    gige = Host(sim, "g", switch, NetConfig.gigabit(), costs=costs)
    jumbo = Host(sim, "j", switch, NetConfig.gigabit(jumbo=True), costs=costs)
    # 8 KB + RPC header: full fragmentation cost matches the paper's 50 µs.
    assert gige.udp.send_cost(8392) == costs.sock_sendmsg
    # Jumbo frames eliminate 5 of 6 fragments' worth of work.
    assert jumbo.udp.send_cost(8392) < costs.sock_sendmsg * 0.6
