"""Tests for packet-loss fault injection and RPC recovery."""

from repro.bench import TestBed
from repro.config import NetConfig, NfsClientConfig, MountConfig
from repro.units import MB, ms


LOSSY = NetConfig(loss_probability=0.02)
FAST_RETRY = MountConfig(timeo_ns=ms(20))
CLIENT = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)


def test_lossy_network_drops_fragments():
    bed = TestBed(target="netapp", client=CLIENT, net=LOSSY, mount=FAST_RETRY)
    bed.run_sequential_write(1 * MB)
    assert bed.switch.fragments_dropped > 0


def test_rpc_retransmission_recovers_all_data():
    bed = TestBed(target="netapp", client=CLIENT, net=LOSSY, mount=FAST_RETRY)
    bed.run_sequential_write(2 * MB)
    assert bed.nfs.xprt.stats.retransmits > 0
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == 2 * MB
    assert bed.pagecache.dirty_bytes == 0


def test_duplicate_request_cache_absorbs_retransmits():
    """Losing a *reply* retransmits a WRITE the server already executed;
    the DRC must answer from cache, not re-execute."""
    bed = TestBed(
        target="netapp",
        client=CLIENT,
        net=NetConfig(loss_probability=0.05),
        mount=FAST_RETRY,
    )
    bed.run_sequential_write(1 * MB)
    server_file = next(iter(bed.server.files.values()))
    assert server_file.size == 1 * MB
    # bytes_received counts executions: every byte exactly once.
    assert bed.server.bytes_received == 1 * MB


def test_loss_degrades_throughput():
    clean = TestBed(target="netapp", client=CLIENT, mount=FAST_RETRY)
    clean_result = clean.run_sequential_write(2 * MB)
    lossy = TestBed(target="netapp", client=CLIENT, net=LOSSY, mount=FAST_RETRY)
    lossy_result = lossy.run_sequential_write(2 * MB)
    assert lossy_result.flush_throughput < clean_result.flush_throughput


def test_loss_is_deterministic_per_seed():
    def one():
        bed = TestBed(target="netapp", client=CLIENT, net=LOSSY, mount=FAST_RETRY)
        bed.run_sequential_write(1 * MB)
        return bed.switch.fragments_dropped, bed.nfs.xprt.stats.retransmits

    assert one() == one()
