"""Tests for the Fig. 5/6-style histograms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import Histogram, latency_histogram
from repro.bench.histogram import PAPER_BIN_WIDTH_NS, PAPER_MAX_NS
from repro.units import us


def test_paper_binning():
    assert PAPER_BIN_WIDTH_NS == us(60)
    assert PAPER_MAX_NS == us(480)
    hist = latency_histogram([us(30), us(70), us(70), us(500)])
    assert hist.counts[0] == 1
    assert hist.counts[1] == 2
    assert hist.overflow == 1
    assert hist.total == 4


def test_bin_edges_in_ms():
    hist = Histogram(us(60), us(480))
    edges = hist.bin_edges_ms()
    assert edges[0] == 0.0
    assert edges[1] == pytest.approx(0.06)
    assert len(edges) == 8


def test_mode_and_tail():
    hist = latency_histogram([us(70)] * 10 + [us(200)] * 3)
    assert hist.mode_bin_ms() == pytest.approx(0.06)
    assert hist.tail_fraction(us(180)) == pytest.approx(3 / 13)
    assert hist.tail_fraction(us(480)) == 0.0


def test_render_contains_bars():
    hist = latency_histogram([us(70)] * 10)
    text = hist.render("test")
    assert "test" in text
    assert "#" in text
    assert ">" in text  # overflow row


def test_invalid_bins_rejected():
    with pytest.raises(ValueError):
        Histogram(0, us(480))
    with pytest.raises(ValueError):
        Histogram(us(60), us(100))  # not a multiple


@given(st.lists(st.integers(min_value=0, max_value=2_000_000), max_size=300))
@settings(max_examples=80, deadline=None)
def test_histogram_conserves_samples(values):
    hist = latency_histogram(values)
    assert sum(hist.counts) + hist.overflow == len(values)
    assert hist.total == len(values)
    assert 0.0 <= hist.tail_fraction(us(120)) <= 1.0
