"""Tests for the Bonnie-derived benchmark itself."""

import pytest

from repro.bench import TestBed
from repro.config import NfsClientConfig
from repro.errors import ConfigError
from repro.units import MB


def test_three_phase_throughput_ordering():
    """write >= flush >= close cumulative throughput, by construction."""
    bed = TestBed(target="netapp", client="hashtable")
    result = bed.run_sequential_write(2 * MB)
    assert result.write_throughput >= result.flush_throughput
    assert result.flush_throughput >= result.close_throughput
    assert result.write_elapsed_ns <= result.flush_elapsed_ns <= result.close_elapsed_ns


def test_call_count_matches_chunking():
    bed = TestBed(target="netapp", client="hashtable")
    result = bed.run_sequential_write(1 * MB, chunk_bytes=8192)
    assert len(result.trace) == -(-1 * MB // 8192)  # ceil: tail call too


def test_odd_chunk_sizes():
    bed = TestBed(target="netapp", client="hashtable")
    result = bed.run_sequential_write(100_000, chunk_bytes=12_000)
    # ceil(100000/12000) = 9 calls, last one short.
    assert len(result.trace) == 9


def test_skip_fsync():
    bed = TestBed(target="local", client="stock")
    result = bed.run_sequential_write(1 * MB, do_fsync=False)
    assert result.flush_elapsed_ns == result.write_elapsed_ns or (
        result.flush_elapsed_ns - result.write_elapsed_ns < 100_000
    )


def test_summary_text():
    bed = TestBed(target="netapp", client="hashtable")
    result = bed.run_sequential_write(1 * MB)
    text = result.summary()
    assert "MBps" in text
    assert "write" in text


def test_invalid_sizes_rejected():
    bed = TestBed(target="netapp", client="hashtable")
    with pytest.raises(ConfigError):
        bed.run_sequential_write(0)
    from repro.bench import SequentialWriteBenchmark

    with pytest.raises(ConfigError):
        SequentialWriteBenchmark(bed.syscalls, chunk_bytes=0)


def test_unknown_target_rejected():
    with pytest.raises(ConfigError):
        TestBed(target="ramdisk")


def test_time_limit_guards_wedged_runs():
    bed = TestBed(target="netapp", client="hashtable")
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        bed.run_sequential_write(100 * MB, time_limit_ns=1_000_000)


def test_determinism_identical_runs_identical_traces():
    def one():
        bed = TestBed(target="netapp", client="stock")
        return bed.run_sequential_write(2 * MB).trace.latencies_ns

    assert one() == one()


def test_profile_mode_collects_samples():
    bed = TestBed(target="netapp", client="hashtable", profile=True)
    bed.run_sequential_write(1 * MB)
    assert bed.profiler.total_samples > 0
    assert bed.profiler.top(3)
