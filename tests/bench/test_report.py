"""Tests for CSV/gnuplot export."""

import csv
import os

from repro.bench import LatencyTrace, latency_histogram
from repro.bench.report import (
    gnuplot_script,
    write_curve_csv,
    write_histogram_csv,
    write_trace_csv,
)
from repro.units import us


def test_trace_csv_round_trip(tmp_path):
    trace = LatencyTrace()
    trace.record(0, us(100))
    trace.record(us(200), us(350))
    path = tmp_path / "trace.csv"
    write_trace_csv(str(path), trace)
    rows = list(csv.reader(open(path)))
    assert rows[0] == ["call", "latency_ms", "start_s"]
    assert float(rows[1][1]) == 0.1
    assert float(rows[2][1]) == 0.15
    assert len(rows) == 3


def test_curve_csv(tmp_path):
    path = tmp_path / "curves.csv"
    write_curve_csv(str(path), [25, 50], {"local": [190, 180], "nfs": [28, 28]})
    rows = list(csv.reader(open(path)))
    assert rows[0] == ["size_mb", "local", "nfs"]
    assert rows[1] == ["25", "190", "28"]


def test_histogram_csv(tmp_path):
    hist = latency_histogram([us(70)] * 5 + [us(600)])
    path = tmp_path / "hist.csv"
    write_histogram_csv(str(path), hist)
    rows = list(csv.reader(open(path)))
    assert rows[0] == ["bin_lower_ms", "count"]
    assert rows[2] == ["0.06", "5"]
    assert rows[-1] == ["0.48", "1"]  # overflow row


def test_gnuplot_script(tmp_path):
    script = gnuplot_script(str(tmp_path), ["a.csv", "b.csv"])
    assert os.path.exists(script)
    text = open(script).read()
    assert "'a.csv'" in text
    assert "'b.csv'" in text
    assert "write() system calls" in text
