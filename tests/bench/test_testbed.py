"""TestBed configuration plumbing."""

import pytest

from repro.bench import TestBed
from repro.config import (
    ClientHwConfig,
    FilerConfig,
    LinuxServerConfig,
    LocalFsConfig,
    MountConfig,
    NetConfig,
    NfsClientConfig,
)
from repro.errors import SimulationError
from repro.units import MB, mbps


def test_targets_build_expected_components():
    for target, has_nfs in (("netapp", True), ("linux", True),
                            ("linux-100", True), ("local", False)):
        bed = TestBed(target=target, client="stock")
        assert (bed.nfs is not None) == has_nfs
        assert (bed.ext2 is not None) == (not has_nfs)


def test_variant_string_resolves():
    bed = TestBed(target="netapp", client="enhanced")
    assert bed.client_config.release_bkl_for_send
    assert bed.client_config.hashtable_index


def test_explicit_config_object():
    cfg = NfsClientConfig(rpc_slots=4)
    bed = TestBed(target="netapp", client=cfg)
    assert bed.nfs.xprt.slots == 4


def test_custom_hw_applies():
    hw = ClientHwConfig(ncpus=1)
    bed = TestBed(target="netapp", client="stock", hw=hw)
    assert bed.client_host.cpus.ncpus == 1


def test_custom_mount_applies():
    mount = MountConfig(wsize=16384)
    bed = TestBed(target="netapp", client="stock", mount=mount)
    assert bed.nfs.pages_per_rpc == 4


def test_custom_server_configs_apply():
    bed = TestBed(
        target="netapp",
        client="stock",
        filer_config=FilerConfig(ingest_bytes_per_sec=mbps(5)),
    )
    assert bed.server.ingest_bytes_per_sec == mbps(5)
    bed = TestBed(
        target="linux",
        client="stock",
        linux_config=LinuxServerConfig(disk_bytes_per_sec=mbps(99)),
    )
    assert bed.server.disk.transfer_bytes_per_sec == mbps(99)
    bed = TestBed(
        target="local",
        client="stock",
        local_config=LocalFsConfig(disk_bytes_per_sec=mbps(7)),
    )
    assert bed.ext2.disk.transfer_bytes_per_sec == mbps(7)


def test_larger_wsize_fewer_rpcs():
    results = {}
    lazy = NfsClientConfig(eager_flush_limits=False, hashtable_index=True)
    for wsize in (8192, 32768):
        bed = TestBed(target="netapp", client=lazy, mount=MountConfig(wsize=wsize))
        bed.run_sequential_write(1 * MB, chunk_bytes=8192)
        results[wsize] = bed.nfs.stats.writes_sent
    assert results[32768] < results[8192]
    assert results[32768] == -(-1 * MB // 32768)


def test_closed_file_rejected():
    bed = TestBed(target="netapp", client="enhanced")

    def body():
        file = yield from bed.nfs.open_new("f")
        yield from bed.syscalls.write(file, 8192)
        yield from bed.syscalls.close(file)
        yield from bed.syscalls.write(file, 8192)

    task = bed.sim.spawn(body(), daemon=True)
    bed.sim.run_until(lambda: task.done)
    assert isinstance(task.error, SimulationError)
    assert "EBADF" in str(task.error)
