"""Tests for latency traces and their statistics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import LatencyTrace
from repro.units import NS_PER_MS, us


def make_trace(latencies, gap=us(10)):
    trace = LatencyTrace()
    t = 0
    for latency in latencies:
        trace.record(t, t + latency)
        t += latency + gap
    return trace


def test_basic_stats():
    trace = make_trace([us(100), us(200), us(300)])
    assert len(trace) == 3
    assert trace.mean_ns() == us(200)
    assert trace.min_ns() == us(100)
    assert trace.max_ns() == us(300)
    assert trace.latencies_ns == [us(100), us(200), us(300)]


def test_mean_with_outlier_exclusion():
    """The paper's convention: quote means excluding >1 ms calls."""
    trace = make_trace([us(100)] * 99 + [NS_PER_MS * 20])
    full = trace.mean_ns()
    healthy = trace.mean_ns(exclude_above_ns=NS_PER_MS)
    assert healthy == us(100)
    assert full > 2 * healthy


def test_skip_first_matches_paper_convention():
    trace = make_trace([us(900), us(100), us(100)])
    assert trace.mean_ns(skip_first=1) == us(100)
    assert trace.max_ns(skip_first=1) == us(100)


def test_spike_detection_and_period():
    pattern = ([us(100)] * 9 + [NS_PER_MS * 20]) * 3
    trace = make_trace(pattern)
    spikes = trace.spikes()
    assert spikes == [9, 19, 29]
    assert trace.spike_period() == 10
    assert trace.count_above(NS_PER_MS) == 3


def test_spike_period_needs_two_spikes():
    trace = make_trace([us(100)] * 5 + [NS_PER_MS * 20])
    assert trace.spike_period() is None


def test_growth_slope_detects_trend():
    growing = make_trace([us(100 + 2 * i) for i in range(100)])
    flat = make_trace([us(100)] * 100)
    assert growing.growth_slope_ns_per_call() > 1000
    assert abs(flat.growth_slope_ns_per_call()) < 1e-6


def test_jitter():
    steady = make_trace([us(100)] * 50)
    noisy = make_trace([us(100), us(300)] * 25)
    assert steady.jitter_ns() == 0
    assert noisy.jitter_ns() > us(90)


def test_series_us_format():
    trace = make_trace([us(150)])
    assert trace.series_us() == [(0, 150.0)]


def test_empty_trace_is_safe():
    trace = LatencyTrace()
    assert trace.mean_ns() == 0.0
    assert trace.max_ns() == 0
    assert trace.min_ns() == 0
    assert trace.jitter_ns() == 0.0
    assert trace.growth_slope_ns_per_call() == 0.0


@given(st.lists(st.integers(min_value=1, max_value=10**8), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_stats_invariants(latencies):
    trace = make_trace(latencies)
    assert trace.min_ns() <= trace.mean_ns() <= trace.max_ns()
    assert trace.count_above(0) == len(latencies)
    assert trace.count_above(10**9) == 0
    healthy = trace.mean_ns(exclude_above_ns=max(latencies))
    assert healthy <= trace.mean_ns() or len(set(latencies)) == 1
