"""Tests for the workload drivers."""

import pytest

from repro.bench import TestBed
from repro.bench.workloads import (
    random_writer,
    run_workload,
    sequential_writers,
    sweep_file_sizes,
    transaction_log,
)
from repro.errors import ConfigError
from repro.units import MB, PAGE_SIZE


def make_bed(target="netapp", client="enhanced"):
    return TestBed(target=target, client=client)


def test_sequential_writers_conserve_bytes():
    bed = make_bed()
    result = sequential_writers(bed, nwriters=3, bytes_each=1 * MB)
    assert result.bytes_written == 3 * MB
    assert sum(f.size for f in bed.server.files.values()) == 3 * MB
    assert len(result.traces) == 3
    assert all(len(t) == -(-MB // 8192) for t in result.traces)
    assert result.total_mbps > 0


def test_more_writers_do_not_scale_linearly():
    """Shared client: N writers share the lock, CPUs and the wire."""
    single = sequential_writers(make_bed(), 1, 2 * MB)
    quad = sequential_writers(make_bed(), 4, 2 * MB)
    assert quad.total_throughput < 4 * single.total_throughput
    assert quad.total_throughput > 0.5 * single.total_throughput


def test_writers_validation():
    with pytest.raises(ConfigError):
        sequential_writers(make_bed(), 0, MB)


def test_transaction_log_commit_latency():
    filer = transaction_log(make_bed("netapp"), transactions=50)
    linux = transaction_log(make_bed("linux"), transactions=50)
    # Each fsync on the Linux server pays COMMIT + disk.
    assert linux.traces[0].mean_ns() > filer.traces[0].mean_ns()
    assert len(filer.traces[0]) == 50


def test_random_writer_completes_and_is_deterministic():
    def one():
        bed = make_bed()
        result = random_writer(bed, file_bytes=4 * MB, writes=100, seed=7)
        return result.elapsed_ns, result.traces[0].latencies_ns

    a, b = one(), one()
    assert a == b
    assert a[0] > 0


def test_random_writer_rewrites_wait_for_inflight_pages():
    bed = make_bed()
    random_writer(bed, file_bytes=64 * PAGE_SIZE, writes=300, seed=3)
    # A small extent guarantees overlapping rewrites of in-flight pages.
    assert bed.nfs.stats.page_waits + bed.nfs.stats.coalesced_updates > 0


def test_sweep_file_sizes_returns_pairs():
    sizes = [MB, 2 * MB]
    results = sweep_file_sizes(lambda: make_bed(), sizes)
    assert [size for size, _r in results] == sizes
    assert all(r.write_throughput > 0 for _s, r in results)


def test_run_workload_surfaces_failures():
    bed = make_bed()

    def boom():
        yield bed.sim.timeout(10)
        raise RuntimeError("dead")

    with pytest.raises(RuntimeError):
        run_workload(bed, [("boom", boom())])
