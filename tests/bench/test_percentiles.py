"""Percentile helpers on LatencyTrace and the shared trace summary."""

import pytest

from repro.bench.latency import LatencyTrace
from repro.bench.report import trace_summary


def _trace(values):
    t = LatencyTrace()
    now = 0
    for v in values:
        t.record(now, now + v)
        now += v
    return t


def test_percentile_nearest_rank():
    t = _trace(range(1, 101))  # 1..100 ns
    assert t.percentile_ns(50) == 50
    assert t.percentile_ns(90) == 90
    assert t.percentile_ns(99) == 99
    assert t.percentile_ns(100) == 100
    assert t.percentile_ns(1) == 1


def test_percentile_single_value_and_empty():
    assert _trace([7]).percentile_ns(50) == 7
    assert _trace([]).percentile_ns(99) == 0


def test_percentile_rejects_out_of_range():
    t = _trace([1, 2, 3])
    with pytest.raises(ValueError):
        t.percentile_ns(0)
    with pytest.raises(ValueError):
        t.percentile_ns(101)
    with pytest.raises(ValueError):
        t.percentiles_ns((50, 0))


def test_percentiles_match_single_calls():
    t = _trace([5, 1, 9, 3, 7, 2, 8, 4, 6, 10])
    many = t.percentiles_ns((50, 90, 99))
    assert many == {
        50: t.percentile_ns(50),
        90: t.percentile_ns(90),
        99: t.percentile_ns(99),
    }


def test_percentile_skip_first_drops_warmup():
    t = _trace([1_000_000, 1, 1, 1])
    assert t.percentile_ns(100) == 1_000_000
    assert t.percentile_ns(100, skip_first=1) == 1


def test_trace_summary_quotes_percentiles():
    t = _trace([1_000] * 99 + [2_000_000])
    line = trace_summary(t)
    assert "n=100" in line
    assert "p50=1.0us" in line
    assert "p99=1.0us" in line
    assert "max=2.000ms" in line
    assert trace_summary(_trace([])) == "write(): no calls recorded"
