"""Configuration dataclasses and paper-derived calibration constants.

Every tunable of the simulated test bed lives here, so experiments can
describe themselves entirely in terms of configuration objects.  Default
values reproduce the paper's hardware (§3.1) and the costs it measured
(e.g. the 50 µs `sock_sendmsg` cost from §3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import ConfigError
from .units import MIB, PAGE_SIZE, gbit, mbit, mbps, us

__all__ = [
    "CpuCosts",
    "ClientHwConfig",
    "NetConfig",
    "MountConfig",
    "NfsClientConfig",
    "FilerConfig",
    "LinuxServerConfig",
    "LocalFsConfig",
    "scaled",
    "MAX_REQUEST_SOFT",
    "MAX_REQUEST_HARD",
]

#: Per-inode pending-request count that triggers a synchronous flush in
#: the stock 2.4.4 client (§3.3).
MAX_REQUEST_SOFT = 192
#: Per-mount pending-request count that puts writers to sleep (§3.3).
MAX_REQUEST_HARD = 256


@dataclass(frozen=True)
class CpuCosts:
    """CPU time charged for the client-side operations we model.

    All values are nanoseconds.  Calibrated so that the healthy write
    path costs ~55 µs per 8 KB call (two pages), reproducing the
    140+ MBps memory-write throughput of Table 1, and so that the
    network-layer send cost matches the 50 µs the paper measured.
    """

    #: write() entry/exit: user->kernel crossing, fd lookup, VFS dispatch.
    syscall_overhead: int = us(4)
    #: Copying one page of user data into the page cache (PC133 SDRAM).
    page_copy: int = us(18)
    #: Fixed cost of nfs_update_request bookkeeping per page (allocate
    #: request, link into lists) excluding the index search.
    request_setup: int = us(3)
    #: Visiting one node of the per-inode sorted request list
    #: (pointer-chasing cache misses on a 933 MHz P3).
    list_node_visit: int = 17
    #: Hash bucket computation for the hash-table index.
    hash_lookup: int = 300
    #: Visiting one entry within a hash bucket.
    hash_node_visit: int = 60
    #: Allocating and queueing an async RPC task (paid at submit time
    #: whether or not the send happens inline).
    rpc_task_setup: int = us(1)
    #: Building an RPC WRITE request (XDR encode, headers).
    rpc_build: int = us(8)
    #: sock_sendmsg() for one RPC: "the kernel spends 50 microseconds per
    #: write request in the network layer" (§3.5).
    sock_sendmsg: int = us(50)
    #: rpciod/softirq work to process one RPC reply (locate task by xid,
    #: state machine, wake completion).
    reply_processing: int = us(12)
    #: NFS write completion per page request (unlink, page free, wakeups).
    request_complete: int = us(4)
    #: Hardware interrupt + driver work per received Ethernet frame.
    rx_frame_irq: int = us(5)
    #: Per-page cost of the local ext2 write path (buffer heads, balance
    #: checks) on top of the copy.
    ext2_page_overhead: int = us(3)
    #: do_gettimeofday + kernel-log write: cost of the paper's latency
    #: instrumentation, charged only when instrumentation is enabled.
    instrumentation: int = us(2)


@dataclass(frozen=True)
class ClientHwConfig:
    """The dual-processor client machine of §3.1."""

    ncpus: int = 2
    ram_bytes: int = 256 * MIB
    #: RAM not available to the page cache (kernel, daemons, benchmark).
    reserved_bytes: int = 48 * MIB
    #: Fraction of available page-cache RAM that may be dirty before the
    #: VM throttles writers.
    dirty_limit_fraction: float = 0.75
    #: Dirty fraction at which background writeback kicks in.
    dirty_background_fraction: float = 0.30
    costs: CpuCosts = field(default_factory=CpuCosts)

    def __post_init__(self) -> None:
        if self.ncpus < 1:
            raise ConfigError("client needs at least one CPU")
        if self.reserved_bytes >= self.ram_bytes:
            raise ConfigError("reserved memory exceeds RAM")
        if not 0.0 < self.dirty_limit_fraction <= 1.0:
            raise ConfigError("dirty_limit_fraction must be in (0, 1]")

    @property
    def cache_bytes(self) -> int:
        """Page-cache capacity."""
        return self.ram_bytes - self.reserved_bytes

    @property
    def dirty_limit_bytes(self) -> int:
        return int(self.cache_bytes * self.dirty_limit_fraction)

    @property
    def dirty_background_bytes(self) -> int:
        return int(self.cache_bytes * self.dirty_background_fraction)


@dataclass(frozen=True)
class NetConfig:
    """One full-duplex Ethernet path client<->server through the switch."""

    bandwidth_bytes_per_sec: float = gbit(1)
    #: One-way propagation + switch store-and-forward latency.
    latency_ns: int = us(25)
    mtu: int = 1500
    #: Ethernet + IP + UDP header bytes per fragment on the wire.
    header_bytes: int = 46
    #: Per-fragment drop probability at the switch (fault injection;
    #: the test bed's dedicated switch drops nothing by default).
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.mtu <= self.header_bytes:
            raise ConfigError("MTU smaller than headers")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigError("loss_probability must be in [0, 1)")

    @staticmethod
    def gigabit(jumbo: bool = False) -> "NetConfig":
        """The test bed's switched gigabit network (§3.1)."""
        return NetConfig(mtu=9000 if jumbo else 1500)

    @staticmethod
    def fast_ethernet() -> "NetConfig":
        """The 100 Mbps comparison network of §3.5."""
        return NetConfig(bandwidth_bytes_per_sec=mbit(100), latency_ns=us(60))


@dataclass(frozen=True)
class MountConfig:
    """NFS mount options (§3.1: NFSv3, rsize=wsize=8192)."""

    wsize: int = 8192
    rsize: int = 8192
    nfs_version: int = 3
    #: UDP retransmit timeout (Linux default: 0.7 s, exponential backoff).
    timeo_ns: int = 700_000_000
    #: Retransmissions before a *major* timeout.  On a hard mount the
    #: client logs "server not responding" and restarts the backoff
    #: cycle; on a soft mount the request fails with EIO.
    retrans: int = 5
    #: ``soft`` mount option: give up after ``retrans`` retransmissions
    #: and surface EIO to the caller.  Default (hard) retries forever.
    soft: bool = False
    #: Use Linux's per-op-class RTT estimation (srtt/rttvar, as in
    #: ``net/sunrpc/timer.c``) for the minor-timeout interval instead of
    #: the fixed ``timeo`` base.  Backoff and the retrans cap still apply.
    adaptive_timeo: bool = False
    #: Delay before retrying a call answered NFS3ERR_JUKEBOX
    #: (Linux: NFS_JUKEBOX_RETRY_TIME = 5 s).
    jukebox_delay_ns: int = 5_000_000_000
    #: Pages of sequential read-ahead past a faulting read (2.4 ramped
    #: its window up to 128 KB; we model the steady window).
    readahead_pages: int = 32

    def __post_init__(self) -> None:
        if self.wsize % PAGE_SIZE:
            raise ConfigError("wsize must be a multiple of the page size")
        if self.nfs_version not in (2, 3):
            raise ConfigError("only NFSv2/v3 modelled")
        if self.retrans < 1:
            raise ConfigError("retrans must be >= 1")
        if self.timeo_ns <= 0:
            raise ConfigError("timeo_ns must be positive")
        if self.jukebox_delay_ns < 0:
            raise ConfigError("jukebox_delay_ns must be >= 0")


@dataclass(frozen=True)
class NfsClientConfig:
    """Behavioural switches distinguishing the paper's client variants."""

    #: Apply the MAX_REQUEST_SOFT / MAX_REQUEST_HARD flush thresholds
    #: (stock 2.4.4) instead of caching until fsync/close/memory pressure.
    eager_flush_limits: bool = True
    max_request_soft: int = MAX_REQUEST_SOFT
    max_request_hard: int = MAX_REQUEST_HARD
    #: Index outstanding requests with the paper's hash table instead of
    #: the stock per-inode sorted list.
    hashtable_index: bool = False
    hash_buckets: int = 256
    #: Release the Big Kernel Lock around sock_sendmsg() (the SMP patch).
    release_bkl_for_send: bool = False
    #: RPC transport slot table size (Linux: 16 concurrent requests).
    rpc_slots: int = 16
    #: §3.4's suggested further improvement: fold the incompatible-request
    #: search and nfs_update_request's search into one pass.
    single_search: bool = False
    #: Record per-call latency (the benchmark instrumentation).
    instrument_latency: bool = True

    def label(self) -> str:
        """Short human-readable variant tag."""
        bits = []
        bits.append("stock-flush" if self.eager_flush_limits else "lazy-flush")
        bits.append("hash" if self.hashtable_index else "list")
        bits.append("nolock" if self.release_bkl_for_send else "bkl")
        return "+".join(bits)


@dataclass(frozen=True)
class FilerConfig:
    """The prototype Network Appliance F85 (§3.1).

    Sustained network write throughput ~38 MBps; writes land in NVRAM and
    are acknowledged FILE_SYNC; WAFL checkpoints briefly pause request
    processing (§3.5's explanation for the low-jitter gap in Fig. 4).
    """

    #: Per-8KB-write service demand: 8192 B / 38 MBps ≈ 215 µs.  Expressed
    #: as an ingest rate so other write sizes scale.
    ingest_bytes_per_sec: float = mbps(38)
    nvram_bytes: int = 64 * MIB
    #: RAID-4 volume drain rate (eight data spindles, WAFL full-stripe
    #: writes).  Sustained throughput is ingest-bound, not drain-bound.
    raid_drain_bytes_per_sec: float = mbps(45)
    #: Duration of the request-processing pause at each checkpoint.
    checkpoint_pause_ns: int = 45_000_000
    #: A checkpoint starts when the active NVRAM half fills.
    name: str = "netapp-f85"


@dataclass(frozen=True)
class LinuxServerConfig:
    """The four-way Linux 2.4.4 knfsd server (§3.1).

    Network ingest ~26 MBps (gigabit NIC in a 32-bit/33 MHz PCI slot);
    UNSTABLE writes into the page cache; COMMIT forces the single SCSI
    disk.
    """

    ingest_bytes_per_sec: float = mbps(26)
    ram_bytes: int = 512 * MIB
    disk_bytes_per_sec: float = mbps(25)
    disk_seek_ns: int = 6_000_000
    #: knfsd write gathering: hold a synchronous write briefly so
    #: adjacent sync writes share one disk pass (2.4's answer to the
    #: NFSv2 sync-write problem).
    write_gathering: bool = False
    gather_ns: int = 5_000_000
    name: str = "linux-nfsd"


@dataclass(frozen=True)
class LocalFsConfig:
    """Client-local ext2 on the IBM Deskstar EIDE drive (§3.1).

    The ServerWorks south bridge limits the IDE controller to multiword
    DMA mode 2 (16.6 MB/s burst); sustained sequential writes land a bit
    lower.
    """

    disk_bytes_per_sec: float = mbps(15)
    disk_seek_ns: int = 9_000_000
    name: str = "local-ext2"


def scaled(hw: ClientHwConfig, factor: float) -> ClientHwConfig:
    """Scale client memory down by ``factor`` (see DESIGN.md §5).

    Per-operation costs and the flush thresholds stay untouched; only
    capacity shrinks, preserving every ratio-driven phenomenon while
    cutting simulated event counts.
    """
    if factor <= 0:
        raise ConfigError("scale factor must be positive")
    return replace(
        hw,
        ram_bytes=int(hw.ram_bytes / factor),
        reserved_bytes=int(hw.reserved_bytes / factor),
    )
