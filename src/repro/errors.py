"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """The simulation engine detected an inconsistency."""


class TaskFailed(SimulationError):
    """A simulated task raised an exception that nobody handled.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, task_name: str, message: str = "") -> None:
        detail = f"task {task_name!r} failed"
        if message:
            detail = f"{detail}: {message}"
        super().__init__(detail)
        self.task_name = task_name


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ProtocolError(ReproError):
    """An RPC or NFS protocol invariant was violated."""


class EioError(ReproError):
    """A simulated system call failed with EIO.

    Raised to the simulated ``write()``/``fsync()``/``close()`` caller
    when a *soft* NFS mount gives up on a request after ``retrans``
    major timeouts (hard mounts retry forever and never raise this).
    """

    errno = "EIO"


class JukeboxError(ReproError):
    """NFS3ERR_JUKEBOX: the server needs time to service the request.

    Raised by a server handler (fault injection); the RPC server answers
    with a non-cached JUKEBOX error and the client retries the call
    after a delay instead of failing it (RFC 1813 §3).
    """


class ResourceError(ReproError):
    """A hardware resource model was used inconsistently."""
