"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """The simulation engine detected an inconsistency."""


class TaskFailed(SimulationError):
    """A simulated task raised an exception that nobody handled.

    The original exception is available as ``__cause__``.
    """

    def __init__(self, task_name: str, message: str = "") -> None:
        detail = f"task {task_name!r} failed"
        if message:
            detail = f"{detail}: {message}"
        super().__init__(detail)
        self.task_name = task_name


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ProtocolError(ReproError):
    """An RPC or NFS protocol invariant was violated."""


class ResourceError(ReproError):
    """A hardware resource model was used inconsistently."""
