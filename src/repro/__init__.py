"""repro — a simulation reproduction of *Linux NFS Client Write
Performance* (Chuck Lever & Peter Honeyman, CITI TR 01-12 / USENIX 2002).

The package models the complete client/network/server system the paper
studies and reproduces its evaluation:

- :mod:`repro.sim` — deterministic discrete-event kernel
- :mod:`repro.nfsclient` — the Linux 2.4.4 NFS client write path and the
  paper's three patches (no threshold flushes, hash-table request index,
  BKL released around ``sock_sendmsg``)
- :mod:`repro.server` — NetApp F85 filer and Linux knfsd models
- :mod:`repro.bench` — the Bonnie-derived sequential write benchmark
- :mod:`repro.experiments` — Figures 1-7 and Table 1

Quickstart::

    from repro import TestBed
    bed = TestBed(target="netapp", client="stock")
    result = bed.run_sequential_write(40 * 1000 * 1000)
    print(result.summary())
    print("spikes:", len(result.trace.spikes()))
"""

from .bench import BenchmarkResult, LatencyTrace, TestBed, latency_histogram
from .config import (
    ClientHwConfig,
    CpuCosts,
    FilerConfig,
    LinuxServerConfig,
    LocalFsConfig,
    MountConfig,
    NetConfig,
    NfsClientConfig,
    scaled,
)
from .cache import ResultCache
from .experiments import ExecutionContext, experiment_ids, get_experiment
from .nfsclient import VARIANTS, variant_config
from .parallel import JobSpec, PointResult, SweepExecutor

__version__ = "1.0.0"

__all__ = [
    "TestBed",
    "BenchmarkResult",
    "LatencyTrace",
    "latency_histogram",
    "ClientHwConfig",
    "CpuCosts",
    "MountConfig",
    "NetConfig",
    "NfsClientConfig",
    "FilerConfig",
    "LinuxServerConfig",
    "LocalFsConfig",
    "scaled",
    "VARIANTS",
    "variant_config",
    "experiment_ids",
    "get_experiment",
    "ExecutionContext",
    "JobSpec",
    "PointResult",
    "SweepExecutor",
    "ResultCache",
    "__version__",
]
