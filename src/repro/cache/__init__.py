"""Content-addressed on-disk result cache.

Simulation points are pure functions of their configuration, so their
results can be memoised across processes and sessions.  A cache key is
the SHA-256 of

* the **canonical JSON** of the point's configuration (every dataclass
  field, recursively, with sorted keys), and
* a **code version token** — a hash over the source text of the whole
  ``repro`` package, so any code change invalidates every entry rather
  than serving stale numbers.

Entries are JSON files under ``<dir>/<key[:2]>/<key>.json`` (the git
object-store layout, keeping directories small).  Reads tolerate any
corruption by treating the entry as a miss; writes are atomic
(temp file + rename) so parallel writers never expose torn entries.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = [
    "ResultCache",
    "fingerprint",
    "code_version_token",
    "default_cache_dir",
]

#: Environment override for the cache location.
CACHE_DIR_ENV = "REPRO_NFS_CACHE_DIR"


def default_cache_dir() -> str:
    """``$REPRO_NFS_CACHE_DIR``, else ``~/.cache/repro-nfs``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "repro-nfs")


@functools.lru_cache(maxsize=1)
def code_version_token() -> str:
    """Hash of every ``.py`` source file in the ``repro`` package.

    Computed once per process; any edit to the simulator (or anything it
    imports from the package) changes the token and thereby every key.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def _jsonable(value: Any) -> Any:
    """Reduce configs to canonically serialisable structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot fingerprint {type(value).__name__!r}; "
        "job specs must be built from dataclasses and plain values"
    )


def fingerprint(spec: Any, version: Optional[str] = None) -> str:
    """Content address of a configuration object.

    ``version`` defaults to :func:`code_version_token`; tests pass an
    explicit token to decouple themselves from the working tree.
    """
    canonical = json.dumps(
        _jsonable(spec), sort_keys=True, separators=(",", ":")
    )
    token = code_version_token() if version is None else version
    return hashlib.sha256(f"{token}\0{canonical}".encode()).hexdigest()


class ResultCache:
    """On-disk JSON store addressed by :func:`fingerprint` keys."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = Path(directory or default_cache_dir())
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` (corrupt entries are misses)."""
        path = self._path(key)
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically store ``payload`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> str:
        return f"{self.hits} hits, {self.misses} misses, {self.stores} stores"
