"""Paper-vs-measured bookkeeping.

Experiments declare *shape criteria* — the qualitative facts a faithful
reproduction must show (who wins, direction of change, approximate
factor) — and report each as pass/fail next to the paper's number and
the measured one.  EXPERIMENTS.md is generated from these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Check", "Comparison"]


@dataclass
class Check:
    """One shape criterion."""

    name: str
    passed: bool
    paper: str
    measured: str
    note: str = ""

    def row(self) -> str:
        flag = "PASS" if self.passed else "FAIL"
        note = f"  ({self.note})" if self.note else ""
        return f"[{flag}] {self.name}: paper={self.paper} measured={self.measured}{note}"


@dataclass
class Comparison:
    """All checks for one experiment."""

    experiment: str
    checks: List[Check] = field(default_factory=list)

    def add(
        self,
        name: str,
        passed: bool,
        paper: str,
        measured: str,
        note: str = "",
    ) -> None:
        self.checks.append(Check(name, bool(passed), paper, measured, note))

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failed(self) -> List[Check]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        lines = [f"== {self.experiment} =="]
        lines.extend(check.row() for check in self.checks)
        verdict = "ALL SHAPE CRITERIA MET" if self.all_passed else "SOME CRITERIA FAILED"
        lines.append(f"-- {verdict} ({sum(c.passed for c in self.checks)}/{len(self.checks)})")
        return "\n".join(lines)
