"""Analysis utilities: statistics and paper-vs-measured comparisons."""

from .compare import Check, Comparison
from .stats import (
    jain_index,
    linear_slope,
    mean,
    percentile,
    ratio,
    stddev,
    windowed_jitter,
)

__all__ = [
    "Check",
    "Comparison",
    "mean",
    "stddev",
    "percentile",
    "linear_slope",
    "windowed_jitter",
    "ratio",
    "jain_index",
]
