"""Analysis utilities: statistics and paper-vs-measured comparisons."""

from .compare import Check, Comparison
from .stats import (
    linear_slope,
    mean,
    percentile,
    ratio,
    stddev,
    windowed_jitter,
)

__all__ = [
    "Check",
    "Comparison",
    "mean",
    "stddev",
    "percentile",
    "linear_slope",
    "windowed_jitter",
    "ratio",
]
