"""Statistics helpers used by the experiments.

These encode the paper's own reporting conventions: means that exclude
millisecond outliers (§3.3), spike counting, first-call exclusion
(§3.5), and trend detection for the growing-latency diagnosis (§3.4).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "mean",
    "stddev",
    "percentile",
    "linear_slope",
    "windowed_jitter",
    "ratio",
    "jain_index",
]


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return (sum((v - m) ** 2 for v in values) / (n - 1)) ** 0.5


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not values:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile {p} out of range")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * p / 100
    low = int(rank)
    frac = rank - low
    if low + 1 >= len(ordered):
        return ordered[-1]
    lo_v, hi_v = ordered[low], ordered[low + 1]
    if lo_v == hi_v:
        return lo_v
    # Clamp: rounding (e.g. denormal products snapping to 0) must never
    # push the interpolant outside its bracketing interval.
    return min(max(lo_v * (1 - frac) + hi_v * frac, lo_v), hi_v)


def linear_slope(ys: Sequence[float]) -> float:
    """Least-squares slope of ys against their indices."""
    n = len(ys)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2
    mean_y = mean(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in enumerate(ys))
    var = sum((x - mean_x) ** 2 for x in range(n))
    return cov / var


def windowed_jitter(values: Sequence[float], window: int) -> List[Tuple[int, float]]:
    """(window start, stddev) per non-overlapping window.

    Used to find Fig. 4's low-jitter gap during the filer checkpoint.
    """
    if window < 2:
        raise ValueError("window must cover at least 2 samples")
    out = []
    for start in range(0, len(values) - window + 1, window):
        out.append((start, stddev(values[start : start + window])))
    return out


def ratio(a: float, b: float) -> float:
    """a/b, 0-safe."""
    if b == 0:
        return float("inf") if a else 0.0
    return a / b


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²), in (0, 1].

    1.0 means every client got an equal share; 1/n means one client got
    everything.  The multi-client fleet reports use it to audit the
    emergent fairness of the servers' FIFO ingest stations.
    """
    n = len(values)
    if n == 0:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (n * square_sum)
