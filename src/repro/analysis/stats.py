"""Statistics helpers used by the experiments.

These encode the paper's own reporting conventions: means that exclude
millisecond outliers (§3.3), spike counting, first-call exclusion
(§3.5), and trend detection for the growing-latency diagnosis (§3.4).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "mean",
    "stddev",
    "percentile",
    "percentile_of_sorted",
    "knee_point",
    "linear_slope",
    "windowed_jitter",
    "ratio",
    "jain_index",
]


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return (sum((v - m) ** 2 for v in values) / (n - 1)) ** 0.5


def percentile_of_sorted(
    ordered: Sequence[float], p: float, method: str = "linear"
) -> float:
    """Percentile of an already-sorted sequence.

    The single interpolation implementation shared by
    :func:`percentile`, :class:`~repro.bench.latency.LatencyTrace`
    and the windowed histograms in :mod:`repro.obs.timeseries`:

    - ``"linear"``: NIST linear interpolation between closest ranks,
      ``p`` in [0, 100], clamped to the bracketing interval so float
      rounding can never push the interpolant outside it.
    - ``"nearest-rank"``: ``ceil(p/100 * n)``-th order statistic,
      ``p`` in (0, 100] — the convention the latency traces use (and
      which the pinned fleet fingerprints depend on).
    """
    n = len(ordered)
    if method == "nearest-rank":
        if not 0 < p <= 100:
            raise ValueError(f"percentile out of range: {p!r}")
        if n == 0:
            return 0
        rank = math.ceil(p / 100 * n)
        return ordered[rank - 1]
    if method != "linear":
        raise ValueError(f"unknown percentile method: {method!r}")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile {p} out of range")
    if n == 0:
        return 0.0
    if n == 1:
        return ordered[0]
    rank = (n - 1) * p / 100
    low = int(rank)
    frac = rank - low
    if low + 1 >= n:
        return ordered[-1]
    lo_v, hi_v = ordered[low], ordered[low + 1]
    if lo_v == hi_v:
        return lo_v
    # Clamp: rounding (e.g. denormal products snapping to 0) must never
    # push the interpolant outside its bracketing interval.
    return min(max(lo_v * (1 - frac) + hi_v * frac, lo_v), hi_v)


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile, p in [0, 100]."""
    if not values:
        return 0.0
    return percentile_of_sorted(sorted(values), p, method="linear")


def knee_point(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[int]:
    """Index of the knee of a monotone-ish curve, or None.

    Uses maximum discrete curvature on the normalised curve: both axes
    are scaled to [0, 1] (so a knee in latency-vs-clients does not
    depend on units), then the interior point with the largest turning
    angle between its adjacent chords wins.  Needs at least 3 points
    and a non-degenerate span on both axes.  The SLO reports use this
    to locate the latency-vs-load knee; the ``scale`` experiment uses
    it on the latency-vs-clients curve.
    """
    n = len(xs)
    if n != len(ys):
        raise ValueError("knee_point needs equal-length xs and ys")
    if n < 3:
        return None
    x_span = max(xs) - min(xs)
    y_span = max(ys) - min(ys)
    if x_span == 0 or y_span == 0:
        return None
    x_min, y_min = min(xs), min(ys)
    nx = [(x - x_min) / x_span for x in xs]
    ny = [(y - y_min) / y_span for y in ys]
    best_i: Optional[int] = None
    best_curv = 0.0
    for i in range(1, n - 1):
        ax, ay = nx[i] - nx[i - 1], ny[i] - ny[i - 1]
        bx, by = nx[i + 1] - nx[i], ny[i + 1] - ny[i]
        cross = ax * by - ay * bx
        la = math.hypot(ax, ay)
        lb = math.hypot(bx, by)
        if la == 0 or lb == 0:
            continue
        # Turning-angle curvature: |sin(theta)| weighted against the
        # chord lengths, so sharp bends on short segments dominate.
        curv = abs(cross) / (la * lb * (la + lb))
        if curv > best_curv:
            best_curv = curv
            best_i = i
    return best_i


def linear_slope(ys: Sequence[float]) -> float:
    """Least-squares slope of ys against their indices."""
    n = len(ys)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2
    mean_y = mean(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in enumerate(ys))
    var = sum((x - mean_x) ** 2 for x in range(n))
    return cov / var


def windowed_jitter(values: Sequence[float], window: int) -> List[Tuple[int, float]]:
    """(window start, stddev) per non-overlapping window.

    Used to find Fig. 4's low-jitter gap during the filer checkpoint.
    """
    if window < 2:
        raise ValueError("window must cover at least 2 samples")
    out = []
    for start in range(0, len(values) - window + 1, window):
        out.append((start, stddev(values[start : start + window])))
    return out


def ratio(a: float, b: float) -> float:
    """a/b, 0-safe."""
    if b == 0:
        return float("inf") if a else 0.0
    return a / b


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²), in (0, 1].

    1.0 means every client got an equal share; 1/n means one client got
    everything.  The multi-client fleet reports use it to audit the
    emergent fairness of the servers' FIFO ingest stations.
    """
    n = len(values)
    if n == 0:
        return 1.0
    square_sum = sum(v * v for v in values)
    if square_sum == 0:
        return 1.0
    total = sum(values)
    return (total * total) / (n * square_sum)
