"""The finding record shared by every runtime sanitizer.

Static-analysis findings (:class:`~repro.analysis.sanitize.lint.LintFinding`)
carry file/line coordinates; runtime findings carry a category and the
simulated time at which the property was violated.  Categories group
findings into the three scenario-level invariants the ``--sanitize``
flag reports (``sanitize-locks``, ``sanitize-races``,
``sanitize-invariants``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

__all__ = ["RuntimeFinding", "group_findings", "CATEGORY_GROUPS"]

#: category -> scenario-invariant group.
CATEGORY_GROUPS: Dict[str, str] = {
    "lock-order": "locks",
    "deadlock": "locks",
    "lock-fifo": "locks",
    "lock-depth": "locks",
    "race": "races",
    "accounting": "invariants",
    "stable-bytes": "invariants",
    "waitq-fifo": "invariants",
}


@dataclass
class RuntimeFinding:
    """One violated property, with a human-readable witness."""

    category: str
    message: str
    time_ns: int = 0

    def __str__(self) -> str:
        return f"[{self.category}] t={self.time_ns}ns: {self.message}"


def group_findings(findings: Iterable[RuntimeFinding]) -> Dict[str, List[RuntimeFinding]]:
    """Bucket findings into the scenario-invariant groups.

    Every group is present in the result (possibly empty), so callers
    can emit a fixed set of pass/fail rows.
    """
    groups: Dict[str, List[RuntimeFinding]] = {
        "locks": [],
        "races": [],
        "invariants": [],
    }
    for finding in findings:
        groups[CATEGORY_GROUPS.get(finding.category, "invariants")].append(finding)
    return groups
