"""AST-based determinism linter for the simulator source tree.

The whole reproduction strategy rests on bit-for-bit deterministic
replay: a stray ``time.time()``, an unseeded ``random`` draw, or an
iteration order that depends on object identity silently breaks the
fingerprint contract, and the failure only surfaces far downstream as a
cache or replay mismatch.  This linter walks the source with
:mod:`ast` (stdlib only — no third-party dependencies) and flags the
hazard classes we have actually been bitten by:

=======  ====================  ========================================
code     name                  hazard
=======  ====================  ========================================
DET101   unseeded-rng          process-global ``random`` draws /
                               ``random.Random()`` without a seed
DET102   wall-clock            ``time.time()``/``datetime.now()`` etc.
                               leaking host time into the simulation
DET103   unordered-iteration   iterating a ``set`` expression, whose
                               order varies with PYTHONHASHSEED
DET104   id-in-key             ``id()`` inside sort keys or ``hash()``
                               inputs (address-dependent ordering)
DET105   stray-random-import   ``import random`` outside ``sim.rng``
                               (all randomness must flow through
                               named :class:`RngStreams` streams)
MUT201   mutable-default       mutable default argument values
DEAD301  unreachable-code      statements after ``return``/``raise``/
                               ``break``/``continue`` (the class of bug
                               behind the dead ``yield`` once shipped
                               in ``rpc.xprt._handle_reply``)
SUP401   unused-suppression    a ``noqa`` that suppresses nothing
                               (reported in ``--strict`` only)
SYN001   syntax-error          file does not parse
=======  ====================  ========================================

Suppressions use ``# noqa: CODE`` (or ``# noqa: CODE1,CODE2``) on the
flagged line; a bare ``# noqa`` silences every rule on the line.  Add a
justification after the codes — stale suppressions are themselves
flagged under ``--strict``.

The recognised *generator-marker* idiom — a bare ``yield`` directly
after ``return``, which turns a plain function into a generator — is
exempt from DEAD301: it is load-bearing throughout the lock layer.
"""

from __future__ import annotations

import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

__all__ = [
    "Rule",
    "RULES",
    "LintFinding",
    "lint_source",
    "lint_paths",
    "run_lint",
    "fix_suppressions",
    "default_lint_root",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    severity: str
    summary: str


_RULE_LIST = [
    Rule(
        "DET101",
        "unseeded-rng",
        SEVERITY_ERROR,
        "process-global or unseeded RNG breaks deterministic replay; "
        "draw from a named repro.sim.RngStreams stream instead",
    ),
    Rule(
        "DET102",
        "wall-clock",
        SEVERITY_ERROR,
        "host wall-clock reads leak nondeterminism into the simulation; "
        "use the simulator clock (sim.now) for model time",
    ),
    Rule(
        "DET103",
        "unordered-iteration",
        SEVERITY_ERROR,
        "iterating a set yields PYTHONHASHSEED-dependent order; sort it "
        "or keep an insertion-ordered structure",
    ),
    Rule(
        "DET104",
        "id-in-key",
        SEVERITY_ERROR,
        "id() in a sort key or hash input depends on allocation addresses "
        "and varies run to run",
    ),
    Rule(
        "DET105",
        "stray-random-import",
        SEVERITY_WARNING,
        "import random outside repro.sim.rng; all randomness must flow "
        "through named RngStreams streams",
    ),
    Rule(
        "MUT201",
        "mutable-default",
        SEVERITY_ERROR,
        "mutable default argument is shared across calls",
    ),
    Rule(
        "DEAD301",
        "unreachable-code",
        SEVERITY_ERROR,
        "statement is unreachable after an unconditional return/raise/"
        "break/continue",
    ),
    Rule(
        "SUP401",
        "unused-suppression",
        SEVERITY_WARNING,
        "noqa comment suppresses no finding on this line; remove it",
    ),
    Rule("SYN001", "syntax-error", SEVERITY_ERROR, "file does not parse"),
]

RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULE_LIST}


@dataclass(frozen=True)
class LintFinding:
    """One lint hit, pointing at a source coordinate."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


# -- detection ---------------------------------------------------------------

#: random-module functions that draw from the process-global RNG.
_GLOBAL_RNG_FNS = frozenset(
    [
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    ]
)

#: time-module wall-clock readers (the sim clock is ``sim.now``).
_WALL_CLOCK_FNS = frozenset(
    [
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "clock",
    ]
)

_DATETIME_FNS = frozenset(["now", "utcnow", "today"])
_DATETIME_BASES = frozenset(["datetime", "date"])

#: constructors of mutable containers (bad default arguments).
_MUTABLE_CTORS = frozenset(
    ["list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter", "bytearray"]
)

#: order-sensitive consumers of an iterable's raw order.
_ORDER_SENSITIVE_FNS = frozenset(["list", "tuple", "enumerate", "reversed"])

#: consumers for which iteration order is normalised (sorted) or
#: irrelevant (reductions, set constructors): a set expression fed to
#: one of these — directly or through a comprehension — is fine.
_ORDER_INSENSITIVE_FNS = frozenset(
    ["sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"]
)

_COMPREHENSION_NODES = (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)

_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_generator_marker(stmt: ast.stmt) -> bool:
    """The deliberate ``return`` + bare ``yield`` generator idiom."""
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Yield)
        and stmt.value.value is None
    )


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _MUTABLE_CTORS
        if isinstance(func, ast.Attribute):
            return func.attr in _MUTABLE_CTORS
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: List[LintFinding] = []
        #: set-expression iter nodes exempt from DET103 because an
        #: order-insensitive consumer normalises/ignores their order.
        self._order_exempt: Set[int] = set()

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        rule = RULES[code]
        self.findings.append(
            LintFinding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
                severity=rule.severity,
            )
        )

    # -- DET101 / DET102 / DET104 and order-sensitive calls -----------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base == "random":
                if attr in _GLOBAL_RNG_FNS:
                    self._flag(
                        node,
                        "DET101",
                        f"random.{attr}() draws from the process-global RNG; "
                        "use a named RngStreams stream",
                    )
                elif attr == "Random" and not node.args and not node.keywords:
                    self._flag(
                        node,
                        "DET101",
                        "random.Random() without a seed is nondeterministic; "
                        "pass an explicit seed or use RngStreams",
                    )
            if base == "time" and attr in _WALL_CLOCK_FNS:
                self._flag(
                    node,
                    "DET102",
                    f"time.{attr}() reads the host clock; simulated time is "
                    "sim.now",
                )
        if isinstance(func, ast.Attribute) and func.attr in _DATETIME_FNS:
            value = func.value
            base_name = None
            if isinstance(value, ast.Name):
                base_name = value.id
            elif isinstance(value, ast.Attribute):
                base_name = value.attr
            if base_name in _DATETIME_BASES:
                self._flag(
                    node,
                    "DET102",
                    f"{base_name}.{func.attr}() reads the host clock; "
                    "simulated time is sim.now",
                )
        if (
            isinstance(func, ast.Name)
            and func.id == "Random"
            and not node.args
            and not node.keywords
        ):
            self._flag(
                node,
                "DET101",
                "Random() without a seed is nondeterministic; pass an "
                "explicit seed or use RngStreams",
            )

        # DET104: id() inside sort keys.
        is_sort = (isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")) or (
            isinstance(func, ast.Attribute) and func.attr == "sort"
        )
        if is_sort:
            for keyword in node.keywords:
                if keyword.arg == "key":
                    self._flag_id_calls(keyword.value, "a sort key")
        # DET104: id() inside hash() inputs.
        if isinstance(func, ast.Name) and func.id == "hash":
            for arg in node.args:
                self._flag_id_calls(arg, "a hash() input")

        # DET103: order-sensitive consumption of a set expression.
        if (
            isinstance(func, ast.Name)
            and func.id in _ORDER_SENSITIVE_FNS
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self._flag(
                node,
                "DET103",
                f"{func.id}() over a set captures hash order; sort first",
            )
        # Order-insensitive consumers (sorted/len/sum/...) normalise or
        # ignore iteration order: exempt set-expression iters of any
        # comprehension passed directly as an argument, so
        # ``sorted(x for x in {...})`` does not fire.
        if isinstance(func, ast.Name) and func.id in _ORDER_INSENSITIVE_FNS:
            for arg in node.args:
                if isinstance(arg, _COMPREHENSION_NODES):
                    for gen in arg.generators:
                        if _is_set_expr(gen.iter):
                            self._order_exempt.add(id(gen.iter))
        self.generic_visit(node)

    def _flag_id_calls(self, node: ast.AST, where: str) -> None:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                self._flag(
                    sub,
                    "DET104",
                    f"id() used in {where} depends on allocation addresses",
                )

    # -- DET103: direct iteration over set expressions ----------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag(
                node.iter,
                "DET103",
                "for-loop over a set iterates in hash order; sort first",
            )
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if _is_set_expr(node.iter) and id(node.iter) not in self._order_exempt:
            self._flag(
                node.iter,
                "DET103",
                "comprehension over a set iterates in hash order; sort first",
            )
        self.generic_visit(node)

    # -- DET105: stray random imports ---------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._flag(
                    node,
                    "DET105",
                    "import random outside repro.sim.rng; randomness must "
                    "flow through named RngStreams streams",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._flag(
                node,
                "DET105",
                "from random import ... outside repro.sim.rng; randomness "
                "must flow through named RngStreams streams",
            )
        self.generic_visit(node)

    # -- MUT201: mutable defaults -------------------------------------------

    def _check_defaults(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            if _is_mutable_default(default):
                self._flag(
                    default,
                    "MUT201",
                    "mutable default argument is created once and shared "
                    "across calls; default to None and build inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)


def _check_unreachable(tree: ast.AST, visitor: _Visitor) -> None:
    """DEAD301: statements after an unconditional terminator."""
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            stmts = getattr(node, field, None)
            if not isinstance(stmts, list):
                continue
            terminated_at: Optional[int] = None
            for i, stmt in enumerate(stmts):
                if terminated_at is not None:
                    if _is_generator_marker(stmt):
                        continue  # the sanctioned return-then-yield idiom
                    terminator = stmts[terminated_at]
                    visitor._flag(
                        stmt,
                        "DEAD301",
                        f"unreachable: the "
                        f"{type(terminator).__name__.lower()} on line "
                        f"{terminator.lineno} always exits this block first",
                    )
                    break
                if isinstance(stmt, _TERMINATORS):
                    terminated_at = i


# -- suppressions ------------------------------------------------------------

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]{2,4}\d{3}(?:\s*,\s*[A-Z]{2,4}\d{3})*))?",
)


def _collect_suppressions(source: str) -> Dict[int, List[object]]:
    """Map line number -> [codes_or_None_for_all, used_flag]."""
    suppressions: Dict[int, List[object]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            raw = match.group("codes")
            codes = (
                frozenset(code.strip() for code in raw.split(",")) if raw else None
            )
            suppressions[token.start[0]] = [codes, False]
    except tokenize.TokenError:
        pass  # unterminated constructs: ast.parse reports SYN001 anyway
    return suppressions


# -- engine ------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    strict: bool = False,
    select: Optional[Iterable[str]] = None,
) -> List[LintFinding]:
    """Lint one source blob; returns findings after suppression."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            LintFinding(
                path=path,
                line=err.lineno or 1,
                col=err.offset or 0,
                code="SYN001",
                message=f"syntax error: {err.msg}",
                severity=SEVERITY_ERROR,
            )
        ]
    visitor = _Visitor(path)
    visitor.visit(tree)
    _check_unreachable(tree, visitor)
    suppressions = _collect_suppressions(source)
    kept: List[LintFinding] = []
    for finding in visitor.findings:
        entry = suppressions.get(finding.line)
        if entry is not None and (entry[0] is None or finding.code in entry[0]):
            entry[1] = True
            continue
        kept.append(finding)
    if strict:
        for line in sorted(suppressions):
            codes, used = suppressions[line]
            if used or codes is None:
                # Bare ``# noqa`` and foreign codes (e.g. flake8's
                # BLE001) may serve other tools; only our own stale
                # codes are worth reporting.
                continue
            ours = codes & RULES.keys()
            if ours:
                kept.append(
                    LintFinding(
                        path=path,
                        line=line,
                        col=0,
                        code="SUP401",
                        message=f"noqa ({','.join(sorted(ours))}) suppresses "
                        "no finding on this line; remove the stale "
                        "suppression",
                        severity=SEVERITY_WARNING,
                    )
                )
    if select is not None:
        wanted = frozenset(select)
        kept = [f for f in kept if f.code in wanted]
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept


def _iter_py_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        else:
            files.append(path)
    return files


def default_lint_root() -> Path:
    """The installed ``repro`` package directory — the default target."""
    return Path(__file__).resolve().parents[2]


def lint_paths(
    paths: Optional[Sequence[Union[str, Path]]] = None,
    strict: bool = False,
    select: Optional[Iterable[str]] = None,
) -> List[LintFinding]:
    """Lint files/directories (default: the repro package source)."""
    if not paths:
        paths = [default_lint_root()]
    findings: List[LintFinding] = []
    for path in _iter_py_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as err:
            findings.append(
                LintFinding(
                    path=str(path),
                    line=1,
                    col=0,
                    code="SYN001",
                    message=f"unreadable: {err}",
                    severity=SEVERITY_ERROR,
                )
            )
            continue
        findings.extend(
            lint_source(source, path=str(path), strict=strict, select=select)
        )
    return findings


def run_lint(
    paths: Optional[Sequence[str]] = None,
    strict: bool = False,
    select: Optional[str] = None,
    fmt: str = "text",
    out=None,
) -> int:
    """CLI driver for ``repro-nfs lint``.

    Exit status: 0 clean, 1 findings (errors always fail; warnings fail
    only under ``--strict``).
    """
    if out is None:
        out = sys.stdout
    selected = None
    if select:
        selected = [code.strip() for code in select.split(",") if code.strip()]
        unknown = [code for code in selected if code not in RULES]
        if unknown:
            out.write(f"unknown rule code(s): {', '.join(unknown)}\n")
            out.write(f"known codes: {', '.join(sorted(RULES))}\n")
            return 2
    findings = lint_paths(paths, strict=strict, select=selected)
    errors = [f for f in findings if f.severity == SEVERITY_ERROR]
    warnings = [f for f in findings if f.severity == SEVERITY_WARNING]
    if fmt == "json":
        out.write(
            json.dumps(
                [finding.__dict__ for finding in findings],
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
    else:
        cwd = Path.cwd()
        for finding in findings:
            path = Path(finding.path)
            try:
                shown = path.relative_to(cwd)
            except ValueError:
                shown = path
            out.write(
                f"{shown}:{finding.line}:{finding.col}: "
                f"{finding.code} {finding.message}\n"
            )
        out.write(
            f"{len(findings)} finding(s): {len(errors)} error(s), "
            f"{len(warnings)} warning(s)\n"
        )
    failed = bool(errors) or (strict and bool(warnings))
    return 1 if failed else 0


def fix_suppressions(
    paths: Optional[Sequence[str]] = None,
    write: bool = False,
    out=None,
) -> int:
    """Remove stale ``# noqa`` comments that SUP401 flags.

    Dry-run by default: prints each stale suppression that would be
    removed and exits 1 if any exist (so CI can gate). With
    ``write=True`` the files are rewritten in place and the exit is 0.
    Only comments whose *every* own-rule code is stale are touched —
    a noqa that still suppresses something never fires SUP401.
    """
    if out is None:
        out = sys.stdout
    if not paths:
        paths = [default_lint_root()]
    removed = 0
    changed_files = 0
    for path in _iter_py_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as err:
            out.write(f"{path}: unreadable: {err}\n")
            return 2
        stale = [
            f
            for f in lint_source(source, path=str(path), strict=True)
            if f.code == "SUP401"
        ]
        if not stale:
            continue
        lines = source.splitlines(keepends=True)
        stale_lines = {f.line for f in stale}
        for lineno in sorted(stale_lines):
            raw = lines[lineno - 1]
            match = _NOQA_RE.search(raw)
            if match is None:
                continue
            newline = "\n" if raw.endswith("\n") else ""
            fixed = raw[: match.start()].rstrip()
            lines[lineno - 1] = fixed + newline
            removed += 1
            verb = "removed" if write else "would remove"
            out.write(
                f"{path}:{lineno}: {verb} stale "
                f"`{raw[match.start():].strip()}`\n"
            )
        if write:
            path.write_text("".join(lines), encoding="utf-8")
            changed_files += 1
    if write:
        out.write(
            f"removed {removed} stale suppression(s) in "
            f"{changed_files} file(s)\n"
        )
        return 0
    out.write(
        f"{removed} stale suppression(s) found"
        + ("; rerun with --write to apply\n" if removed else "\n")
    )
    return 1 if removed else 0
