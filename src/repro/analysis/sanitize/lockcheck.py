"""Runtime lock-order / deadlock sanitizer for :class:`MonitoredLock`.

Attach an instance as ``lock.sanitizer`` (TestBeds do this through
:func:`repro.analysis.sanitize.runtime.sanitized`) and it observes every
acquisition event the lock emits — free takes, reentrant entries,
blocking waits, handoffs, releases, and the BKL's ``break_all`` /
``reacquire`` depth gymnastics.  It is a pure observer: it never
schedules events, draws randomness, or touches lock state, so a
sanitized run keeps the exact fingerprint of an unsanitized one.

Four properties are checked:

* **lock-order**: a per-task held-lock acquisition graph; taking B while
  holding A records the edge A→B, and a later A-while-holding-B records
  the inversion with both witness traces,
* **deadlock**: a waits-for graph walked at every block; a cycle
  produces a readable witness chain ("task w holds 'a', waits for 'b'
  held by task x, ...") the moment the simulation wedges,
* **lock-fifo**: handoffs must go to the longest-blocked waiter,
* **lock-depth**: a shadow hold-depth per (task, lock) cross-checked at
  every reenter/exit/release and across ``break_all``/``reacquire``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .report import RuntimeFinding

__all__ = ["LockOrderSanitizer"]


def _task_name(task) -> str:
    return getattr(task, "name", None) or repr(task)


class LockOrderSanitizer:
    """Observer for the lock hooks in :mod:`repro.sim.sync`."""

    def __init__(self, sim, max_findings: int = 100):
        self._sim = sim
        self.max_findings = max_findings
        self.findings: List[RuntimeFinding] = []
        #: per-task stack of held locks, in acquisition order.
        self._held: Dict[object, List[object]] = {}
        #: shadow hold depth per task, per lock.
        self._shadow: Dict[object, Dict[object, int]] = {}
        #: task -> (lock, label) it is currently blocked on.
        self._blocked: Dict[object, Tuple[object, str]] = {}
        #: mirror of each lock's FIFO waiter queue.
        self._waiters: Dict[object, List[object]] = {}
        #: first witness per ordered (earlier, later) lock-name pair.
        self._order: Dict[Tuple[str, str], str] = {}
        #: name pairs already reported as inverted (both orientations).
        self._reported: Dict[Tuple[str, str], bool] = {}
        #: events observed, for cheap "did it run" assertions in tests.
        self.events = 0

    # -- findings -----------------------------------------------------------

    def _report(self, category: str, message: str) -> None:
        if len(self.findings) < self.max_findings:
            self.findings.append(
                RuntimeFinding(category, message, time_ns=self._sim.now)
            )

    # -- hook points (called by MonitoredLock / BigKernelLock) ---------------

    def on_acquire(self, lock, task, label: str) -> None:
        """Task took the free lock immediately."""
        self.events += 1
        self._record_order(lock, task, label)
        self._grant(lock, task)

    def on_block(self, lock, task, label: str) -> None:
        """Task is about to wait for a held lock."""
        self.events += 1
        self._record_order(lock, task, label)
        self._blocked[task] = (lock, label)
        self._waiters.setdefault(lock, []).append(task)
        self._check_deadlock(lock, task, label)

    def on_handoff(self, lock, task) -> None:
        """Ownership transferred to a blocked waiter inside release()."""
        self.events += 1
        queue = self._waiters.get(lock)
        if queue:
            expected = queue[0]
            if expected is not task:
                self._report(
                    "lock-fifo",
                    f"non-FIFO handoff on '{lock.name}': granted to task "
                    f"'{_task_name(task)}' while '{_task_name(expected)}' "
                    "blocked earlier",
                )
            try:
                queue.remove(task)
            except ValueError:
                pass
        self._blocked.pop(task, None)
        self._grant(lock, task)

    def on_reenter(self, lock, task) -> None:
        """Reentrant acquisition (depth bump) by the owner."""
        self.events += 1
        depth = self._bump_shadow(lock, task, +1)
        if depth != lock.depth:
            self._report(
                "lock-depth",
                f"'{lock.name}' reenter by task '{_task_name(task)}': "
                f"shadow depth {depth} != lock depth {lock.depth}",
            )

    def on_exit(self, lock, task) -> None:
        """Non-final release (depth decrement) by the owner."""
        self.events += 1
        depth = self._bump_shadow(lock, task, -1)
        if depth != lock.depth:
            self._report(
                "lock-depth",
                f"'{lock.name}' exit by task '{_task_name(task)}': "
                f"shadow depth {depth} != lock depth {lock.depth}",
            )

    def on_release(self, lock, task) -> None:
        """Final release: the owner dropped the lock entirely."""
        self.events += 1
        shadow = self._shadow.get(task, {})
        depth = shadow.pop(lock, None)
        if depth is not None and depth != 1:
            self._report(
                "lock-depth",
                f"'{lock.name}' released by task '{_task_name(task)}' at "
                f"shadow depth {depth} (expected 1); a reenter/exit or "
                "break_all went unaccounted",
            )
        held = self._held.get(task)
        if held is not None and lock in held:
            held.remove(lock)

    def on_break_all(self, lock, task, depth: int) -> None:
        """``break_all``: the owner is dropping the lock from ``depth``."""
        self.events += 1
        shadow = self._shadow.get(task, {})
        recorded = shadow.get(lock)
        if recorded is not None and recorded != depth:
            self._report(
                "lock-depth",
                f"'{lock.name}' break_all from depth {depth} but shadow "
                f"depth is {recorded} for task '{_task_name(task)}'",
            )
        if lock in shadow:
            shadow[lock] = 1  # release() will pop it at the expected depth

    def on_depth_restored(self, lock, task, depth: int) -> None:
        """``reacquire`` restored the remembered hold depth."""
        self.events += 1
        if lock.owner is not task:
            self._report(
                "lock-depth",
                f"'{lock.name}' depth restored to {depth} by task "
                f"'{_task_name(task)}' which does not own the lock",
            )
            return
        self._shadow.setdefault(task, {})[lock] = depth

    # -- bookkeeping ---------------------------------------------------------

    def _grant(self, lock, task) -> None:
        self._shadow.setdefault(task, {})[lock] = 1
        held = self._held.setdefault(task, [])
        if lock not in held:
            held.append(lock)

    def _bump_shadow(self, lock, task, delta: int) -> int:
        shadow = self._shadow.setdefault(task, {})
        depth = shadow.get(lock, 1) + delta
        shadow[lock] = depth
        return depth

    def _record_order(self, lock, task, label: str) -> None:
        held = self._held.get(task)
        if not held:
            return
        for prior in held:
            if prior is lock:
                continue
            pair = (prior.name, lock.name)
            reverse = (lock.name, prior.name)
            witness = (
                f"task '{_task_name(task)}' took '{lock.name}' "
                f"(label '{label}') while holding '{prior.name}' "
                f"at t={self._sim.now}ns"
            )
            if pair not in self._order:
                self._order[pair] = witness
            if reverse in self._order and pair not in self._reported:
                self._reported[pair] = True
                self._reported[reverse] = True
                self._report(
                    "lock-order",
                    f"lock-order inversion between '{prior.name}' and "
                    f"'{lock.name}': {witness}; the opposite order was "
                    f"established earlier: {self._order[reverse]}",
                )

    def _check_deadlock(self, lock, task, label: str) -> None:
        chain = [
            f"task '{_task_name(task)}' holds "
            f"{self._held_names(task)} and waits for '{lock.name}' "
            f"(label '{label}')"
        ]
        current = lock
        visited = {task: True}
        while True:
            owner = current.owner
            if owner is None:
                return
            if owner is task:
                self._report(
                    "deadlock",
                    "deadlock cycle: " + "; ".join(chain) + f"; '{current.name}' "
                    f"is owned by task '{_task_name(task)}' — the cycle closes",
                )
                return
            nxt = self._blocked.get(owner)
            if nxt is None:
                return  # the owner is runnable; it can still release
            if owner in visited:
                return  # a cycle not involving this task; reported when entered
            visited[owner] = True
            next_lock, next_label = nxt
            chain.append(
                f"task '{_task_name(owner)}' holds '{current.name}' and "
                f"waits for '{next_lock.name}' (label '{next_label}')"
            )
            current = next_lock

    def _held_names(self, task) -> str:
        held = self._held.get(task) or []
        if not held:
            return "no locks"
        return ", ".join(f"'{lock.name}'" for lock in held)
