"""Simulation sanitizer suite: static linter + runtime checkers.

* :mod:`.lint` — AST-based determinism linter (``repro-nfs lint``),
* :mod:`.lockcheck` — lock-order / deadlock / FIFO / depth sanitizer,
* :mod:`.racecheck` — BKL discipline checks on request-list mutations,
* :mod:`.invariants` — accounting, durability, and FIFO wake audits,
* :mod:`.runtime` — the ``sanitized()`` session TestBeds attach to.

See ``docs/static-analysis.md`` for the rule catalogue and flags.
"""

from .invariants import FifoSanitizer, audit_accounting, audit_stable_bytes
from .lint import RULES, LintFinding, Rule, lint_paths, lint_source, run_lint
from .lockcheck import LockOrderSanitizer
from .racecheck import RaceSanitizer
from .report import RuntimeFinding, group_findings
from .runtime import (
    SanitizeConfig,
    SanitizeSession,
    SanitizerHarness,
    active_session,
    attach_if_active,
    sanitized,
)

__all__ = [
    "Rule",
    "RULES",
    "LintFinding",
    "lint_source",
    "lint_paths",
    "run_lint",
    "RuntimeFinding",
    "group_findings",
    "LockOrderSanitizer",
    "RaceSanitizer",
    "FifoSanitizer",
    "audit_accounting",
    "audit_stable_bytes",
    "SanitizeConfig",
    "SanitizeSession",
    "SanitizerHarness",
    "sanitized",
    "active_session",
    "attach_if_active",
]
