"""Opt-in runtime sanitizer wiring for assembled TestBeds.

Usage::

    from repro.analysis.sanitize import sanitized

    with sanitized() as session:
        bed = TestBed(target="netapp", client="stock")
        bed.run_sequential_write(2 * MIB)
    for finding in session.findings():
        print(finding)

Inside the ``sanitized()`` context every :class:`~repro.bench.runner.
TestBed` construction attaches a :class:`SanitizerHarness`: the BKL
gets a lock-order/deadlock detector, the NFS client's inode lists and
request index get a race detector, and wait queues get FIFO checking.
All observers are passive — no events, no randomness, no state changes
— so a sanitized run is bit-for-bit identical to an unsanitized one
(the chaos scenarios verify exactly this by comparing fingerprints).

``repro-nfs faults --sanitize`` uses this to audit every fault scenario;
the session's grouped findings become three extra scenario invariants
(``sanitize-locks``, ``sanitize-races``, ``sanitize-invariants``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional

from .invariants import FifoSanitizer, audit_accounting, audit_stable_bytes
from .lockcheck import LockOrderSanitizer
from .racecheck import RaceSanitizer
from .report import RuntimeFinding, group_findings

__all__ = [
    "SanitizeConfig",
    "SanitizerHarness",
    "SanitizeSession",
    "sanitized",
    "active_session",
    "attach_if_active",
]


@dataclass
class SanitizeConfig:
    """Which sanitizer families to attach."""

    lock_order: bool = True
    race: bool = True
    fifo: bool = True
    invariants: bool = True


class SanitizerHarness:
    """All sanitizers attached to one TestBed."""

    def __init__(self, bed, config: SanitizeConfig):
        self.bed = bed
        self.config = config
        self.lock_order: Optional[LockOrderSanitizer] = None
        self.race: Optional[RaceSanitizer] = None
        self.fifo: Optional[FifoSanitizer] = None
        nfs = getattr(bed, "nfs", None)
        if config.lock_order and nfs is not None:
            self.lock_order = LockOrderSanitizer(bed.sim)
            nfs.bkl.sanitizer = self.lock_order
        if nfs is not None:
            if config.fifo:
                self.fifo = FifoSanitizer()
                nfs.hard_waitq.sanitizer = self.fifo
            if config.race:
                self.race = RaceSanitizer(bed.sim, nfs.bkl)
                nfs.index.sanitizer = self.race
            if config.race or config.fifo:
                nfs.sanitizer = self  # watch_inode() from here on
                for inode in nfs.inodes():
                    self.watch_inode(inode)

    def watch_inode(self, inode) -> None:
        """Hook a (possibly freshly created) inode's list and wait queue."""
        if self.race is not None:
            inode.sanitizer = self.race
        if self.fifo is not None:
            inode.waitq.sanitizer = self.fifo

    def runtime_findings(self) -> List[RuntimeFinding]:
        """Findings the live observers have accumulated so far."""
        findings: List[RuntimeFinding] = []
        if self.lock_order is not None:
            findings.extend(self.lock_order.findings)
        if self.race is not None:
            findings.extend(self.race.findings)
        if self.fifo is not None:
            findings.extend(self.fifo.findings)
        return findings

    def audit(self) -> List[RuntimeFinding]:
        """Runtime findings plus the end-of-run structural audits."""
        findings = self.runtime_findings()
        nfs = getattr(self.bed, "nfs", None)
        if self.config.invariants and nfs is not None:
            findings.extend(audit_accounting(nfs))
            if getattr(self.bed, "server", None) is not None:
                findings.extend(audit_stable_bytes(nfs, self.bed.server))
        return findings


class SanitizeSession:
    """Collects the harnesses of every TestBed built while active."""

    def __init__(self, config: Optional[SanitizeConfig] = None):
        self.config = config or SanitizeConfig()
        self.harnesses: List[SanitizerHarness] = []

    def findings(self) -> List[RuntimeFinding]:
        findings: List[RuntimeFinding] = []
        for harness in self.harnesses:
            findings.extend(harness.audit())
        return findings

    def grouped(self) -> Dict[str, List[RuntimeFinding]]:
        """Findings bucketed for the scenario-invariant rows."""
        return group_findings(self.findings())


_session: Optional[SanitizeSession] = None


def active_session() -> Optional[SanitizeSession]:
    return _session


@contextmanager
def sanitized(config: Optional[SanitizeConfig] = None):
    """Context manager: sanitize every TestBed built inside."""
    global _session
    previous = _session
    _session = SanitizeSession(config)
    try:
        yield _session
    finally:
        _session = previous


def attach_if_active(bed) -> Optional[SanitizerHarness]:
    """Called by ``TestBed.__init__``; no-op outside a session."""
    if _session is None:
        return None
    harness = SanitizerHarness(bed, _session.config)
    _session.harnesses.append(harness)
    return harness
