"""Shared-state race sanitizer for the NFS client's request structures.

The per-inode request lists and the request index (sorted list or hash
table) are BKL-protected state in the 2.4 client: every mutation —
creating, scheduling, completing, committing, or re-dirtying a page
request, and every index insert/remove — must happen with the Big
Kernel Lock held by the running task, in *every* lock-policy variant
(the paper's patch releases the BKL only around ``sock_sendmsg``, never
around list surgery).  The simulator's generator concurrency would mask
a missing lock (mutations between yields are atomic), so this sanitizer
makes the discipline explicit: any instrumented mutation outside the
lock is reported with the task, operation, and simulated time.
"""

from __future__ import annotations

from typing import List

from .report import RuntimeFinding

__all__ = ["RaceSanitizer"]


class RaceSanitizer:
    """Checks request-list/index mutations happen under the BKL."""

    def __init__(self, sim, bkl, max_findings: int = 100):
        self._sim = sim
        self._bkl = bkl
        self.max_findings = max_findings
        self.findings: List[RuntimeFinding] = []
        #: mutations observed (lock held or not) — coverage assertion aid.
        self.mutations_checked = 0

    def _report(self, message: str) -> None:
        if len(self.findings) < self.max_findings:
            self.findings.append(
                RuntimeFinding("race", message, time_ns=self._sim.now)
            )

    def _locked(self) -> bool:
        task = self._sim.current_task
        return task is not None and self._bkl.owner is task

    def _offender(self) -> str:
        task = self._sim.current_task
        if task is None:
            return "outside task context"
        name = getattr(task, "name", None) or repr(task)
        owner = self._bkl.owner
        if owner is None:
            return f"task '{name}' with '{self._bkl.name}' unheld"
        owner_name = getattr(owner, "name", None) or repr(owner)
        return (
            f"task '{name}' while '{self._bkl.name}' is held by "
            f"task '{owner_name}'"
        )

    # -- hook points ---------------------------------------------------------

    def on_request_list_mutation(self, inode, op: str) -> None:
        """Called by :class:`~repro.nfsclient.inode.NfsInode` ``note_*``."""
        self.mutations_checked += 1
        if not self._locked():
            self._report(
                f"unlocked request-list mutation: {op} on inode "
                f"{inode.fileid} ('{inode.name}') by {self._offender()}"
            )
            return
        # Cheap incremental consistency: the counters note_* maintains
        # can never go negative; catching it at the mutation pinpoints
        # the faulty transition instead of a far-downstream audit.
        if inode.live_requests < 0 or inode.writes_in_flight < 0:
            self._report(
                f"negative accounting after {op} on inode {inode.fileid}: "
                f"live={inode.live_requests} "
                f"in_flight={inode.writes_in_flight}"
            )

    def on_index_mutation(self, index, op: str, fileid: int, page_index: int) -> None:
        """Called by the request-index implementations on insert/remove."""
        self.mutations_checked += 1
        if not self._locked():
            self._report(
                f"unlocked index {op}: page {page_index} of file {fileid} "
                f"({index.kind} index) by {self._offender()}"
            )
