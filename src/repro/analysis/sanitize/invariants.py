"""Invariant checkers: accounting, durability, and FIFO wake order.

Two kinds live here:

* :class:`FifoSanitizer` — a live observer attached to
  :class:`~repro.sim.sync.WaitQueue` instances.  Every sleeper gets a
  monotonically increasing ticket; every wake must resume the smallest
  outstanding ticket, machine-checking the "strictly FIFO" promise the
  sync module's docstring makes (and that run determinism rests on).

* End-of-run audits over an assembled client/server pair:

  - **accounting** — the live request count, the request-index
    population, and the per-inode sums must all agree (the §3.4 index
    and the inode lists are views of the same set of requests),
  - **stable-bytes** — no acknowledged-stable byte may be lost: the
    server's durable byte count must cover everything the client has
    counted into ``bytes_acked_stable`` (the NFSv3 write-verifier
    contract the chaos scenarios exercise).
"""

from __future__ import annotations

from typing import Dict, List

from .report import RuntimeFinding

__all__ = ["FifoSanitizer", "audit_accounting", "audit_stable_bytes"]


class FifoSanitizer:
    """Checks WaitQueues wake sleepers in arrival order."""

    def __init__(self, max_findings: int = 100):
        self.max_findings = max_findings
        self.findings: List[RuntimeFinding] = []
        #: per-queue state: {"tickets": {event: ticket}, "next": int}
        self._queues: Dict[object, Dict[str, object]] = {}
        self.wakes_checked = 0

    def on_sleep(self, waitq, event) -> None:
        state = self._queues.setdefault(waitq, {"tickets": {}, "next": 0})
        state["tickets"][event] = state["next"]
        state["next"] += 1

    def on_wake(self, waitq, event) -> None:
        state = self._queues.get(waitq)
        if state is None:
            return
        tickets = state["tickets"]
        ticket = tickets.pop(event, None)
        if ticket is None:
            return
        self.wakes_checked += 1
        earlier = [t for t in tickets.values() if t < ticket]
        if earlier and len(self.findings) < self.max_findings:
            self.findings.append(
                RuntimeFinding(
                    "waitq-fifo",
                    f"'{waitq.name}' woke sleeper #{ticket} while "
                    f"{len(earlier)} earlier sleeper(s) (oldest "
                    f"#{min(earlier)}) still wait — FIFO order broken",
                )
            )


def audit_accounting(client) -> List[RuntimeFinding]:
    """Cross-check the client's request counters against its structures."""
    findings: List[RuntimeFinding] = []
    index_len = len(client.index)
    if index_len != client.live_requests:
        findings.append(
            RuntimeFinding(
                "accounting",
                f"request count mismatch: client counts "
                f"{client.live_requests} live request(s) but the "
                f"{client.index.kind} index holds {index_len}",
            )
        )
    inode_live = sum(inode.live_requests for inode in client.inodes())
    if inode_live != client.live_requests:
        findings.append(
            RuntimeFinding(
                "accounting",
                f"per-inode live sums ({inode_live}) disagree with the "
                f"client total ({client.live_requests})",
            )
        )
    writeback = sum(inode.writeback_requests for inode in client.inodes())
    if writeback != client.writeback_count:
        findings.append(
            RuntimeFinding(
                "accounting",
                f"per-inode writeback sums ({writeback}) disagree with "
                f"the client writeback count ({client.writeback_count})",
            )
        )
    for inode in client.inodes():
        if (
            inode.live_requests < 0
            or inode.writes_in_flight < 0
            or inode.unstable_bytes < 0
        ):
            findings.append(
                RuntimeFinding(
                    "accounting",
                    f"negative counter on inode {inode.fileid}: "
                    f"live={inode.live_requests} "
                    f"in_flight={inode.writes_in_flight} "
                    f"unstable_bytes={inode.unstable_bytes}",
                )
            )
    return findings


def audit_stable_bytes(client, server) -> List[RuntimeFinding]:
    """No acknowledged-stable byte lost: server durability must cover
    everything the client believes is stable."""
    files = getattr(server, "files", None)
    if files is None:
        return []
    server_stable = sum(file.stable_bytes for file in files.values())
    acked = client.stats.bytes_acked_stable
    if server_stable < acked:
        return [
            RuntimeFinding(
                "stable-bytes",
                f"acknowledged-stable data lost: client acked {acked} "
                f"stable byte(s) but the server holds only "
                f"{server_stable} durable",
            )
        ]
    return []
