"""Module-resolved call graph over a :class:`~.modindex.PackageIndex`.

Every ``ast.Call`` in every indexed function becomes a :class:`CallEdge`
tagged with how its callee was resolved:

* ``direct`` — a unique in-index target (local/imported function, a
  method found through the receiver's inferred class and MRO, or a
  class constructor → its ``__init__``),
* ``heuristic`` — the receiver's class was unknown but the method name
  is defined by at most :data:`MAX_NAME_CANDIDATES` index functions;
  the edge fans out to all of them (a conservative over-approximation),
* ``builtin`` — a recognised Python builtin or stdlib call (recorded by
  name, no target),
* ``external`` — provably outside the index: a name imported from a
  non-index module (``math.ceil``, ``warnings.warn``) or a method name
  no index function defines (``dict.values``); it cannot land in
  analysed code, so it carries no effects,
* ``unresolved`` — everything else: the explicit noise bucket each
  check reports and the committed baseline gates on drift.

Receiver classification (:func:`classify`) is shared with the effect
and taint passes: an expression maps to a :class:`Ref` — rooted at
``self``, a parameter, a typed local, a class, a module, or unknown —
using the index's assignment heuristics plus per-function local
inference (``x = Foo(...)``, ``x = self.attr``, annotated parameters).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .modindex import FunctionInfo, PackageIndex, _annotation_name

__all__ = [
    "Ref",
    "SELF",
    "PARAM",
    "LOCAL",
    "CLASS",
    "MODULE",
    "UNKNOWN",
    "CallEdge",
    "CallGraph",
    "FunctionContext",
    "classify",
    "build_callgraph",
]

#: By-name fallback: link an unknown-receiver method call only when at
#: most this many index functions define the name.
MAX_NAME_CANDIDATES = 4

SELF = "self"
PARAM = "param"
LOCAL = "local"
CLASS = "class"
MODULE = "module"
UNKNOWN = "unknown"

#: Method names shared with the builtin types (dict/str/list/file).
#: A call through an *untyped* receiver with one of these names is far
#: more likely ``dict.get`` than an index method, so the by-name
#: fallback stands down and the call joins the unresolved bucket
#: (counted in stats, not reported as an observer escape).
COMMON_OBJECT_METHODS = frozenset(
    [
        "get",
        "items",
        "keys",
        "values",
        "join",
        "split",
        "rsplit",
        "strip",
        "lstrip",
        "rstrip",
        "write",
        "writelines",
        "read",
        "readline",
        "close",
        "flush",
        "copy",
        "count",
        "index",
        "format",
        "encode",
        "decode",
        "replace",
        "startswith",
        "endswith",
        "lower",
        "upper",
        "title",
        "zfill",
        "ljust",
        "rjust",
        "partition",
        "rpartition",
        "find",
        "rfind",
        "group",
        "groups",
        "match",
        "search",
        "hexdigest",
        "total_seconds",
    ]
)

#: Container methods that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    [
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "discard",
        "remove",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "sort",
        "reverse",
    ]
)

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(frozen=True)
class Ref:
    """Where an expression's value is rooted."""

    kind: str
    #: param index / local name / class qualname / module name, by kind.
    name: str = ""
    index: int = -1
    #: attribute path walked from the root (("metrics", "counter") etc).
    attrs: Tuple[str, ...] = ()
    #: possible classes of the referred value (may be empty).
    types: Tuple[str, ...] = ()

    def describe(self) -> str:
        root = {
            SELF: "self",
            PARAM: f"param {self.name or self.index}",
            LOCAL: self.name,
            CLASS: self.name,
            MODULE: self.name,
            UNKNOWN: self.name or "?",
        }[self.kind]
        return ".".join([root, *self.attrs]) if self.attrs else root


_UNKNOWN_REF = Ref(UNKNOWN)


@dataclass
class CallEdge:
    """One call site, resolved (or not) to its targets."""

    caller: str
    node: ast.Call
    line: int
    #: resolution kind: direct | heuristic | builtin | unresolved.
    kind: str
    #: index function qualnames this call may land in.
    targets: Tuple[str, ...] = ()
    #: the syntactic callee name ("m" of recv.m(), or the bare name).
    callee_name: str = ""
    #: classified receiver of a method call (None for bare names).
    receiver: Optional[Ref] = None
    #: classified positional argument refs (for param-effect binding).
    arg_refs: Tuple[Optional[Ref], ...] = ()


class FunctionContext:
    """Per-function name environment used by classify()."""

    def __init__(self, index: PackageIndex, fn: FunctionInfo):
        self.index = index
        self.fn = fn
        self.self_name = fn.params[0] if fn.is_method and fn.params else None
        self.param_index = {name: i for i, name in enumerate(fn.params)}
        #: local name -> possible class qualnames (flow-insensitive).
        self.local_types: Dict[str, Set[str]] = {}
        #: local name -> Ref it aliases (x = self.attr / x = param).
        self.aliases: Dict[str, Ref] = {}
        #: locals assigned None on some path (for SIM602).
        self.maybe_none: Set[str] = set()
        self._infer_locals()

    def _infer_locals(self) -> None:
        for name, anno in self.fn.annotations.items():
            resolved = self.index.resolve_class(anno, self.fn.module)
            if resolved and name not in self.param_index:
                self.local_types.setdefault(name, set()).add(resolved)
        for stmt in ast.walk(self.fn.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if isinstance(stmt, ast.AnnAssign) and stmt.annotation is not None:
                anno = _annotation_name(stmt.annotation)
                resolved = (
                    self.index.resolve_class(anno, self.fn.module) if anno else None
                )
                if resolved:
                    for name in names:
                        self.local_types.setdefault(name, set()).add(resolved)
            if value is None:
                continue
            if isinstance(value, ast.Constant) and value.value is None:
                self.maybe_none.update(names)
                continue
            ref = classify(value, self, _local_alias=False)
            for name in names:
                if ref.types:
                    self.local_types.setdefault(name, set()).update(ref.types)
                if ref.kind in (SELF, PARAM) and name not in self.aliases:
                    self.aliases[name] = ref


def _constructor_types(
    call: ast.Call, ctx: FunctionContext
) -> Tuple[str, ...]:
    name = _annotation_name(call.func)
    if not name:
        return ()
    resolved = ctx.index.resolve_class(name, ctx.fn.module)
    return (resolved,) if resolved else ()


def _return_types(targets: Sequence[str], ctx: FunctionContext) -> Tuple[str, ...]:
    """Classes a resolved call's return value may have (shallow)."""
    out: Set[str] = set()
    for target in targets:
        fn = ctx.index.functions.get(target)
        if fn is None:
            continue
        if fn.name == "__init__" and fn.cls:
            out.add(fn.cls)
            continue
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Call):
                    name = _annotation_name(node.value.func)
                    if name:
                        resolved = ctx.index.resolve_class(name, fn.module)
                        if resolved:
                            out.add(resolved)
                elif isinstance(node.value, ast.Name):
                    # A returned local constructed in the same function.
                    for stmt in ast.walk(fn.node):
                        if (
                            isinstance(stmt, ast.Assign)
                            and isinstance(stmt.value, ast.Call)
                            and any(
                                isinstance(t, ast.Name) and t.id == node.value.id
                                for t in stmt.targets
                            )
                        ):
                            name = _annotation_name(stmt.value.func)
                            if name:
                                resolved = ctx.index.resolve_class(name, fn.module)
                                if resolved:
                                    out.add(resolved)
    return tuple(sorted(out))


def classify(expr: ast.AST, ctx: FunctionContext, _local_alias: bool = True) -> Ref:
    """Map an expression to a :class:`Ref` (root + attr path + types)."""
    if isinstance(expr, ast.Name):
        name = expr.id
        if name == ctx.self_name:
            types = (ctx.fn.cls,) if ctx.fn.cls else ()
            return Ref(SELF, name, attrs=(), types=types)
        if name in ctx.param_index:
            anno = ctx.fn.annotations.get(name)
            resolved = (
                ctx.index.resolve_class(anno, ctx.fn.module) if anno else None
            )
            return Ref(
                PARAM,
                name,
                index=ctx.param_index[name],
                types=(resolved,) if resolved else (),
            )
        if _local_alias and name in ctx.aliases:
            return ctx.aliases[name]
        resolved = ctx.index.resolve_name(name, ctx.fn.module)
        if resolved in ctx.index.classes:
            return Ref(CLASS, resolved)
        if resolved in ctx.index.modules:
            return Ref(MODULE, resolved)
        if name in ctx.local_types:
            return Ref(LOCAL, name, types=tuple(sorted(ctx.local_types[name])))
        if resolved in ctx.index.functions:
            return Ref(UNKNOWN, resolved)
        return Ref(LOCAL, name)
    if isinstance(expr, ast.Attribute):
        base = classify(expr.value, ctx, _local_alias=_local_alias)
        if base.kind == MODULE:
            resolved = f"{base.name}.{expr.attr}"
            if resolved in ctx.index.modules:
                return Ref(MODULE, resolved)
            if resolved in ctx.index.classes:
                return Ref(CLASS, resolved)
            return Ref(MODULE, base.name, attrs=base.attrs + (expr.attr,))
        # Type of the attribute, from the base's possible classes.
        attr_types: Set[str] = set()
        for cls in base.types:
            attr_types |= ctx.index.attr_types(cls, expr.attr)
        return Ref(
            base.kind,
            base.name,
            index=base.index,
            attrs=base.attrs + (expr.attr,),
            types=tuple(sorted(attr_types)),
        )
    if isinstance(expr, ast.Call):
        ctor = _constructor_types(expr, ctx)
        if ctor:
            return Ref(CLASS, ctor[0], types=ctor)
        targets = _resolve_call_targets(expr, ctx)[1]
        if targets:
            types = _return_types(targets, ctx)
            if types:
                return Ref(UNKNOWN, "call", types=types)
        return Ref(UNKNOWN, "call")
    if isinstance(expr, ast.Subscript):
        base = classify(expr.value, ctx, _local_alias=_local_alias)
        return Ref(
            base.kind,
            base.name,
            index=base.index,
            attrs=base.attrs + ("[]",),
        )
    if isinstance(expr, ast.IfExp):
        body = classify(expr.body, ctx, _local_alias=_local_alias)
        orelse = classify(expr.orelse, ctx, _local_alias=_local_alias)
        if body.kind == orelse.kind and body.name == orelse.name:
            return body
        return Ref(UNKNOWN, "ifexp", types=tuple(sorted({*body.types, *orelse.types})))
    return _UNKNOWN_REF


def _resolve_call_targets(
    call: ast.Call, ctx: FunctionContext
) -> Tuple[str, Tuple[str, ...]]:
    """(resolution kind, target qualnames) for one call node."""
    func = call.func
    index = ctx.index
    root_prefix = index.root_package + "."
    if isinstance(func, ast.Name):
        name = func.id
        # Nested/sibling scope: foo() inside Class.method may be a
        # module function or a sibling nested def.
        resolved = index.resolve_name(name, ctx.fn.module)
        if resolved in index.functions:
            return "direct", (resolved,)
        if resolved in index.classes:
            init = index.lookup_method(resolved, "__init__")
            return "direct", (init,) if init else ()
        nested = f"{ctx.fn.qualname}.{name}"
        if nested in index.functions:
            return "direct", (nested,)
        if name in _BUILTIN_NAMES:
            return "builtin", ()
        if resolved is not None and not resolved.startswith(root_prefix):
            # Imported from outside the index (stdlib, third party).
            return "external", ()
        return "unresolved", ()
    if isinstance(func, ast.Attribute):
        method = func.attr
        recv = classify(func.value, ctx)
        if recv.kind == MODULE and not recv.attrs:
            qual = f"{recv.name}.{method}"
            if qual in index.functions:
                return "direct", (qual,)
            reexport = index.resolve_name(method, recv.name)
            if reexport in index.functions:
                return "direct", (reexport,)
            if reexport in index.classes:
                init = index.lookup_method(reexport, "__init__")
                if init:
                    return "direct", (init,)
            return "external", ()
        if recv.kind == CLASS and not recv.attrs:
            target = index.lookup_method(recv.name, method)
            if target:
                return "direct", (target,)
        candidates: Set[str] = set()
        for cls in recv.types:
            target = index.lookup_method(cls, method)
            if target:
                candidates.add(target)
        if recv.kind == SELF and not recv.attrs and ctx.fn.cls:
            target = index.lookup_method(ctx.fn.cls, method)
            if target:
                candidates.add(target)
        if candidates:
            return "direct", tuple(sorted(candidates))
        if method in MUTATING_METHODS:
            # Container mutation; the effect pass handles the receiver.
            return "builtin", ()
        by_name = index.methods_by_name.get(method, [])
        if by_name and method in COMMON_OBJECT_METHODS:
            return "unresolved", ()
        if by_name and len(by_name) <= MAX_NAME_CANDIDATES:
            return "heuristic", tuple(sorted(by_name))
        if by_name:
            return "unresolved", ()
        if method in _BUILTIN_NAMES:
            return "builtin", ()
        # No index function has this name: it cannot land in analysed
        # code (a stdlib method such as dict.values or math.ceil).
        return "external", ()
    return "unresolved", ()


class CallGraph:
    """All call edges, grouped by caller, plus resolution statistics."""

    def __init__(self, index: PackageIndex):
        self.index = index
        self.edges_by_caller: Dict[str, List[CallEdge]] = {}
        self.contexts: Dict[str, FunctionContext] = {}

    def context(self, qualname: str) -> FunctionContext:
        ctx = self.contexts.get(qualname)
        if ctx is None:
            ctx = FunctionContext(self.index, self.index.functions[qualname])
            self.contexts[qualname] = ctx
        return ctx

    def edges(self, qualname: str) -> List[CallEdge]:
        return self.edges_by_caller.get(qualname, [])

    def stats(self) -> Dict[str, int]:
        counts = {
            "direct": 0,
            "heuristic": 0,
            "builtin": 0,
            "external": 0,
            "unresolved": 0,
        }
        for edges in self.edges_by_caller.values():
            for edge in edges:
                counts[edge.kind] += 1
        counts["functions"] = len(self.index.functions)
        counts["modules"] = len(self.index.modules)
        return counts

    def reachable(self, roots: Sequence[str], edge_filter=None) -> Set[str]:
        """Functions reachable from ``roots``.

        ``edge_filter(edge)`` decides which edges to traverse; by
        default only ``direct`` edges are followed — heuristic by-name
        fan-out is an over-approximation that checks handle explicitly
        (reporting, not traversing) to keep their regions honest.
        """
        if edge_filter is None:
            edge_filter = lambda edge: edge.kind == "direct"
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.index.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.edges(current):
                if not edge_filter(edge):
                    continue
                for target in edge.targets:
                    if target not in seen:
                        stack.append(target)
        return seen


def _call_nodes(fn: FunctionInfo) -> List[ast.Call]:
    """Call sites belonging to this function, excluding nested defs."""
    out: List[ast.Call] = []
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    out.sort(key=lambda n: (n.lineno, n.col_offset))
    return out


def build_callgraph(index: PackageIndex) -> CallGraph:
    """Resolve every call site in every indexed function."""
    graph = CallGraph(index)
    for qualname, fn in index.functions.items():
        ctx = graph.context(qualname)
        edges: List[CallEdge] = []
        for call in _call_nodes(fn):
            kind, targets = _resolve_call_targets(call, ctx)
            receiver = (
                classify(call.func.value, ctx)
                if isinstance(call.func, ast.Attribute)
                else None
            )
            callee_name = (
                call.func.attr
                if isinstance(call.func, ast.Attribute)
                else (call.func.id if isinstance(call.func, ast.Name) else "<expr>")
            )
            arg_refs = tuple(
                classify(arg, ctx) if not isinstance(arg, ast.Starred) else None
                for arg in call.args
            )
            edges.append(
                CallEdge(
                    caller=qualname,
                    node=call,
                    line=call.lineno,
                    kind=kind,
                    targets=targets,
                    callee_name=callee_name,
                    receiver=receiver,
                    arg_refs=arg_refs,
                )
            )
        graph.edges_by_caller[qualname] = edges
    return graph
