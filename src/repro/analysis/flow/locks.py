"""LCK7xx yield/lock discipline checks.

* **LCK701** (error) — a function calls ``break_all()`` (dropping the
  BKL to its depth) but no matching ``reacquire`` is found in the same
  function or its direct callees; or the reacquire exists but is not
  protected by a ``finally`` block, so an exception between the two
  leaks the lock released (the §3.5 send-unlocked patch idiom is
  ``depth = bkl.break_all(); try: ... finally: yield from
  bkl.reacquire(depth, ...)``).
* **LCK702** (error) — a blocking or forbidden call (real
  ``time.sleep``, ``subprocess``, ``input``, file ``open`` …) is
  reachable from an event handler: any generator coroutine in the
  simulated stack, or any function passed as a callback to simulator
  scheduling. Simulated time must never wait on host time.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Set, Tuple

from .callgraph import UNKNOWN, CallGraph
from .config import FlowConfig
from .effects import FlowIssue, _is_schedule_edge
from .taint import _dotted

__all__ = ["check_locks"]


def _finally_lines(fn_node: ast.AST) -> Set[int]:
    """Line numbers covered by any ``finally`` suite."""
    lines: Set[int] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    lineno = getattr(sub, "lineno", None)
                    if lineno is not None:
                        lines.add(lineno)
    return lines


def _check_break_reacquire(
    graph: CallGraph, config: FlowConfig, line_suppressed
) -> List[FlowIssue]:
    issues: List[FlowIssue] = []
    for qualname, fn in graph.index.functions.items():
        edges = graph.edges(qualname)
        breaks = [e for e in edges if e.callee_name == "break_all"]
        if not breaks:
            continue
        reacquires = [e for e in edges if e.callee_name == "reacquire"]
        if not reacquires:
            # Direct callees may hold the reacquire (helper wrappers).
            callee_has = False
            for edge in edges:
                for target in edge.targets:
                    for sub in graph.edges(target):
                        if sub.callee_name == "reacquire":
                            callee_has = True
            if not callee_has:
                for b in breaks:
                    if line_suppressed(fn.path, b.line):
                        continue
                    issues.append(
                        FlowIssue(
                            "LCK701",
                            fn.path,
                            b.line,
                            f"`break_all()` in {qualname} has no matching "
                            f"`reacquire` on any path; BKL depth is lost",
                            qualname,
                            "missing-reacquire",
                        )
                    )
            continue
        fin = _finally_lines(fn.node)
        if fin and all(r.line not in fin for r in reacquires):
            b = breaks[0]
            if not line_suppressed(fn.path, b.line):
                issues.append(
                    FlowIssue(
                        "LCK701",
                        fn.path,
                        b.line,
                        f"`reacquire` in {qualname} is outside any `finally`;"
                        f" an exception after `break_all()` leaks the lock",
                        qualname,
                        "reacquire-not-in-finally",
                    )
                )
        elif not fin:
            b = breaks[0]
            if not line_suppressed(fn.path, b.line):
                issues.append(
                    FlowIssue(
                        "LCK701",
                        fn.path,
                        b.line,
                        f"`break_all()`/`reacquire` pair in {qualname} is not"
                        f" protected by try/finally",
                        qualname,
                        "no-try-finally",
                    )
                )
    return issues


def _handler_roots(graph: CallGraph, config: FlowConfig) -> Set[str]:
    """Event-handler roots: generator coroutines + scheduled callbacks."""
    roots: Set[str] = {
        q for q, fn in graph.index.functions.items() if fn.is_generator
    }
    for qualname in graph.index.functions:
        for edge in graph.edges(qualname):
            if not _is_schedule_edge(edge, config):
                continue
            for ref in edge.arg_refs:
                if ref is not None and ref.kind == UNKNOWN and ref.name in graph.index.functions:
                    roots.add(ref.name)
    return roots


def _check_blocking(
    graph: CallGraph, config: FlowConfig, line_suppressed
) -> Tuple[List[FlowIssue], Dict[str, int]]:
    roots = _handler_roots(graph, config)
    reachable = graph.reachable(sorted(roots))
    issues: List[FlowIssue] = []
    for qualname in sorted(reachable):
        fn = graph.index.functions[qualname]
        for edge in graph.edges(qualname):
            dotted = _dotted(edge.node.func)
            blocked = dotted in config.blocking_calls or dotted == "open"
            if not blocked or line_suppressed(fn.path, edge.line):
                continue
            issues.append(
                FlowIssue(
                    "LCK702",
                    fn.path,
                    edge.line,
                    f"blocking call `{dotted}(...)` reachable from event "
                    f"handlers (in {qualname}); simulated time must not "
                    f"wait on the host",
                    qualname,
                    f"block:{dotted}",
                )
            )
    stats = {"handler_roots": len(roots), "handler_reachable": len(reachable)}
    return issues, stats


def check_locks(
    graph: CallGraph,
    config: FlowConfig,
    line_suppressed: Callable[[str, int], bool],
) -> Tuple[List[FlowIssue], Dict[str, int]]:
    issues = _check_break_reacquire(graph, config, line_suppressed)
    blocking, stats = _check_blocking(graph, config, line_suppressed)
    issues.extend(blocking)
    return issues, stats
