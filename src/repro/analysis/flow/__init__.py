"""Whole-program flow analysis: statically prove the repro contracts.

``repro.analysis.flow`` parses the entire ``repro`` package into a
module-resolved call graph (:mod:`.modindex`, :mod:`.callgraph`) and
runs interprocedural dataflow passes over it:

* :mod:`.effects` — PUR5xx pure-observer proof (field-write effect
  inference over everything reachable from obs/sanitizer hooks),
* :mod:`.taint` — DET15x nondeterminism taint to fingerprints,
  schedulers, and object state,
* :mod:`.locks` — LCK7xx BKL break/reacquire and blocking-call
  discipline,
* :mod:`.simapi` — SIM6xx simulator API misuse.

Everything is stdlib-only and runs in seconds without executing a
simulation. Entry point: :func:`analyze` / :func:`run_flow` (the
``repro-nfs flow`` CLI).
"""

from .baseline import (  # noqa: F401
    BASELINE_SCHEMA,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from .callgraph import CallGraph, build_callgraph  # noqa: F401
from .config import DEFAULT_CONFIG, FlowConfig  # noqa: F401
from .engine import (  # noqa: F401
    FLOW_RULES,
    REPORT_SCHEMA,
    FlowFinding,
    FlowReport,
    analyze,
    default_flow_root,
    run_flow,
)
from .modindex import PackageIndex, build_index  # noqa: F401

__all__ = [
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "CallGraph",
    "DEFAULT_CONFIG",
    "FLOW_RULES",
    "FlowConfig",
    "FlowFinding",
    "FlowReport",
    "PackageIndex",
    "REPORT_SCHEMA",
    "analyze",
    "apply_baseline",
    "build_callgraph",
    "build_index",
    "default_flow_root",
    "load_baseline",
    "run_flow",
    "save_baseline",
]
