"""Configuration for the whole-program flow analysis.

The defaults describe this repository's contracts: which modules hold
observer-owned state, which functions are pure-observer entry points,
and which ``Simulator`` methods mutate the event queue. Tests build a
:class:`FlowConfig` by hand to analyse fixture packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

__all__ = ["FlowConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class FlowConfig:
    """Knobs for the flow passes, keyed to the indexed root package."""

    root_package: str = "repro"

    #: Modules whose state observers may freely mutate (ownership
    #: allowlist for PUR5xx). A class owns its writes when its defining
    #: module matches one of these prefixes.
    owned_module_prefixes: Tuple[str, ...] = (
        "repro.obs",
        "repro.analysis",
        "repro.sim.trace",
        "repro.sim.profiler",
    )

    #: Modules whose functions/methods are pure-observer entry points
    #: (every function defined there, minus ``entry_exclude``).
    entry_module_prefixes: Tuple[str, ...] = (
        "repro.obs",
        "repro.analysis.sanitize.runtime",
        "repro.analysis.sanitize.lockcheck",
        "repro.analysis.sanitize.racecheck",
        "repro.analysis.sanitize.invariants",
    )

    #: Setup/teardown functions that legitimately wire observers into
    #: sim objects (``bed.syscalls.obs = obs`` …). They are not
    #: observer *hook* paths and are excluded from the entry set.
    entry_exclude: FrozenSet[str] = frozenset(
        {
            "repro.obs.core.attach",
            "repro.obs.core.attach_if_active",
            "repro.obs.core.attach_topology",
            "repro.obs.core.attach_topology_if_active",
            "repro.obs.bundle.attach",
            "repro.obs.bundle.run_traced",
            "repro.obs.bundle.write_bundle",
            "repro.analysis.sanitize.runtime.SanitizerHarness.__init__",
            "repro.analysis.sanitize.runtime.SanitizerHarness.watch_inode",
            "repro.analysis.sanitize.runtime.SanitizeSession.__enter__",
            "repro.analysis.sanitize.runtime.SanitizeSession.__exit__",
            "repro.analysis.sanitize.runtime.sanitized",
            "repro.analysis.sanitize.runtime.attach_if_active",
        }
    )

    #: Method names that schedule simulator events (PUR503 / DET152 /
    #: SIM6xx sinks) when the receiver resolves to a simulator class.
    schedule_methods: FrozenSet[str] = frozenset(
        {
            "call_after",
            "call_at",
            "schedule",
            "schedule_at",
            "push_at",
            "spawn",
            "alloc_seq",
        }
    )

    #: Class names (last qualname component) treated as simulators.
    simulator_classes: FrozenSet[str] = frozenset({"Simulator"})

    #: Call names whose return value is nondeterministic (DET15x
    #: sources). ``random.*`` module draws are matched structurally.
    clock_calls: FrozenSet[str] = frozenset(
        {"time.time", "time.monotonic", "time.perf_counter", "time.time_ns",
         "time.monotonic_ns", "time.perf_counter_ns", "datetime.datetime.now",
         "datetime.datetime.utcnow"}
    )

    #: Functions whose call fingerprints state (DET151 sinks), matched
    #: by final qualname component.
    fingerprint_calls: FrozenSet[str] = frozenset(
        {"_fingerprint", "fingerprint", "fingerprint_events", "digest"}
    )

    #: Blocking / forbidden calls inside event handlers (LCK702),
    #: matched against the dotted syntactic callee.
    blocking_calls: FrozenSet[str] = frozenset(
        {
            "time.sleep",
            "os.system",
            "os.popen",
            "subprocess.run",
            "subprocess.Popen",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "socket.socket",
            "input",
        }
    )

    #: Per-function cap on reported unresolved-ownership write sites
    #: (PUR502) so one messy helper cannot flood the report.
    max_unknown_sites: int = 3

    def owns_module(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.owned_module_prefixes
        )

    def is_entry_module(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.entry_module_prefixes
        )


DEFAULT_CONFIG = FlowConfig()
