"""Committed flow baseline: gate on drift, not absolute count.

The baseline file (``flow-baseline.json``) records the findings the
repo has accepted, each with a justification, keyed by a *stable* key
that omits line numbers::

    CODE::relative/path.py::scope.qualname::slug

A run fails on drift in **either** direction: a finding not in the
baseline (new debt) or a baseline entry no finding matches any more
(fixed but silently left in the file — reported as FLW002 so the entry
gets removed and the ratchet tightens).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

__all__ = [
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
]

BASELINE_SCHEMA = "repro-nfs/flow-baseline@1"


@dataclass(frozen=True)
class BaselineEntry:
    key: str
    code: str
    justification: str


def load_baseline(path: Union[str, Path]) -> Dict[str, BaselineEntry]:
    """Parse a baseline file; raises ValueError on shape problems."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {raw.get('schema') if isinstance(raw, dict) else type(raw).__name__!r}"
        )
    entries: Dict[str, BaselineEntry] = {}
    for item in raw.get("entries", []):
        if not isinstance(item, dict) or "key" not in item:
            raise ValueError(f"baseline {path}: malformed entry {item!r}")
        key = item["key"]
        entries[key] = BaselineEntry(
            key=key,
            code=item.get("code", key.split("::", 1)[0]),
            justification=item.get("justification", ""),
        )
    return entries


def save_baseline(
    path: Union[str, Path],
    findings: Sequence,
    justifications: Dict[str, str] = None,
) -> None:
    """Write the given findings (anything with .key/.code) as a baseline."""
    justifications = justifications or {}
    seen = set()
    entries: List[Dict[str, str]] = []
    for finding in sorted(findings, key=lambda f: f.key):
        if finding.key in seen:
            continue
        seen.add(finding.key)
        entries.append(
            {
                "key": finding.key,
                "code": finding.code,
                "justification": justifications.get(
                    finding.key, "accepted pre-existing finding; see docs"
                ),
            }
        )
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence,
    baseline: Dict[str, BaselineEntry],
) -> Tuple[List, int, List[BaselineEntry]]:
    """Split findings against the baseline.

    Returns (kept_findings, matched_count, stale_entries): findings
    whose key appears in the baseline are dropped; baseline entries no
    finding matched are *stale* and must be removed from the file.
    """
    matched_keys = set()
    kept = []
    for finding in findings:
        if finding.key in baseline:
            matched_keys.add(finding.key)
        else:
            kept.append(finding)
    stale = [
        entry for key, entry in sorted(baseline.items()) if key not in matched_keys
    ]
    return kept, len(matched_keys), stale
