"""Interprocedural nondeterminism taint (DET15x).

Sources (per call site, unless the line carries a ``# noqa`` for the
matching syntactic DET10x rule or a ``# noqa-flow`` scope):

* ``rng`` — module-level ``random.*`` draws,
* ``clock`` — wall-clock reads (``time.time`` …, per config),
* ``id`` — ``id(...)`` of an object,
* ``set-order`` — values whose *order* derives from set iteration
  (``list({...})``, ``for x in set(...)``).

The lattice is a small powerset of those kinds. Taint moves through
local assignments, function returns (with a pass-through bit for
functions that return parameter-derived values), and object attributes
(a whole-program ``(class, attr) → kinds`` map reaching fixpoint over
the call graph). Sanitizers kill selectively: ``sorted()`` and other
order-insensitive reductions (``min``/``max``/``sum``/``any``/``all``/
``len``/``set``/``frozenset``) kill ``set-order``; ``len()`` and
boolean tests kill everything; arithmetic kills ``set-order`` (order
taint only matters for sequence construction) but keeps
``rng``/``clock``/``id``.

Sinks:

* **DET151** (error) — tainted argument to a fingerprint call,
* **DET152** (error) — tainted argument to simulator scheduling,
* **DET153** (warning) — tainted value stored into object state.

This pass subsumes the per-file DET101–DET104 rules for flows that
cross function boundaries; the syntactic rules remain as the fast
first line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionContext, classify
from .config import FlowConfig
from .effects import FlowIssue, _is_schedule_edge

__all__ = ["check_taint", "TAINT_KINDS"]

TAINT_KINDS = ("rng", "clock", "id", "set-order")

#: Order-insensitive consumers: set-order taint dies here.
_ORDER_KILLERS = frozenset(
    ["sorted", "min", "max", "sum", "any", "all", "set", "frozenset"]
)
#: Consumers whose result carries no input taint at all.
_FULL_KILLERS = frozenset(["len", "bool", "isinstance", "hasattr", "type"])


def _dotted(func: ast.AST) -> str:
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


#: random-module functions that *draw* from the process-global RNG.
#: ``random.Random(seed)`` constructs a seeded stream and is clean.
_GLOBAL_RNG_DRAWS = frozenset(
    [
        "random", "randint", "randrange", "randbytes", "getrandbits",
        "choice", "choices", "shuffle", "sample", "uniform", "gauss",
        "normalvariate", "expovariate", "triangular", "betavariate",
        "paretovariate", "vonmisesvariate", "weibullvariate",
        "lognormvariate",
    ]
)


def _is_set_valued(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    return False


@dataclass
class _FnSummary:
    returns: Set[str] = field(default_factory=set)
    returns_param_derived: bool = False


class _TaintPass:
    def __init__(
        self,
        graph: CallGraph,
        config: FlowConfig,
        line_suppressed: Callable[[str, int], bool],
    ):
        self.graph = graph
        self.config = config
        self.line_suppressed = line_suppressed
        self.attr_map: Dict[Tuple[str, str], Set[str]] = {}
        self.summaries: Dict[str, _FnSummary] = {
            q: _FnSummary() for q in graph.index.functions
        }
        self._param_derived_cache: Dict[str, bool] = {}

    # -- sources ------------------------------------------------------

    def _source_kinds(self, call: ast.Call, path: str) -> Set[str]:
        if self.line_suppressed(path, call.lineno):
            return set()
        func = call.func
        dotted = _dotted(func)
        if (
            dotted.startswith("random.")
            and dotted.rsplit(".", 1)[-1] in _GLOBAL_RNG_DRAWS
        ):
            return {"rng"}
        if dotted in self.config.clock_calls:
            return {"clock"}
        if isinstance(func, ast.Name) and func.id == "id" and call.args:
            return {"id"}
        return set()

    # -- expression taint --------------------------------------------

    def _expr(self, expr: ast.AST, env: Dict[str, Set[str]], ctx: FunctionContext) -> Set[str]:
        path = ctx.fn.path
        if isinstance(expr, ast.Name):
            return set(env.get(expr.id, ()))
        if isinstance(expr, ast.Call):
            kinds = self._source_kinds(expr, path)
            if kinds:
                return kinds
            arg_taint: Set[str] = set()
            for arg in expr.args:
                inner = arg.value if isinstance(arg, ast.Starred) else arg
                arg_taint |= self._expr(inner, env, ctx)
                if _is_set_valued(inner):
                    arg_taint.add("set-order")
            for kw in expr.keywords:
                arg_taint |= self._expr(kw.value, env, ctx)
            name = expr.func.id if isinstance(expr.func, ast.Name) else expr.func.attr if isinstance(expr.func, ast.Attribute) else ""
            if name in _FULL_KILLERS:
                return set()
            if name in _ORDER_KILLERS:
                return arg_taint - {"set-order"}
            if name in ("list", "tuple"):
                return arg_taint
            # Resolved calls: callee summary (+ pass-through).
            for edge in self.graph.edges(ctx.fn.qualname):
                if edge.node is expr:
                    out: Set[str] = set()
                    for target in edge.targets:
                        summ = self.summaries.get(target)
                        if summ is None:
                            continue
                        out |= summ.returns
                        if summ.returns_param_derived:
                            out |= arg_taint
                    if edge.targets:
                        return out
                    break
            return arg_taint  # builtin/unresolved: conservative pass-through
        if isinstance(expr, ast.Attribute):
            base = self._expr(expr.value, env, ctx)
            ref = classify(expr.value, ctx)
            stored: Set[str] = set()
            for cls in ref.types:
                stored |= self.attr_map.get((cls, expr.attr), set())
            return base | stored
        if isinstance(expr, ast.Subscript):
            return self._expr(expr.value, env, ctx)
        if isinstance(expr, (ast.BinOp,)):
            out = self._expr(expr.left, env, ctx) | self._expr(expr.right, env, ctx)
            return out - {"set-order"}
        if isinstance(expr, ast.UnaryOp):
            return self._expr(expr.operand, env, ctx) - {"set-order"}
        if isinstance(expr, ast.BoolOp):
            out = set()
            for v in expr.values:
                out |= self._expr(v, env, ctx)
            return out
        if isinstance(expr, ast.Compare):
            out = self._expr(expr.left, env, ctx)
            for comp in expr.comparators:
                out |= self._expr(comp, env, ctx)
            return out - {"set-order"}
        if isinstance(expr, ast.IfExp):
            return self._expr(expr.body, env, ctx) | self._expr(expr.orelse, env, ctx)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            out = set()
            for elt in expr.elts:
                out |= self._expr(elt, env, ctx)
            return out
        if isinstance(expr, ast.Dict):
            out = set()
            for part in list(expr.keys) + list(expr.values):
                if part is not None:
                    out |= self._expr(part, env, ctx)
            return out
        if isinstance(expr, ast.JoinedStr):
            out = set()
            for v in expr.values:
                if isinstance(v, ast.FormattedValue):
                    out |= self._expr(v.value, env, ctx)
            return out
        if isinstance(expr, ast.Await):
            return self._expr(expr.value, env, ctx)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = self._comp_taint(expr.generators, env, ctx)
            out |= self._expr(expr.elt, dict(env), ctx)
            return out
        if isinstance(expr, ast.DictComp):
            out = self._comp_taint(expr.generators, env, ctx)
            out |= self._expr(expr.key, dict(env), ctx)
            out |= self._expr(expr.value, dict(env), ctx)
            return out
        return set()

    def _comp_taint(self, generators, env, ctx) -> Set[str]:
        out: Set[str] = set()
        for gen in generators:
            out |= self._expr(gen.iter, env, ctx)
            if _is_set_valued(gen.iter):
                out.add("set-order")
        return out

    # -- per-function analysis ---------------------------------------

    def _returns_param_derived(self, qualname: str) -> bool:
        cached = self._param_derived_cache.get(qualname)
        if cached is not None:
            return cached
        fn = self.graph.index.functions[qualname]
        params = set(fn.params)
        derived = set(params)
        for _ in range(2):
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign) and isinstance(node.value, (ast.Name, ast.Call, ast.Attribute, ast.Subscript, ast.BinOp)):
                    used = {
                        n.id for n in ast.walk(node.value) if isinstance(n, ast.Name)
                    }
                    if used & derived:
                        for t in node.targets:
                            if isinstance(t, ast.Name):
                                derived.add(t.id)
        result = False
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                used = {n.id for n in ast.walk(node.value) if isinstance(n, ast.Name)}
                if used & derived:
                    result = True
                    break
        self._param_derived_cache[qualname] = result
        return result

    def _analyze_fn(self, qualname: str, report: Optional[List[FlowIssue]]) -> bool:
        """One pass over a function; returns True if global state changed."""
        fn = self.graph.index.functions[qualname]
        ctx = self.graph.context(qualname)
        env: Dict[str, Set[str]] = {}
        changed = False
        summ = self.summaries[qualname]
        summ.returns_param_derived = self._returns_param_derived(qualname)

        body_nodes = [
            n
            for n in ast.walk(fn.node)
            if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            or n is fn.node
        ]
        for _ in range(2):  # flow-insensitive: two passes to settle locals
            for node in body_nodes:
                if isinstance(node, ast.Assign):
                    kinds = self._expr(node.value, env, ctx)
                    if _is_set_valued(node.value):
                        pass  # a set object itself is fine; iteration taints
                    for t in node.targets:
                        if isinstance(t, ast.Name):
                            env.setdefault(t.id, set()).update(kinds)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    if isinstance(node.target, ast.Name):
                        env.setdefault(node.target.id, set()).update(
                            self._expr(node.value, env, ctx)
                        )
                elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                    kinds = self._expr(node.value, env, ctx) - {"set-order"}
                    env.setdefault(node.target.id, set()).update(kinds)
                elif isinstance(node, ast.For):
                    kinds = self._expr(node.iter, env, ctx)
                    if _is_set_valued(node.iter) and not self.line_suppressed(
                        fn.path, node.iter.lineno
                    ):
                        kinds = kinds | {"set-order"}
                    for t in ast.walk(node.target):
                        if isinstance(t, ast.Name):
                            env.setdefault(t.id, set()).update(kinds)

        # Returns → summary.
        for node in body_nodes:
            if isinstance(node, ast.Return) and node.value is not None:
                kinds = self._expr(node.value, env, ctx)
                if kinds - summ.returns:
                    summ.returns |= kinds
                    changed = True

        # Attribute stores → attr map (and DET153 when reporting).
        for node in body_nodes:
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            kinds = self._expr(node.value, env, ctx)
            if not kinds:
                continue
            for t in targets:
                leaf = t
                if isinstance(leaf, ast.Subscript):
                    leaf = leaf.value
                if not isinstance(leaf, ast.Attribute):
                    continue
                ref = classify(leaf.value, ctx)
                grounded = bool(ref.types) or (ref.kind == "self" and not ref.attrs)
                classes = set(ref.types)
                if ref.kind == "self" and not ref.attrs and ctx.fn.cls:
                    classes.add(ctx.fn.cls)
                for cls in classes:
                    key = (cls, leaf.attr)
                    have = self.attr_map.setdefault(key, set())
                    if kinds - have:
                        have |= kinds
                        changed = True
                if report is not None and grounded and not self.line_suppressed(fn.path, leaf.lineno):
                    owner = sorted(classes)[0].rsplit(".", 1)[-1] if classes else "?"
                    report.append(
                        FlowIssue(
                            "DET153",
                            fn.path,
                            leaf.lineno,
                            f"nondeterministic value ({', '.join(sorted(kinds))}) "
                            f"stored into `{owner}.{leaf.attr}` in {qualname}",
                            qualname,
                            f"{owner}.{leaf.attr}:{'+'.join(sorted(kinds))}",
                        )
                    )

        # Sinks: scheduling and fingerprint calls.
        if report is not None:
            for edge in self.graph.edges(qualname):
                arg_kinds: Set[str] = set()
                for arg in edge.node.args:
                    inner = arg.value if isinstance(arg, ast.Starred) else arg
                    arg_kinds |= self._expr(inner, env, ctx)
                for kw in edge.node.keywords:
                    arg_kinds |= self._expr(kw.value, env, ctx)
                if not arg_kinds or self.line_suppressed(fn.path, edge.line):
                    continue
                if _is_schedule_edge(edge, self.config):
                    report.append(
                        FlowIssue(
                            "DET152",
                            fn.path,
                            edge.line,
                            f"nondeterministic value ({', '.join(sorted(arg_kinds))}) "
                            f"reaches event scheduling `{edge.callee_name}` in {qualname}",
                            qualname,
                            f"sched:{edge.callee_name}:{'+'.join(sorted(arg_kinds))}",
                        )
                    )
                elif edge.callee_name in self.config.fingerprint_calls:
                    report.append(
                        FlowIssue(
                            "DET151",
                            fn.path,
                            edge.line,
                            f"nondeterministic value ({', '.join(sorted(arg_kinds))}) "
                            f"reaches fingerprint call `{edge.callee_name}` in {qualname}",
                            qualname,
                            f"fp:{edge.callee_name}:{'+'.join(sorted(arg_kinds))}",
                        )
                    )
        return changed


def check_taint(
    graph: CallGraph,
    config: FlowConfig,
    line_suppressed: Callable[[str, int], bool],
    max_rounds: int = 8,
) -> Tuple[List[FlowIssue], Dict[str, int]]:
    """Run the DET15x whole-program taint pass."""
    tp = _TaintPass(graph, config, line_suppressed)
    order = sorted(graph.index.functions)
    for _ in range(max_rounds):
        changed = False
        for qualname in order:
            if tp._analyze_fn(qualname, report=None):
                changed = True
        if not changed:
            break
    issues: List[FlowIssue] = []
    for qualname in order:
        tp._analyze_fn(qualname, report=issues)
    tainted_attrs = sum(1 for kinds in tp.attr_map.values() if kinds)
    stats = {
        "tainted_attributes": tainted_attrs,
        "tainted_returns": sum(1 for s in tp.summaries.values() if s.returns),
    }
    return issues, stats
