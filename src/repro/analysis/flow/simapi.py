"""SIM6xx simulator-API misuse checks.

* **SIM601** (error) — a scheduling call's delay argument constant-folds
  to a negative number (``sim.call_after(-1, ...)``); the simulator
  raises at runtime, the analysis catches it before any run.
* **SIM602** (warning) — a scheduling call on a receiver that may be
  ``None`` (a local assigned ``None`` and never given a simulator type,
  or a ``self`` attribute the index saw initialised to ``None``): an
  event scheduled on a dead simulator.
* **SIM603** (error) — a dropped coroutine: an expression statement
  calling a function all of whose resolved targets are generators. The
  generator object is created and discarded without ever being
  iterated, so the modelled work silently never happens (the classic
  missing ``yield from``).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Tuple

from .callgraph import LOCAL, SELF, CallGraph
from .config import FlowConfig
from .effects import FlowIssue, _is_schedule_edge

__all__ = ["check_simapi"]


def _const_fold(expr: ast.AST) -> Optional[float]:
    """Fold numeric constant expressions; None when not foldable."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
        return float(expr.value)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, (ast.USub, ast.UAdd)):
        inner = _const_fold(expr.operand)
        if inner is None:
            return None
        return -inner if isinstance(expr.op, ast.USub) else inner
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
    ):
        left, right = _const_fold(expr.left), _const_fold(expr.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            return left / right
        except ZeroDivisionError:
            return None
    return None


def _delay_arg(call: ast.Call) -> Optional[ast.AST]:
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg in ("delay", "dt"):
            return kw.value
    return None


def check_simapi(
    graph: CallGraph,
    config: FlowConfig,
    line_suppressed: Callable[[str, int], bool],
) -> Tuple[List[FlowIssue], Dict[str, int]]:
    issues: List[FlowIssue] = []
    dropped = 0
    for qualname, fn in graph.index.functions.items():
        ctx = graph.context(qualname)
        expr_stmt_calls = {
            id(stmt.value)
            for stmt in ast.walk(fn.node)
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)
        }
        for edge in graph.edges(qualname):
            if line_suppressed(fn.path, edge.line):
                continue
            if _is_schedule_edge(edge, config):
                if edge.callee_name == "call_after":
                    delay = _delay_arg(edge.node)
                    value = _const_fold(delay) if delay is not None else None
                    if value is not None and value < 0:
                        issues.append(
                            FlowIssue(
                                "SIM601",
                                fn.path,
                                edge.line,
                                f"`call_after` delay folds to {value:g} < 0 "
                                f"in {qualname}; the simulator will raise",
                                qualname,
                                f"delay:{value:g}",
                            )
                        )
                recv = edge.receiver
                if recv is not None:
                    dead = False
                    if (
                        recv.kind == LOCAL
                        and not recv.attrs
                        and recv.name in ctx.maybe_none
                        and not recv.types
                    ):
                        dead = True
                    elif recv.kind == SELF and len(recv.attrs) == 1 and ctx.fn.cls:
                        cls_info = graph.index.classes.get(ctx.fn.cls)
                        if (
                            cls_info is not None
                            and recv.attrs[0] in cls_info.attr_maybe_none
                            and not recv.types
                        ):
                            dead = True
                    if dead:
                        issues.append(
                            FlowIssue(
                                "SIM602",
                                fn.path,
                                edge.line,
                                f"`{edge.callee_name}` on possibly-None "
                                f"simulator `{recv.describe()}` in {qualname}",
                                qualname,
                                f"dead:{recv.describe()}",
                            )
                        )
            # SIM603: dropped coroutine.
            if (
                id(edge.node) in expr_stmt_calls
                and edge.targets
                and edge.kind == "direct"
            ):
                target_fns = [
                    graph.index.functions[t]
                    for t in edge.targets
                    if t in graph.index.functions
                ]
                if target_fns and all(t.is_generator for t in target_fns):
                    dropped += 1
                    issues.append(
                        FlowIssue(
                            "SIM603",
                            fn.path,
                            edge.line,
                            f"call to generator `{edge.callee_name}` is never"
                            f" iterated in {qualname}; missing `yield from`?",
                            qualname,
                            f"drop:{edge.callee_name}",
                        )
                    )
    return issues, {"dropped_coroutines": dropped}
