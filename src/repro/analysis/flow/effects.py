"""Field-write effect inference and the PUR5xx pure-observer checks.

Each function gets a local :class:`FnEffects` summary: every syntactic
state write (attribute store, subscript store, mutating container call,
``del``, global assignment) grounded — where the receiver's class could
be inferred — to an owning ``(class, attr)`` pair, plus the scheduling
and RNG calls the function makes directly. Summaries compose over the
call graph by fixpoint: a caller inherits its callees' grounded writes,
and callee *parameter* writes are re-grounded through the caller's
argument expressions.

The PUR5xx judgment walks the functions reachable from the configured
observer entry points (``repro.obs`` hooks, sanitizer callbacks) and
flags local effects there:

* **PUR501** — write to state owned by a non-observer module (error),
* **PUR502** — write whose ownership could not be resolved (warning),
* **PUR503** — observer schedules simulator events or draws RNG (error),
* **PUR504** — unresolved call leaving the audited region (warning).

Writes rooted at function-local containers constructed in the same
function are intentionally ignored: they are fresh objects the caller
owns. Aliases of ``self``/parameter state (``x = self.attr``) are
tracked and judged like direct writes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import (
    CLASS,
    COMMON_OBJECT_METHODS,
    LOCAL,
    MODULE,
    MUTATING_METHODS,
    PARAM,
    SELF,
    UNKNOWN,
    CallEdge,
    CallGraph,
    FunctionContext,
    Ref,
    classify,
)
from .config import FlowConfig

__all__ = [
    "WriteEffect",
    "ParamWrite",
    "FnEffects",
    "extract_effects",
    "propagate_effects",
    "observer_entry_points",
    "FlowIssue",
    "check_pure_observer",
]


@dataclass(frozen=True)
class WriteEffect:
    """A state write grounded to its owning class (or None if unknown)."""

    cls: Optional[str]
    attr: str
    site_fn: str
    line: int
    via: str  # attr-store | subscript-store | mutating-call | del | global-store
    detail: str = ""


@dataclass(frozen=True)
class ParamWrite:
    """A write rooted at a parameter, re-grounded at each call site."""

    param_index: int
    attr: str
    site_fn: str
    line: int
    via: str


@dataclass(frozen=True)
class SchedCall:
    """A direct scheduling or RNG call (PUR503)."""

    name: str
    line: int
    kind: str  # "schedule" | "rng"


@dataclass
class FnEffects:
    """Local (non-transitive) effect summary for one function."""

    grounded: Set[WriteEffect] = field(default_factory=set)
    param_writes: Set[ParamWrite] = field(default_factory=set)
    sched_calls: List[SchedCall] = field(default_factory=list)


def _is_schedule_edge(edge: CallEdge, config: FlowConfig) -> bool:
    if edge.callee_name not in config.schedule_methods:
        return False
    for target in edge.targets:
        parts = target.rsplit(".", 2)
        if len(parts) >= 2 and parts[-2] in config.simulator_classes:
            return True
    recv = edge.receiver
    if recv is not None:
        for cls in recv.types:
            if cls.rsplit(".", 1)[-1] in config.simulator_classes:
                return True
    return False


def _is_rng_call(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "random"
    )


def _ground_target(
    base: ast.AST, attr: str, ctx: FunctionContext, line: int, via: str
) -> Tuple[List[WriteEffect], List[ParamWrite], bool]:
    """Ground a write through ``base.attr`` (or ``base[...]``).

    Returns (grounded effects, param-rooted writes, ignored). A write is
    *ignored* when it lands on a plain function-local object.
    """
    ref = classify(base, ctx)
    qual = ctx.fn.qualname
    if ref.kind == SELF and not ref.attrs:
        cls = ctx.fn.cls
        return [WriteEffect(cls, attr, qual, line, via)], [], False
    if ref.kind == PARAM and not ref.attrs:
        return [], [ParamWrite(ref.index, attr, qual, line, via)], False
    if ref.kind == MODULE and not ref.attrs:
        return [WriteEffect(ref.name, attr, qual, line, via, "module-attr")], [], False
    if ref.types:
        return (
            [WriteEffect(cls, attr, qual, line, via) for cls in sorted(ref.types)],
            [],
            False,
        )
    if ref.kind == LOCAL:
        # Untyped local (fresh record, accumulator, comprehension var):
        # treated as function-owned. Locals aliasing self/param state
        # were already re-rooted by the alias map.
        return [], [], True
    if ref.kind == PARAM:
        # param.x.y with no type info: keep it param-rooted so the
        # caller's argument can ground it.
        return [], [ParamWrite(ref.index, attr, qual, line, via)], False
    # self.x.y with unknown attr type / anything else.
    return [WriteEffect(None, attr, qual, line, via, ref.describe())], [], False


def _extract_one(graph: CallGraph, qualname: str, config: FlowConfig) -> FnEffects:
    fn = graph.index.functions[qualname]
    ctx = graph.context(qualname)
    eff = FnEffects()

    def record(effects, params):
        eff.grounded.update(effects)
        eff.param_writes.update(params)

    stack: List[ast.AST] = list(ast.iter_child_nodes(fn.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        via_del = isinstance(node, ast.Delete)
        for target in targets:
            for leaf in _flatten_target(target):
                if isinstance(leaf, ast.Attribute):
                    grounded, params, _ = _ground_target(
                        leaf.value,
                        leaf.attr,
                        ctx,
                        leaf.lineno,
                        "del" if via_del else "attr-store",
                    )
                    record(grounded, params)
                elif isinstance(leaf, ast.Subscript):
                    base = leaf.value
                    if isinstance(base, ast.Attribute):
                        grounded, params, _ = _ground_target(
                            base.value,
                            base.attr + "[]",
                            ctx,
                            leaf.lineno,
                            "del" if via_del else "subscript-store",
                        )
                        record(grounded, params)
                    else:
                        ref = classify(base, ctx)
                        _record_container(eff, ref, ctx, leaf.lineno, "subscript-store")
        if isinstance(node, ast.Global):
            for name in node.names:
                eff.grounded.add(
                    WriteEffect(fn.module, name, qualname, node.lineno, "global-store")
                )

    # Mutating container calls and scheduling/RNG calls.
    for edge in graph.edges(qualname):
        call = edge.node
        if _is_schedule_edge(edge, config):
            eff.sched_calls.append(SchedCall(edge.callee_name, edge.line, "schedule"))
        if _is_rng_call(call):
            func = call.func
            name = f"random.{func.attr}" if isinstance(func, ast.Attribute) else "random"
            eff.sched_calls.append(SchedCall(name, edge.line, "rng"))
        if (
            edge.kind == "builtin"
            and edge.callee_name in MUTATING_METHODS
            and isinstance(call.func, ast.Attribute)
        ):
            base = call.func.value
            if isinstance(base, ast.Attribute):
                grounded, params, _ = _ground_target(
                    base.value, base.attr, ctx, edge.line, "mutating-call"
                )
                record(grounded, params)
            else:
                ref = classify(base, ctx)
                _record_container(eff, ref, ctx, edge.line, "mutating-call")
    return eff


def _record_container(
    eff: FnEffects, ref: Ref, ctx: FunctionContext, line: int, via: str
) -> None:
    """Record mutation of a container referred to by ``ref`` directly."""
    qual = ctx.fn.qualname
    if ref.kind == SELF and ref.attrs:
        # self._waiting[a][b] = ... mutates the container held at
        # (cls, first attr): ownership follows the attribute's owner.
        eff.grounded.add(WriteEffect(ctx.fn.cls, ref.attrs[0], qual, line, via))
    elif ref.kind == PARAM:
        eff.param_writes.add(
            ParamWrite(ref.index, ref.attrs[0] if ref.attrs else "", qual, line, via)
        )
    elif ref.kind == LOCAL and not ref.types:
        # Function-local container (fresh record/accumulator): owned by
        # this function, not shared state.
        return
    elif ref.types:
        for cls in sorted(ref.types):
            eff.grounded.add(
                WriteEffect(cls, ref.attrs[0] if ref.attrs else "[]", qual, line, via)
            )
    else:
        eff.grounded.add(
            WriteEffect(None, ref.attrs[-1] if ref.attrs else "", qual, line, via, ref.describe())
        )


def _flatten_target(target: ast.AST) -> List[ast.AST]:
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[ast.AST] = []
        for elt in target.elts:
            out.extend(_flatten_target(elt))
        return out
    if isinstance(target, ast.Starred):
        return _flatten_target(target.value)
    return [target]


def extract_effects(graph: CallGraph, config: FlowConfig) -> Dict[str, FnEffects]:
    """Local effect summaries for every function in the index."""
    return {
        qualname: _extract_one(graph, qualname, config)
        for qualname in graph.index.functions
    }


def propagate_effects(
    graph: CallGraph,
    local: Dict[str, FnEffects],
    max_rounds: int = 20,
) -> Dict[str, Set[WriteEffect]]:
    """Fixpoint: transitive grounded writes per function.

    Param-rooted writes in a callee are re-grounded through the caller's
    argument refs (``helper(self.inode)`` turns the callee's write into
    a write on the inode's classes).
    """
    summary: Dict[str, Set[WriteEffect]] = {
        q: set(eff.grounded) for q, eff in local.items()
    }
    for _ in range(max_rounds):
        changed = False
        for qualname in graph.index.functions:
            mine = summary[qualname]
            before = len(mine)
            for edge in graph.edges(qualname):
                for target in edge.targets:
                    mine |= summary.get(target, set())
                    for pw in local.get(target, FnEffects()).param_writes:
                        mine |= _bind_param_write(pw, edge, graph, qualname)
            if len(mine) != before:
                changed = True
        if not changed:
            break
    return summary


def _bind_param_write(
    pw: ParamWrite, edge: CallEdge, graph: CallGraph, caller: str
) -> Set[WriteEffect]:
    # Positional binding only; self (index 0 of methods) binds to the
    # receiver, remaining params shift by one.
    target_fn = graph.index.functions.get(edge.targets[0]) if edge.targets else None
    is_method_call = (
        target_fn is not None
        and target_fn.is_method
        and edge.receiver is not None
    )
    arg_pos = pw.param_index - 1 if is_method_call else pw.param_index
    if is_method_call and pw.param_index == 0:
        ref: Optional[Ref] = edge.receiver
    elif 0 <= arg_pos < len(edge.arg_refs):
        ref = edge.arg_refs[arg_pos]
    else:
        ref = None
    if ref is None:
        return {WriteEffect(None, pw.attr, pw.site_fn, pw.line, pw.via, "via-call")}
    if ref.types:
        return {
            WriteEffect(cls, pw.attr, pw.site_fn, pw.line, pw.via)
            for cls in sorted(ref.types)
        }
    if ref.kind == LOCAL and not ref.attrs:
        return set()  # fresh local passed down: caller-owned
    return {WriteEffect(None, pw.attr, pw.site_fn, pw.line, pw.via, ref.describe())}


def observer_entry_points(graph: CallGraph, config: FlowConfig) -> List[str]:
    """Qualnames of the pure-observer entry functions.

    Every public function/method in the entry modules (hooks, metric
    API, sanitizer callbacks) minus the configured setup functions.
    Private helpers are not entries themselves but are still audited
    when reachable from one.
    """
    out = []
    for qualname, fn in graph.index.functions.items():
        if not config.is_entry_module(fn.module):
            continue
        if qualname in config.entry_exclude:
            continue
        if fn.name.startswith("_"):
            continue
        out.append(qualname)
    return sorted(out)


@dataclass(frozen=True)
class FlowIssue:
    """One finding from a flow pass (engine turns these into findings)."""

    code: str
    path: str
    line: int
    message: str
    scope: str  # qualname of the function the finding is attributed to
    slug: str  # stable within-scope discriminator for baseline keys


def _fn_module_owned(graph: CallGraph, qualname: str, config: FlowConfig) -> bool:
    fn = graph.index.functions.get(qualname)
    return fn is not None and config.owns_module(fn.module)


def check_pure_observer(
    graph: CallGraph,
    local: Dict[str, FnEffects],
    config: FlowConfig,
) -> Tuple[List[FlowIssue], Dict[str, int]]:
    """Run PUR501–PUR504 over the observer-reachable region.

    The region is closed over *direct* edges plus heuristic edges whose
    every candidate lives in an observer-owned module; a heuristic edge
    that could land in sim code is reported (PUR504) but not traversed,
    so one shared method name cannot pull the whole simulator into the
    audited region.
    """
    entries = observer_entry_points(graph, config)
    entry_set = set(entries)

    def follow(edge: CallEdge) -> bool:
        if edge.kind == "direct":
            return True
        if edge.kind == "heuristic":
            return all(
                _fn_module_owned(graph, t, config) for t in edge.targets
            )
        return False

    reachable = graph.reachable(entries, edge_filter=follow)
    issues: List[FlowIssue] = []
    unresolved = 0

    def judge_grounded(write: WriteEffect, fn, qualname: str, is_entry: bool) -> Optional[FlowIssue]:
        if write.cls is None:
            if not is_entry:
                # Unknown-ownership writes in internal helpers are
                # overwhelmingly observer-local records; hooks are held
                # to the stricter standard.
                return None
            return FlowIssue(
                "PUR502",
                fn.path,
                write.line,
                f"observer-reachable write `{write.detail or '?'}"
                f".{write.attr}` has unresolved ownership (in {qualname})",
                qualname,
                f"{write.attr}:{write.via}",
            )
        owner_module = (
            write.cls
            if write.cls in graph.index.modules
            else write.cls.rsplit(".", 1)[0]
        )
        if config.owns_module(owner_module):
            return None
        return FlowIssue(
            "PUR501",
            fn.path,
            write.line,
            f"observer-reachable code writes non-observer state "
            f"`{write.cls.rsplit('.', 1)[-1]}.{write.attr}` "
            f"(in {qualname}, via {write.via})",
            qualname,
            f"{write.cls.rsplit('.', 1)[-1]}.{write.attr}",
        )

    for qualname in sorted(reachable):
        fn = graph.index.functions[qualname]
        eff = local.get(qualname)
        if eff is None:
            continue
        is_entry = qualname in entry_set
        unknown_reported = 0
        for write in sorted(
            eff.grounded, key=lambda w: (w.line, w.attr, w.cls or "")
        ):
            issue = judge_grounded(write, fn, qualname, is_entry)
            if issue is None:
                continue
            if issue.code == "PUR502":
                if unknown_reported >= config.max_unknown_sites:
                    continue
                unknown_reported += 1
            issues.append(issue)
        # Param-rooted writes: ground through in-region call sites; a
        # hook's own param writes stay PUR502 (hooks receive sim state).
        for pw in sorted(eff.param_writes, key=lambda p: (p.line, p.attr)):
            if is_entry:
                issues.append(
                    FlowIssue(
                        "PUR502",
                        fn.path,
                        pw.line,
                        f"observer hook writes to parameter "
                        f"`{fn.params[pw.param_index] if pw.param_index < len(fn.params) else pw.param_index}"
                        f"{'.' + pw.attr if pw.attr else ''}` "
                        f"(in {qualname}; sim objects must stay read-only)",
                        qualname,
                        f"param:{pw.param_index}:{pw.attr}",
                    )
                )
        for sched in eff.sched_calls:
            issues.append(
                FlowIssue(
                    "PUR503",
                    fn.path,
                    sched.line,
                    f"observer-reachable code calls `{sched.name}` "
                    f"({'schedules simulator events' if sched.kind == 'schedule' else 'draws RNG'}) "
                    f"in {qualname}",
                    qualname,
                    f"{sched.kind}:{sched.name}",
                )
            )
        escapes_reported = 0
        for edge in graph.edges(qualname):
            if edge.kind == "unresolved":
                unresolved += 1
                if edge.callee_name in ("__init__", "<expr>"):
                    continue
                if edge.callee_name in COMMON_OBJECT_METHODS:
                    continue  # counted in stats; almost surely dict/str
                if escapes_reported >= config.max_unknown_sites:
                    continue
                escapes_reported += 1
                issues.append(
                    FlowIssue(
                        "PUR504",
                        fn.path,
                        edge.line,
                        f"unresolved call `{edge.callee_name}(...)` from "
                        f"observer-reachable {qualname}; effects unknown",
                        qualname,
                        f"call:{edge.callee_name}",
                    )
                )
            elif edge.kind == "heuristic" and not follow(edge):
                unresolved += 1
                if escapes_reported >= config.max_unknown_sites:
                    continue
                escapes_reported += 1
                issues.append(
                    FlowIssue(
                        "PUR504",
                        fn.path,
                        edge.line,
                        f"call `{edge.callee_name}(...)` from "
                        f"observer-reachable {qualname} may land in "
                        f"non-observer code (unresolved receiver); not traversed",
                        qualname,
                        f"escape:{edge.callee_name}",
                    )
                )
        # Ground in-region param writes of direct callees through this
        # caller's argument refs (one binding level).
        for edge in graph.edges(qualname):
            if edge.kind != "direct":
                continue
            for target in edge.targets:
                teff = local.get(target)
                if teff is None:
                    continue
                tfn = graph.index.functions[target]
                for pw in teff.param_writes:
                    for write in _bind_param_write(pw, edge, graph, qualname):
                        issue = judge_grounded(write, tfn, target, is_entry=False)
                        if issue is not None and issue not in issues:
                            issues.append(issue)

    stats = {
        "entry_points": len(entries),
        "reachable_functions": len(reachable),
        "unresolved_calls_in_region": unresolved,
    }
    return issues, stats
