"""Whole-package module index: the ground truth every flow pass shares.

The :class:`PackageIndex` parses every module under one package root
with :mod:`ast` (stdlib only) and records what the interprocedural
passes need to resolve names across files:

* module name ↔ path mapping (``repro.sim.core`` ← ``src/repro/sim/core.py``),
* import tables per module (``import x as y`` aliases and ``from .. import z``
  targets, with relative-import levels resolved against the module name),
* every function, method, and nested function with its parameters,
  parameter annotations, and whether it is a *generator coroutine*
  (contains a ``yield`` outside nested defs — the simulator's task
  idiom),
* every class with its base classes (resolved through the import
  tables where possible), its method table, and two per-attribute
  heuristics mined from ``self.<attr> = ...`` assignments: the set of
  classes the attribute may hold (constructor calls, annotated
  parameters) and whether it may be ``None``.

Nothing here is exact type inference — it is the deliberately simple
assignment-heuristic layer the issue calls for, and every consumer
treats a miss as "unresolved", never as "safe".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "PackageIndex",
    "build_index",
]


def _contains_yield(node: ast.AST) -> bool:
    """True when the function body yields outside nested defs."""
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _contains_yield(child):
            return True
    return False


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """The dotted name of a simple annotation, unquoting strings."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip('"')
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _annotation_name(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Subscript):  # Optional[X] / List[X]
        base = _annotation_name(node.value)
        if base in ("Optional",):
            return _annotation_name(node.slice)
        return None
    return None


@dataclass
class FunctionInfo:
    """One function, method, or nested function."""

    qualname: str  # repro.obs.core.Observability.count
    module: str
    name: str
    cls: Optional[str]  # owning class qualname, or None
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    path: str
    lineno: int
    params: List[str] = field(default_factory=list)
    #: param name -> annotated dotted type name (unresolved).
    annotations: Dict[str, str] = field(default_factory=dict)
    is_generator: bool = False

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass
class ClassInfo:
    """One class definition plus attribute-assignment heuristics."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    path: str
    lineno: int
    #: Base-class qualnames where resolvable, raw dotted names otherwise.
    bases: List[str] = field(default_factory=list)
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: self.<attr> -> possible class qualnames (constructor heuristics).
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)
    #: attributes that are assigned ``None`` somewhere.
    attr_maybe_none: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution tables."""

    name: str
    path: str
    tree: ast.Module
    #: local alias -> absolute module name (``import repro.sim as s``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: local name -> absolute dotted target (``from .sim import RngStreams``).
    from_names: Dict[str, str] = field(default_factory=dict)
    #: top-level function/class names defined here.
    toplevel: Set[str] = field(default_factory=set)


@dataclass
class SyntaxFailure:
    """A file the index could not parse (reported as FLW001)."""

    path: str
    line: int
    message: str


class PackageIndex:
    """Everything the flow passes know about the analysed package."""

    def __init__(self, root_package: str):
        #: Name of the root package (``repro``).
        self.root_package = root_package
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> qualnames of every index function with that name.
        self.methods_by_name: Dict[str, List[str]] = {}
        self.failures: List[SyntaxFailure] = []
        self._mro_cache: Dict[str, List[str]] = {}

    # -- name resolution -----------------------------------------------------

    def resolve_name(self, name: str, module: str) -> Optional[str]:
        """Resolve a local dotted name in ``module`` to an index qualname.

        Returns a module, class, or function qualname — whichever the
        name denotes — or None when the name leaves the index (stdlib,
        builtins, third party).
        """
        mod = self.modules.get(module)
        if mod is None:
            return None
        head, _, rest = name.partition(".")
        target: Optional[str] = None
        if head in mod.from_names:
            target = mod.from_names[head]
        elif head in mod.imports:
            target = mod.imports[head]
        elif head in mod.toplevel:
            target = f"{module}.{head}"
        if target is None:
            return None
        if rest:
            target = f"{target}.{rest}"
        # Normalise package re-exports: repro.sim.RngStreams is really
        # defined in repro.sim.rng; chase one __init__ re-export level.
        if target in self.classes or target in self.functions or target in self.modules:
            return target
        parent, _, leaf = target.rpartition(".")
        pkg = self.modules.get(parent)
        if pkg is not None and leaf in pkg.from_names:
            return pkg.from_names[leaf]
        return target

    def resolve_class(self, name: str, module: str) -> Optional[str]:
        resolved = self.resolve_name(name, module)
        if resolved in self.classes:
            return resolved
        return None

    def mro(self, class_qualname: str) -> List[str]:
        """The class plus its in-index ancestors, depth-first."""
        cached = self._mro_cache.get(class_qualname)
        if cached is not None:
            return cached
        seen: List[str] = []
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.append(current)
            info = self.classes.get(current)
            if info is None:
                continue
            for base in info.bases:
                resolved = self.resolve_class(base, info.module) or base
                if resolved not in seen:
                    stack.append(resolved)
        self._mro_cache[class_qualname] = seen
        return seen

    def lookup_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Find ``method`` on the class or an in-index ancestor."""
        for cls in self.mro(class_qualname):
            info = self.classes.get(cls)
            if info is not None and method in info.methods:
                return info.methods[method]
        return None

    def attr_types(self, class_qualname: str, attr: str) -> Set[str]:
        """Possible classes of ``self.<attr>`` across the class's MRO."""
        out: Set[str] = set()
        for cls in self.mro(class_qualname):
            info = self.classes.get(cls)
            if info is not None and attr in info.attr_types:
                out |= info.attr_types[attr]
        return out

    # -- construction ----------------------------------------------------------

    def _register_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self.methods_by_name.setdefault(info.name, []).append(info.qualname)


def _module_name(path: Path, root: Path, root_package: str) -> str:
    rel = path.relative_to(root)
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([root_package] + parts) if parts else root_package


def _absolute_import(module: str, node: ast.ImportFrom, is_package: bool) -> str:
    """The absolute module an ``ImportFrom`` refers to."""
    if not node.level:
        return node.module or ""
    parts = module.split(".")
    # Level 1 from inside a package __init__ refers to the package itself.
    anchor = parts if is_package else parts[:-1]
    if node.level > 1:
        anchor = anchor[: len(anchor) - (node.level - 1)]
    base = ".".join(anchor)
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base


class _ModuleCollector(ast.NodeVisitor):
    """One pass over a module collecting defs, imports, and classes."""

    def __init__(self, index: PackageIndex, mod: ModuleInfo, is_package: bool):
        self.index = index
        self.mod = mod
        self.is_package = is_package
        #: qualname prefix stack under the module (classes/functions).
        self.scope: List[str] = []
        self.class_stack: List[ClassInfo] = []
        #: (owner, fn node, info) triples mined after the full parse.
        self._pending_mines: List[Tuple[ClassInfo, ast.AST, FunctionInfo]] = []

    def run_deferred_mines(self) -> None:
        for owner, node, info in self._pending_mines:
            self._mine_self_assignments(owner, node, info)
        self._pending_mines = []

    # -- imports ---------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            target = alias.name if alias.asname else alias.name.partition(".")[0]
            self.mod.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = _absolute_import(self.mod.name, node, self.is_package)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.mod.from_names[local] = f"{base}.{alias.name}" if base else alias.name

    # -- defs ------------------------------------------------------------------

    def _qual(self, name: str) -> str:
        return ".".join([self.mod.name] + self.scope + [name])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        info = ClassInfo(
            qualname=qual,
            module=self.mod.name,
            name=node.name,
            node=node,
            path=self.mod.path,
            lineno=node.lineno,
            bases=[b for b in (_annotation_name(base) for base in node.bases) if b],
        )
        self.index.classes[qual] = info
        if not self.scope:
            self.mod.toplevel.add(node.name)
        self.scope.append(node.name)
        self.class_stack.append(info)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    def _visit_func(self, node) -> None:
        qual = self._qual(node.name)
        owner = self.class_stack[-1] if self.class_stack else None
        in_class_body = owner is not None and self.scope and self.scope[-1] == owner.name
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        annotations = {
            a.arg: name
            for a in args.posonlyargs + args.args + args.kwonlyargs
            if (name := _annotation_name(a.annotation)) is not None
        }
        info = FunctionInfo(
            qualname=qual,
            module=self.mod.name,
            name=node.name,
            cls=owner.qualname if in_class_body else None,
            node=node,
            path=self.mod.path,
            lineno=node.lineno,
            params=params,
            annotations=annotations,
            is_generator=_contains_yield(node),
        )
        self.index._register_function(info)
        if in_class_body:
            owner.methods[node.name] = qual
            # Deferred until every module is indexed: `self.x = Server()`
            # must resolve Server even when its defining module sorts
            # after this one.
            self._pending_mines.append((owner, node, info))
        if not self.scope:
            self.mod.toplevel.add(node.name)
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    # -- self.<attr> heuristics ------------------------------------------------

    def _value_classes(
        self, value: ast.AST, info: FunctionInfo
    ) -> Tuple[Set[str], bool]:
        """(possible class names, may_be_none) for an assigned value."""
        if isinstance(value, ast.Constant):
            return set(), value.value is None
        if isinstance(value, ast.IfExp):
            body_cls, body_none = self._value_classes(value.body, info)
            else_cls, else_none = self._value_classes(value.orelse, info)
            return body_cls | else_cls, body_none or else_none
        if isinstance(value, ast.BoolOp):
            out: Set[str] = set()
            none = False
            for operand in value.values:
                cls, n = self._value_classes(operand, info)
                out |= cls
                none = none or n
            return out, none
        if isinstance(value, ast.Call):
            name = _annotation_name(value.func)
            if name:
                resolved = self.index.resolve_class(name, self.mod.name)
                if resolved:
                    return {resolved}, False
            return set(), False
        if isinstance(value, ast.Name):
            annotated = info.annotations.get(value.id)
            if annotated:
                resolved = self.index.resolve_class(annotated, self.mod.name)
                if resolved:
                    return {resolved}, False
            return set(), False
        return set(), False

    def _mine_self_assignments(
        self, owner: ClassInfo, node, info: FunctionInfo
    ) -> None:
        if not info.params:
            return
        self_name = info.params[0]
        for stmt in ast.walk(node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                # A bare annotation still names the attribute's type.
                targets, value = [stmt.target], None
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    continue
                attr = target.attr
                bucket = owner.attr_types.setdefault(attr, set())
                if value is None and isinstance(stmt, ast.AnnAssign):
                    name = _annotation_name(stmt.annotation)
                    resolved = (
                        self.index.resolve_class(name, self.mod.name) if name else None
                    )
                    if resolved:
                        bucket.add(resolved)
                    continue
                if value is not None:
                    classes, maybe_none = self._value_classes(value, info)
                    bucket |= classes
                    if maybe_none:
                        owner.attr_maybe_none.add(attr)
                if isinstance(stmt, ast.AnnAssign) and stmt.annotation is not None:
                    name = _annotation_name(stmt.annotation)
                    resolved = (
                        self.index.resolve_class(name, self.mod.name) if name else None
                    )
                    if resolved:
                        bucket.add(resolved)


def _iter_module_files(root: Path) -> List[Path]:
    return [
        p
        for p in sorted(root.rglob("*.py"))
        if "__pycache__" not in p.parts
    ]


def build_index(
    package_root: Union[str, Path], root_package: Optional[str] = None
) -> PackageIndex:
    """Parse every module under ``package_root`` into a PackageIndex.

    ``package_root`` is the directory of the package itself (the one
    containing ``__init__.py``); ``root_package`` defaults to the
    directory's name.
    """
    root = Path(package_root).resolve()
    name = root_package or root.name
    index = PackageIndex(name)
    collectors: List[_ModuleCollector] = []
    for path in _iter_module_files(root):
        mod_name = _module_name(path, root, name)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as err:
            index.failures.append(
                SyntaxFailure(str(path), err.lineno or 1, err.msg or "syntax error")
            )
            continue
        except OSError as err:
            index.failures.append(SyntaxFailure(str(path), 1, str(err)))
            continue
        mod = ModuleInfo(name=mod_name, path=str(path), tree=tree)
        index.modules[mod_name] = mod
        collector = _ModuleCollector(index, mod, is_package=path.name == "__init__.py")
        collector.visit(tree)
        collectors.append(collector)
    for collector in collectors:
        collector.run_deferred_mines()
    return index
