"""Orchestration for ``repro-nfs flow``: index → graph → passes → report.

Runs the whole-program analysis over one package root, applies scoped
``# noqa-flow: CODE`` suppressions (with SUP401-style staleness
reported as FLW003), diffs against the committed baseline, and renders
text or a stable JSON report (``repro-nfs/flow-report@1``).

Exit contract, matching ``repro-nfs lint``: 0 clean, 1 findings
(errors always fail, warnings only under ``--strict``), 2 usage errors
(unknown ``--select`` code, unreadable/invalid baseline).
"""

from __future__ import annotations

import io
import json
import re
import sys
import time
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .baseline import BaselineEntry, apply_baseline, load_baseline, save_baseline
from .callgraph import build_callgraph
from .config import DEFAULT_CONFIG, FlowConfig
from .effects import FlowIssue, check_pure_observer, extract_effects
from .locks import check_locks
from .modindex import build_index
from .simapi import check_simapi
from .taint import check_taint

__all__ = [
    "FLOW_RULES",
    "FlowFinding",
    "FlowReport",
    "analyze",
    "default_flow_root",
    "run_flow",
    "REPORT_SCHEMA",
]

REPORT_SCHEMA = "repro-nfs/flow-report@1"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class FlowRule:
    code: str
    name: str
    severity: str
    summary: str


_FLOW_RULE_LIST = [
    FlowRule("FLW001", "syntax-error", SEVERITY_ERROR, "file does not parse; excluded from the whole-program graph"),
    FlowRule("FLW002", "stale-baseline-entry", SEVERITY_ERROR, "baseline entry matches no current finding; remove it"),
    FlowRule("FLW003", "stale-noqa-flow", SEVERITY_WARNING, "noqa-flow comment suppresses no finding on this line"),
    FlowRule("PUR501", "impure-observer-write", SEVERITY_ERROR, "observer-reachable code writes non-observer state"),
    FlowRule("PUR502", "unresolved-ownership-write", SEVERITY_WARNING, "observer-reachable write whose owner could not be resolved"),
    FlowRule("PUR503", "observer-schedules-or-draws", SEVERITY_ERROR, "observer-reachable code schedules events or draws RNG"),
    FlowRule("PUR504", "observer-unresolved-call", SEVERITY_WARNING, "unresolved call escapes the audited observer region"),
    FlowRule("DET151", "taint-reaches-fingerprint", SEVERITY_ERROR, "nondeterministic value flows into a fingerprint"),
    FlowRule("DET152", "taint-reaches-scheduler", SEVERITY_ERROR, "nondeterministic value flows into event scheduling"),
    FlowRule("DET153", "tainted-state-write", SEVERITY_WARNING, "nondeterministic value stored into object state"),
    FlowRule("LCK701", "bkl-break-without-reacquire", SEVERITY_ERROR, "break_all without a finally-protected reacquire"),
    FlowRule("LCK702", "blocking-call-in-handler", SEVERITY_ERROR, "blocking/forbidden call reachable from event handlers"),
    FlowRule("SIM601", "negative-delay", SEVERITY_ERROR, "call_after delay constant-folds negative"),
    FlowRule("SIM602", "dead-simulator-schedule", SEVERITY_WARNING, "scheduling on a possibly-None simulator"),
    FlowRule("SIM603", "dropped-coroutine", SEVERITY_ERROR, "generator call never iterated (missing yield from)"),
]

FLOW_RULES: Dict[str, FlowRule] = {r.code: r for r in _FLOW_RULE_LIST}


@dataclass(frozen=True)
class FlowFinding:
    """One flow finding with its stable baseline key."""

    code: str
    path: str  # absolute path as analysed
    rel: str  # path relative to the package root's parent
    line: int
    message: str
    severity: str
    scope: str
    slug: str

    @property
    def key(self) -> str:
        return f"{self.code}::{self.rel}::{self.scope}::{self.slug}"

    def render(self) -> str:
        return f"{self.rel}:{self.line}: {self.code} {self.message}"


@dataclass
class FlowReport:
    root: str
    findings: List[FlowFinding]
    stats: Dict[str, int]


# -- noqa-flow suppressions --------------------------------------------------

_NOQA_FLOW_RE = re.compile(
    r"#\s*noqa-flow:\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)
#: Lines carrying a syntactic DET noqa (bare, or listing a DET code
#: such as DET102 on a ``time.time()`` read) also silence the matching
#: taint *source* under DET15x.
_NOQA_DET_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]{2,4}\d{3}(?:\s*,\s*[A-Z]{2,4}\d{3})*))?"
)


def _scan_file_suppressions(
    source: str,
) -> Tuple[Dict[int, List[object]], Set[int]]:
    """(noqa-flow line -> [codes, used], source-silenced lines)."""
    flow: Dict[int, List[object]] = {}
    silenced: Set[int] = set()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            line = token.start[0]
            match = _NOQA_FLOW_RE.search(token.string)
            if match is not None:
                # Tracked per-code in the engine, never via `silenced`:
                # a wrong-code noqa-flow must not hide other findings.
                codes = frozenset(
                    c.strip() for c in match.group("codes").split(",")
                )
                flow[line] = [codes, False]
                continue
            match = _NOQA_DET_RE.search(token.string)
            if match is not None:
                raw = match.group("codes")
                if raw is None or any(
                    c.strip().startswith("DET") for c in raw.split(",")
                ):
                    silenced.add(line)
    except tokenize.TokenError:
        pass
    return flow, silenced


# -- analysis ----------------------------------------------------------------


def default_flow_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parents[2]


def _relpath(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(root.resolve().parent).as_posix()
    except ValueError:
        return Path(path).name


def analyze(
    root: Optional[Union[str, Path]] = None,
    config: Optional[FlowConfig] = None,
) -> FlowReport:
    """Run all flow passes over one package root."""
    started = time.perf_counter()  # noqa: DET102 host-side timing only
    root_path = Path(root) if root is not None else default_flow_root()
    if config is not None:
        cfg = config
    elif root is None:
        cfg = DEFAULT_CONFIG
    else:
        cfg = FlowConfig(root_package=root_path.name)
    index = build_index(root_path, root_package=cfg.root_package)
    graph = build_callgraph(index)

    # Per-file suppressions, keyed by the absolute path the index uses.
    flow_noqa: Dict[str, Dict[int, List[object]]] = {}
    silenced: Dict[str, Set[int]] = {}
    for mod in index.modules.values():
        try:
            source = Path(mod.path).read_text(encoding="utf-8")
        except OSError:
            continue
        flow_noqa[mod.path], silenced[mod.path] = _scan_file_suppressions(source)

    def line_suppressed(path: str, line: int) -> bool:
        return line in silenced.get(path, ())

    issues: List[FlowIssue] = []
    stats: Dict[str, int] = {}
    local = extract_effects(graph, cfg)
    pur, pur_stats = check_pure_observer(graph, local, cfg)
    det, det_stats = check_taint(graph, cfg, line_suppressed)
    lck, lck_stats = check_locks(graph, cfg, line_suppressed)
    sim, sim_stats = check_simapi(graph, cfg, line_suppressed)
    issues.extend(pur)
    issues.extend(det)
    issues.extend(lck)
    issues.extend(sim)
    stats.update(pur_stats)
    stats.update(det_stats)
    stats.update(lck_stats)
    stats.update(sim_stats)
    stats.update(graph.stats())

    findings: List[FlowFinding] = []
    for failure in index.failures:
        findings.append(
            FlowFinding(
                code="FLW001",
                path=failure.path,
                rel=_relpath(failure.path, root_path),
                line=failure.line,
                message=f"syntax error: {failure.message}",
                severity=SEVERITY_ERROR,
                scope="<module>",
                slug="syntax",
            )
        )

    # Apply noqa-flow suppressions.
    for issue in issues:
        entry = flow_noqa.get(issue.path, {}).get(issue.line)
        if entry is not None and issue.code in entry[0]:
            entry[1] = True
            continue
        findings.append(
            FlowFinding(
                code=issue.code,
                path=issue.path,
                rel=_relpath(issue.path, root_path),
                line=issue.line,
                message=issue.message,
                severity=FLOW_RULES[issue.code].severity,
                scope=issue.scope,
                slug=issue.slug,
            )
        )

    # FLW003: stale noqa-flow comments.
    for path, entries in sorted(flow_noqa.items()):
        for line, (codes, used) in sorted(entries.items()):
            if used:
                continue
            findings.append(
                FlowFinding(
                    code="FLW003",
                    path=path,
                    rel=_relpath(path, root_path),
                    line=line,
                    message=f"noqa-flow ({','.join(sorted(codes))}) suppresses "
                    "no finding on this line; remove it",
                    severity=SEVERITY_WARNING,
                    scope="<module>",
                    slug=f"stale:{','.join(sorted(codes))}",
                )
            )

    findings.sort(key=lambda f: (f.rel, f.line, f.code, f.slug))
    elapsed = time.perf_counter() - started  # noqa: DET102 host timing
    stats["elapsed_ms"] = int(elapsed * 1000)
    stats["findings"] = len(findings)
    return FlowReport(root=str(root_path), findings=findings, stats=stats)


# -- CLI driver --------------------------------------------------------------


def _stale_finding(entry: BaselineEntry, root: str) -> FlowFinding:
    parts = entry.key.split("::")
    rel = parts[1] if len(parts) > 1 else "<baseline>"
    return FlowFinding(
        code="FLW002",
        path=rel,
        rel=rel,
        line=0,
        message=f"baseline entry `{entry.key}` matches no current finding; "
        "remove it from the baseline",
        severity=SEVERITY_ERROR,
        scope=parts[2] if len(parts) > 2 else "<baseline>",
        slug=entry.key,
    )


def run_flow(
    root: Optional[str] = None,
    strict: bool = False,
    select: Optional[str] = None,
    fmt: str = "text",
    baseline: Optional[str] = None,
    write_baseline: Optional[str] = None,
    out=None,
    config: Optional[FlowConfig] = None,
) -> int:
    """CLI driver for ``repro-nfs flow`` (and ``lint --deep``)."""
    if out is None:
        out = sys.stdout
    selected: Optional[Set[str]] = None
    if select:
        codes = [c.strip() for c in select.split(",") if c.strip()]
        unknown = [c for c in codes if c not in FLOW_RULES]
        if unknown:
            out.write(f"unknown rule code(s): {', '.join(unknown)}\n")
            out.write(f"known codes: {', '.join(sorted(FLOW_RULES))}\n")
            return 2
        selected = set(codes)

    report = analyze(root, config=config)
    findings = report.findings

    if write_baseline:
        # Carry forward justifications for entries that survive the
        # regeneration; new entries get the placeholder to fill in.
        kept: Dict[str, str] = {}
        if Path(write_baseline).exists():
            try:
                kept = {
                    key: entry.justification
                    for key, entry in load_baseline(write_baseline).items()
                    if entry.justification
                }
            except (OSError, ValueError, json.JSONDecodeError):
                kept = {}
        save_baseline(write_baseline, findings, justifications=kept)
        out.write(
            f"wrote {len({f.key for f in findings})} baseline entrie(s) to "
            f"{write_baseline}\n"
        )
        return 0

    matched = 0
    if baseline:
        try:
            entries = load_baseline(baseline)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            out.write(f"cannot load baseline: {err}\n")
            return 2
        findings, matched, stale = apply_baseline(findings, entries)
        findings.extend(_stale_finding(entry, report.root) for entry in stale)
        findings.sort(key=lambda f: (f.rel, f.line, f.code, f.slug))

    if selected is not None:
        findings = [f for f in findings if f.code in selected]

    errors = [f for f in findings if f.severity == SEVERITY_ERROR]
    warnings = [f for f in findings if f.severity == SEVERITY_WARNING]

    if fmt == "json":
        payload = {
            "schema": REPORT_SCHEMA,
            "root": report.root,
            "stats": report.stats,
            "baseline": {"matched": matched},
            "findings": [
                {
                    "code": f.code,
                    "path": f.rel,
                    "line": f.line,
                    "severity": f.severity,
                    "message": f.message,
                    "scope": f.scope,
                    "key": f.key,
                }
                for f in findings
            ],
        }
        out.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    else:
        for finding in findings:
            out.write(finding.render() + "\n")
        out.write(
            f"{len(findings)} finding(s): {len(errors)} error(s), "
            f"{len(warnings)} warning(s)"
            + (f"; {matched} baselined" if baseline else "")
            + f" [{report.stats.get('elapsed_ms', 0)} ms, "
            f"{report.stats.get('functions', 0)} functions, "
            f"{report.stats.get('unresolved', 0)} unresolved calls]\n"
        )

    failed = bool(errors) or (strict and bool(warnings))
    return 1 if failed else 0
