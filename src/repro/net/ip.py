"""IP fragmentation model.

An 8 KB NFS WRITE over UDP does not fit a 1500-byte Ethernet frame, so
the IP layer fragments it — the paper suspects this fragmentation and
reassembly is the major part of the 50 µs/RPC network-layer cost and
names jumbo frames as the prospective fix (§3.5).  This module computes
fragment counts and wire sizes for a given MTU.
"""

from __future__ import annotations

from typing import List

from ..config import NetConfig
from ..errors import ConfigError

__all__ = ["fragment_sizes", "fragment_count"]


def fragment_sizes(payload_bytes: int, net: NetConfig) -> List[int]:
    """Wire sizes (headers included) of the fragments carrying a datagram.

    Fragment payloads are multiples of 8 bytes except the last, per the
    IP fragmentation rules; each fragment carries its own headers.
    """
    if payload_bytes < 0:
        raise ConfigError(f"negative payload {payload_bytes}")
    max_frag_payload = (net.mtu - net.header_bytes) // 8 * 8
    if max_frag_payload <= 0:
        raise ConfigError(f"MTU {net.mtu} cannot carry any payload")
    sizes: List[int] = []
    remaining = payload_bytes
    while True:
        chunk = min(remaining, max_frag_payload)
        sizes.append(chunk + net.header_bytes)
        remaining -= chunk
        if remaining <= 0:
            break
    return sizes


def fragment_count(payload_bytes: int, net: NetConfig) -> int:
    """Number of fragments a datagram of ``payload_bytes`` needs."""
    return len(fragment_sizes(payload_bytes, net))
