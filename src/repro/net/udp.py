"""UDP sockets on a simulated host.

The stack routes reassembled datagrams to bound sockets.  Send-side CPU
cost (``sock_sendmsg`` plus fragmentation work) is *not* charged here —
the caller charges it, because who pays and under which lock is exactly
the paper's subject; :meth:`UdpStack.send_cost` computes the amount.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, TYPE_CHECKING

from ..errors import ProtocolError
from ..sim import Event
from .ip import fragment_count
from .packet import Datagram

if TYPE_CHECKING:  # pragma: no cover
    from .host import Host

__all__ = ["UdpStack", "UdpSocket"]

#: Portion of the sock_sendmsg cost that is per-fragment (building,
#: checksumming and queueing one IP fragment).  Calibrated with the base
#: so a 6-fragment 8 KB WRITE costs the paper's 50 µs (§3.5).
PER_FRAGMENT_FRACTION = 0.6


class UdpSocket:
    """A bound UDP endpoint with a FIFO receive queue."""

    __slots__ = ("_stack", "port", "_queue", "_waiter", "closed", "on_deliver")

    def __init__(self, stack: "UdpStack", port: int):
        self._stack = stack
        self.port = port
        self._queue: Deque[Datagram] = deque()
        self._waiter: Optional[Event] = None
        self.closed = False
        #: Optional data-ready callback (fired on every delivery), used by
        #: daemons that poll with :meth:`try_recv` instead of blocking.
        self.on_deliver = None

    def sendto(self, dst_host: str, dst_port: int, payload: Any, size: int) -> None:
        """Hand a datagram to the wire (timing handled by the links)."""
        if self.closed:
            raise ProtocolError(f"sendto on closed socket :{self.port}")
        dgram = Datagram(
            src=self._stack.host.name,
            src_port=self.port,
            dst=dst_host,
            dst_port=dst_port,
            payload=payload,
            size=size,
        )
        self._stack.host.port.send_datagram(dgram)

    def recv(self):
        """Generator: next datagram, blocking until one arrives."""
        while not self._queue:
            if self._waiter is None:
                self._waiter = Event(self._stack.host.sim)
            yield self._waiter
        return self._queue.popleft()

    def try_recv(self) -> Optional[Datagram]:
        """Non-blocking receive: a datagram or None."""
        if self._queue:
            return self._queue.popleft()
        return None

    @property
    def pending(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        self.closed = True
        self._stack._unbind(self.port)

    def _deliver(self, dgram: Datagram) -> None:
        self._queue.append(dgram)
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.trigger()
        if self.on_deliver is not None:
            self.on_deliver()


class UdpStack:
    """Per-host socket table."""

    __slots__ = ("host", "_sockets", "delivered", "dropped_no_socket")

    def __init__(self, host: "Host"):
        self.host = host
        self._sockets: Dict[int, UdpSocket] = {}
        self.delivered = 0
        self.dropped_no_socket = 0

    def socket(self, port: int) -> UdpSocket:
        if port in self._sockets:
            raise ProtocolError(f"{self.host.name}: port {port} already bound")
        sock = UdpSocket(self, port)
        self._sockets[port] = sock
        return sock

    def send_cost(self, payload_bytes: int) -> int:
        """CPU nanoseconds ``sock_sendmsg`` burns for this datagram.

        Split into a fixed socket/UDP portion and a per-IP-fragment
        portion, so jumbo frames genuinely cut the cost (§3.5's
        future-work hypothesis).
        """
        total_ref = self.host.costs.sock_sendmsg
        ref_frags = 6  # 8 KB + RPC header at MTU 1500
        per_frag = int(total_ref * PER_FRAGMENT_FRACTION / ref_frags)
        base = total_ref - per_frag * ref_frags
        nfrags = fragment_count(payload_bytes, self.host.port.net)
        return base + per_frag * nfrags

    def deliver(self, dgram: Datagram) -> None:
        sock = self._sockets.get(dgram.dst_port)
        if sock is None or sock.closed:
            self.dropped_no_socket += 1
            return
        self.delivered += 1
        sock._deliver(dgram)

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)
