"""Store-and-forward Ethernet switch with an explicit port registry.

Each attached host gets a numbered :class:`Port` — a full-duplex pair of
links (host→switch and switch→host) plus a reassembly buffer.  Ports are
handed out by :meth:`Switch.attach` and recorded in a registry keyed by
the attached host's name; attaching a second host under an
already-registered name is a hard :class:`~repro.errors.ConfigError`,
because with implicit name-keyed wiring the second client would silently
shadow the first one's frames.

Datagrams are fragmented at the sender per the path MTU, forwarded
fragment-by-fragment, and reassembled at the destination port (kernel IP
reassembly); the receiving host is notified per fragment so it can
charge interrupt costs.  A port's *downlink* is the switch's output port
toward that host: frames from every sender serialise through it, which
is where multi-client contention for a server physically happens.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Union

from ..config import NetConfig
from ..errors import ConfigError
from ..obs.core import DISABLED
from ..sim import RngStreams, Simulator
from .ip import fragment_sizes
from .link import Link
from .packet import Datagram, Fragment

__all__ = ["Switch", "Port"]


class Port:
    """A host's attachment point: two links and a reassembly buffer."""

    __slots__ = (
        "switch",
        "name",
        "net",
        "port_id",
        "owner",
        "uplink",
        "downlink",
        "on_fragment",
        "_partial",
        "datagrams_sent",
        "datagrams_received",
    )

    def __init__(
        self,
        switch: "Switch",
        name: str,
        net: NetConfig,
        port_id: int = 0,
        owner: Optional[Any] = None,
    ):
        sim = switch._sim
        self.switch = switch
        self.name = name
        self.net = net
        #: Position in the switch's registry (attachment order).
        self.port_id = port_id
        #: The attached :class:`~repro.net.host.Host`, when attached via
        #: a host object rather than a bare name.
        self.owner = owner
        self.uplink = Link(sim, net.bandwidth_bytes_per_sec, net.latency_ns, f"{name}-up")
        self.downlink = Link(
            sim, net.bandwidth_bytes_per_sec, net.latency_ns, f"{name}-down"
        )
        #: Host hook: called for every arriving fragment with the
        #: fragment and the fully reassembled datagram (or None).
        self.on_fragment: Optional[Callable[[Fragment, Optional[Datagram]], None]] = None
        self._partial: Dict[int, int] = {}
        self.datagrams_sent = 0
        self.datagrams_received = 0

    # -- transmit -----------------------------------------------------------

    def send_datagram(self, dgram: Datagram) -> None:
        """Fragment ``dgram`` per this port's MTU and launch it."""
        dgram.dgram_id = self.switch._next_dgram_id()
        sizes = fragment_sizes(dgram.size, self.net)
        count = len(sizes)
        for index, wire_bytes in enumerate(sizes):
            frag = Fragment(dgram, index, count, wire_bytes)
            self.uplink.send(wire_bytes, self.switch._forward, frag)
        self.datagrams_sent += 1

    # -- receive --------------------------------------------------------------

    def _arrive(self, frag: Fragment) -> None:
        dgram = frag.dgram
        got = self._partial.get(dgram.dgram_id, 0) + 1
        complete: Optional[Datagram] = None
        if got == frag.count:
            self._partial.pop(dgram.dgram_id, None)
            self.datagrams_received += 1
            complete = dgram
        else:
            self._partial[dgram.dgram_id] = got
            # Reassembly GC: datagrams that lost a fragment never
            # complete; bound the table like a kernel's frag timeout.
            while len(self._partial) > 4096:
                self._partial.pop(next(iter(self._partial)))
        if self.on_fragment is not None:
            self.on_fragment(frag, complete)


class Switch:
    """Connects registered ports; forwards fragments to the destination port.

    Fault injection: ports attached with a non-zero
    ``NetConfig.loss_probability`` have fragments dropped at forward
    time from a dedicated RNG stream, exercising RPC retransmission.
    """

    __slots__ = (
        "_sim",
        "name",
        "_registry",
        "_ports",
        "_dgram_seq",
        "_dgram_offset",
        "_dgram_stride",
        "_rng",
        "fragments_dropped",
        "obs",
    )

    def __init__(self, sim: Simulator, name: str = "switch", seed: int = 0):
        self._sim = sim
        self.name = name
        #: The port registry: attachment-ordered list plus a routing
        #: index by host name.  Both always agree; the list is the
        #: authoritative record of what is plugged into the switch.
        self._registry: List[Port] = []
        self._ports: Dict[str, Port] = {}
        self._dgram_seq = 0
        self._dgram_offset = 0
        self._dgram_stride = 1
        self._rng = RngStreams(seed).stream(f"{name}-loss")
        self.fragments_dropped = 0
        self.obs = DISABLED

    def attach(self, host: Union[str, Any], net: Optional[NetConfig] = None) -> Port:
        """Register a host and hand it its own :class:`Port`.

        ``host`` is normally a :class:`~repro.net.host.Host` (the port
        records it as ``owner``); a bare name is accepted for tests that
        wire raw ports.  ``net`` defaults to the host's own NetConfig
        when attaching a host object.  Attaching a second host under an
        existing name raises — duplicate names would let one client
        silently shadow another's frames.
        """
        if isinstance(host, str):
            name, owner = host, None
        else:
            name, owner = host.name, host
            net = net if net is not None else getattr(host, "net", None)
        if net is None:
            raise ConfigError(f"{self.name}: no NetConfig for host {name!r}")
        existing = self._ports.get(name)
        if existing is not None:
            raise ConfigError(
                f"{self.name}: host {name!r} already attached (port "
                f"{existing.port_id}) — a second attachment would shadow "
                "its frames; give each client a unique name"
            )
        port = Port(self, name, net, port_id=len(self._registry), owner=owner)
        self._registry.append(port)
        self._ports[name] = port
        return port

    def port(self, host_name: str) -> Port:
        try:
            return self._ports[host_name]
        except KeyError:
            raise ConfigError(f"{self.name}: unknown host {host_name!r}") from None

    def ports(self) -> List[Port]:
        """All registered ports, in attachment (port-id) order."""
        return list(self._registry)

    def __len__(self) -> int:
        return len(self._registry)

    def install_fault(self, host_name: str, uplink=None, downlink=None) -> Port:
        """Attach per-direction link faults to a host's port.

        ``uplink`` disturbs frames the host sends (host→switch);
        ``downlink`` disturbs frames it receives.  Pass ``None`` to
        leave a direction untouched; see :mod:`repro.faults.link` for
        the fault objects.  Returns the port for further inspection.
        """
        port = self.port(host_name)
        if uplink is not None:
            port.uplink.fault = uplink
        if downlink is not None:
            port.downlink.fault = downlink
        return port

    def _forward(self, frag: Fragment) -> None:
        dst = self._ports.get(frag.dgram.dst)
        if dst is None:
            return  # destination detached: frame dropped on the floor
        loss = dst.net.loss_probability
        if loss > 0.0 and self._rng.random() < loss:
            self.fragments_dropped += 1
            if self.obs.enabled:
                self.obs.count("net/frames_dropped/switch-loss")
            return
        dst.downlink.send(frag.wire_bytes, dst._arrive, frag)

    def set_dgram_namespace(self, offset: int, stride: int) -> None:
        """Partition datagram-id space across shard-local switches.

        Sharded runs give each shard ``offset + k * stride`` so ids from
        different shards never collide in a destination port's
        reassembly table.  Ids are opaque reassembly keys — their values
        never feed timing or fingerprints — so the default ``(0, 1)``
        serial namespace and any shard namespace are interchangeable.
        """
        if stride < 1 or offset < 0 or offset >= stride:
            raise ConfigError(
                f"{self.name}: bad dgram namespace (offset={offset}, stride={stride})"
            )
        self._dgram_offset = offset
        self._dgram_stride = stride

    def _next_dgram_id(self) -> int:
        self._dgram_seq += 1
        return self._dgram_offset + self._dgram_seq * self._dgram_stride
