"""Store-and-forward Ethernet switch with named ports.

Each attached host gets a full-duplex pair of links (host→switch and
switch→host).  Datagrams are fragmented at the sender per the path MTU,
forwarded fragment-by-fragment, and reassembled at the destination port
(kernel IP reassembly); the receiving host is notified per fragment so
it can charge interrupt costs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..config import NetConfig
from ..errors import ConfigError
from ..obs.core import DISABLED
from ..sim import RngStreams, Simulator
from .ip import fragment_sizes
from .link import Link
from .packet import Datagram, Fragment

__all__ = ["Switch", "Port"]


class Port:
    """A host's attachment point: two links and a reassembly buffer."""

    def __init__(self, switch: "Switch", name: str, net: NetConfig):
        sim = switch._sim
        self.switch = switch
        self.name = name
        self.net = net
        self.uplink = Link(sim, net.bandwidth_bytes_per_sec, net.latency_ns, f"{name}-up")
        self.downlink = Link(
            sim, net.bandwidth_bytes_per_sec, net.latency_ns, f"{name}-down"
        )
        #: Host hook: called for every arriving fragment with the
        #: fragment and the fully reassembled datagram (or None).
        self.on_fragment: Optional[Callable[[Fragment, Optional[Datagram]], None]] = None
        self._partial: Dict[int, int] = {}
        self.datagrams_sent = 0
        self.datagrams_received = 0

    # -- transmit -----------------------------------------------------------

    def send_datagram(self, dgram: Datagram) -> None:
        """Fragment ``dgram`` per this port's MTU and launch it."""
        dgram.dgram_id = self.switch._next_dgram_id()
        sizes = fragment_sizes(dgram.size, self.net)
        count = len(sizes)
        for index, wire_bytes in enumerate(sizes):
            frag = Fragment(dgram, index, count, wire_bytes)
            self.uplink.send(wire_bytes, self.switch._forward, frag)
        self.datagrams_sent += 1

    # -- receive --------------------------------------------------------------

    def _arrive(self, frag: Fragment) -> None:
        dgram = frag.dgram
        got = self._partial.get(dgram.dgram_id, 0) + 1
        complete: Optional[Datagram] = None
        if got == frag.count:
            self._partial.pop(dgram.dgram_id, None)
            self.datagrams_received += 1
            complete = dgram
        else:
            self._partial[dgram.dgram_id] = got
            # Reassembly GC: datagrams that lost a fragment never
            # complete; bound the table like a kernel's frag timeout.
            while len(self._partial) > 4096:
                self._partial.pop(next(iter(self._partial)))
        if self.on_fragment is not None:
            self.on_fragment(frag, complete)


class Switch:
    """Connects named ports; forwards fragments by destination host name.

    Fault injection: ports attached with a non-zero
    ``NetConfig.loss_probability`` have fragments dropped at forward
    time from a dedicated RNG stream, exercising RPC retransmission.
    """

    def __init__(self, sim: Simulator, name: str = "switch", seed: int = 0):
        self._sim = sim
        self.name = name
        self._ports: Dict[str, Port] = {}
        self._dgram_seq = 0
        self._rng = RngStreams(seed).stream(f"{name}-loss")
        self.fragments_dropped = 0
        self.obs = DISABLED

    def attach(self, host_name: str, net: NetConfig) -> Port:
        if host_name in self._ports:
            raise ConfigError(f"{self.name}: host {host_name!r} already attached")
        port = Port(self, host_name, net)
        self._ports[host_name] = port
        return port

    def port(self, host_name: str) -> Port:
        try:
            return self._ports[host_name]
        except KeyError:
            raise ConfigError(f"{self.name}: unknown host {host_name!r}") from None

    def ports(self):
        """All attached ports, in deterministic (sorted-name) order."""
        return [self._ports[name] for name in sorted(self._ports)]

    def install_fault(self, host_name: str, uplink=None, downlink=None) -> Port:
        """Attach per-direction link faults to a host's port.

        ``uplink`` disturbs frames the host sends (host→switch);
        ``downlink`` disturbs frames it receives.  Pass ``None`` to
        leave a direction untouched; see :mod:`repro.faults.link` for
        the fault objects.  Returns the port for further inspection.
        """
        port = self.port(host_name)
        if uplink is not None:
            port.uplink.fault = uplink
        if downlink is not None:
            port.downlink.fault = downlink
        return port

    def _forward(self, frag: Fragment) -> None:
        dst = self._ports.get(frag.dgram.dst)
        if dst is None:
            return  # destination detached: frame dropped on the floor
        loss = dst.net.loss_probability
        if loss > 0.0 and self._rng.random() < loss:
            self.fragments_dropped += 1
            if self.obs.enabled:
                self.obs.count("net/frames_dropped/switch-loss")
            return
        dst.downlink.send(frag.wire_bytes, dst._arrive, frag)

    def _next_dgram_id(self) -> int:
        self._dgram_seq += 1
        return self._dgram_seq
