"""A simulated machine: CPUs, a switch port, and a UDP stack.

The host charges per-fragment interrupt cost on receive (NIC IRQ +
driver + IP input), then hands complete datagrams to the UDP stack.
"Handling reply interrupts at a higher rate" is one of the costs the
paper identifies for clients talking to fast servers (§3.5).
"""

from __future__ import annotations

from typing import Optional

from ..config import CpuCosts, NetConfig
from ..sim import PRIO_INTERRUPT, CpuSet, Simulator
from .packet import Datagram, Fragment
from .switch import Switch
from .udp import UdpStack

__all__ = ["Host"]


class Host:
    """One machine attached to the switch."""

    __slots__ = (
        "sim",
        "name",
        "net",
        "costs",
        "cpus",
        "port",
        "udp",
        "rx_fragments",
        "rx_datagrams",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        switch: Switch,
        net: NetConfig,
        ncpus: int = 1,
        costs: Optional[CpuCosts] = None,
    ):
        self.sim = sim
        self.name = name
        self.net = net
        self.costs = costs or CpuCosts()
        self.cpus = CpuSet(sim, ncpus, name=f"{name}-cpu")
        self.port = switch.attach(self, net)
        self.port.on_fragment = self._rx_fragment
        self.udp = UdpStack(self)
        self.rx_fragments = 0
        self.rx_datagrams = 0

    def _rx_fragment(self, frag: Fragment, complete: Optional[Datagram]) -> None:
        self.rx_fragments += 1
        self.sim.spawn(
            self._rx_work(complete), name=f"{self.name}-rx-irq", daemon=True
        )

    def _rx_work(self, complete: Optional[Datagram]):
        yield from self.cpus.execute(
            self.costs.rx_frame_irq, label="net_rx_irq", priority=PRIO_INTERRUPT
        )
        if complete is not None:
            self.rx_datagrams += 1
            self.udp.deliver(complete)
