"""Unidirectional serialising link.

Frames queue behind each other at the link's bandwidth, then experience
a fixed propagation/switching latency.  The O(1) ``busy_until``
bookkeeping avoids a task per frame, which matters for multi-hundred-MB
simulated transfers.

Delivery is *batched per link*: a clean (un-faulted) link keeps its
in-flight frames in a local FIFO and only the head frame occupies the
simulator heap; each delivery re-arms the next one.  Because arrivals
on one link are monotone (``busy_until`` never decreases and latency is
constant) and every frame's ``(time, seq)`` key is reserved at send
time via :meth:`Simulator.alloc_seq`, pop order — and therefore every
simulated outcome — is bit-identical to the historical
one-heap-event-per-frame scheme, while heap residency drops from
O(in-flight frames) to O(links).  A congested server downlink with a
thousand queued frames costs one heap slot instead of a thousand.

Fault injection: a pluggable :attr:`Link.fault` hook (any object with
``on_frame(wire_bytes) -> list[int]``, see :mod:`repro.faults.link`)
decides each frame's fate *after* serialisation: an empty list drops
the frame, ``[0]`` delivers normally, and each additional/positive
entry delivers one (possibly delayed, hence reordered or duplicated)
copy.  Bandwidth occupancy is charged either way — a dropped frame
still burned wire time, like a frame lost to corruption.  Extra fault
delays break per-link arrival monotonicity, so faulted deliveries take
the eager per-frame path (which reserves seqs identically).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..errors import ConfigError
from ..obs.core import DISABLED
from ..sim import Simulator
from ..units import transfer_time

__all__ = ["Link"]


class Link:
    """One direction of a point-to-point wire."""

    __slots__ = (
        "_sim",
        "name",
        "bandwidth",
        "latency_ns",
        "_busy_until",
        "frames_sent",
        "bytes_sent",
        "total_queue_ns",
        "peak_queue_ns",
        "fault",
        "frames_dropped",
        "frames_duplicated",
        "obs",
        "batch_delivery",
        "_pending",
        "_head_armed",
        "_queue_series_key",
    )

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bytes_per_sec: float,
        latency_ns: int,
        name: str = "link",
        batch_delivery: bool = True,
    ):
        if bandwidth_bytes_per_sec <= 0:
            raise ConfigError(f"{name}: bandwidth must be positive")
        if latency_ns < 0:
            raise ConfigError(f"{name}: negative latency")
        self._sim = sim
        self.name = name
        self.bandwidth = bandwidth_bytes_per_sec
        self.latency_ns = latency_ns
        self._busy_until = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        #: Output-port contention accounting: time frames spent queued
        #: behind earlier frames on this link (ns, cumulative and peak).
        #: On a server's downlink this is the multi-client contention
        #: the Topology fairness reports read.
        self.total_queue_ns = 0
        self.peak_queue_ns = 0
        #: Pluggable per-frame fault hook (``on_frame(bytes) -> [delay...]``).
        self.fault: Optional[Any] = None
        self.frames_dropped = 0
        self.frames_duplicated = 0
        self.obs = DISABLED
        #: One-live-heap-event-per-link delivery (bit-identical to the
        #: eager per-frame path; disable to measure that equivalence).
        self.batch_delivery = batch_delivery
        #: In-flight frames: (arrival, seq, deliver, args), arrival- and
        #: seq-monotone.  Only the head is in the simulator heap.
        self._pending: deque = deque()
        self._head_armed = False
        #: Cached timeline key: send() is the hottest path in the net
        #: layer, so the per-link key string is built exactly once.
        self._queue_series_key = f"net/{name}/queue_ns"

    @staticmethod
    def _payload_span(args) -> int:
        """Span id carried by the frame's RPC payload, if any."""
        if args:
            frag = args[0]
            dgram = getattr(frag, "dgram", None)
            if dgram is not None:
                return getattr(dgram.payload, "span_id", 0)
        return 0

    def send(self, wire_bytes: int, deliver: Callable[..., None], *args: Any) -> int:
        """Queue a frame; ``deliver(*args)`` fires on arrival.

        Returns the simulated arrival time (of the undisturbed copy).
        """
        if wire_bytes <= 0:
            raise ConfigError(f"{self.name}: empty frame")
        start = max(self._sim.now, self._busy_until)
        queued = start - self._sim.now
        if queued > 0:
            self.total_queue_ns += queued
            if queued > self.peak_queue_ns:
                self.peak_queue_ns = queued
        done_sending = start + transfer_time(wire_bytes, self.bandwidth)
        self._busy_until = done_sending
        arrival = done_sending + self.latency_ns
        self.frames_sent += 1
        self.bytes_sent += wire_bytes
        obs = self.obs
        if obs.enabled:
            obs.count("net/frames_sent")
            obs.count("net/bytes_sent", wire_bytes)
            obs.series_gauge(self._queue_series_key, queued)
        if self.fault is not None:
            deliveries = self.fault.on_frame(wire_bytes)
            if not deliveries:
                self.frames_dropped += 1
                if obs.enabled:
                    obs.count(
                        f"net/frames_dropped/{type(self.fault).__name__}"
                    )
                    sid = obs.span_begin(
                        "net",
                        "frame_dropped",
                        parent=self._payload_span(args),
                        ts=start,
                        bytes=wire_bytes,
                        link=self.name,
                    )
                    obs.span_end(sid, ts=arrival)
                return arrival
            if len(deliveries) > 1:
                self.frames_duplicated += len(deliveries) - 1
                if obs.enabled:
                    obs.count("net/frames_duplicated", len(deliveries) - 1)
            for extra_delay in deliveries:
                self._emit(arrival + extra_delay, deliver, args)
            self._record_frame(start, arrival, wire_bytes, args)
            return arrival
        self._emit_clean(arrival, deliver, args)
        self._record_frame(start, arrival, wire_bytes, args)
        return arrival

    # -- delivery scheduling (overridden at shard boundaries) ----------------

    def _emit(self, time: int, deliver: Callable[..., None], args) -> None:
        """Schedule one (possibly fault-delayed) delivery copy.

        Fault delays break per-link arrival monotonicity, so this is
        always the eager per-frame path.
        """
        self._sim.call_at(time, deliver, *args)

    def _emit_clean(self, arrival: int, deliver: Callable[..., None], args) -> None:
        """Schedule an undisturbed delivery at ``arrival``.

        Batched mode reserves the frame's ``(time, seq)`` key now but
        parks the frame in the per-link FIFO; only the head frame holds
        a heap slot, and :meth:`_deliver_head` re-arms the next one.
        """
        sim = self._sim
        if not self.batch_delivery:
            sim.call_at(arrival, deliver, *args)
            return
        seq = sim.alloc_seq()
        self._pending.append((arrival, seq, deliver, args))
        if not self._head_armed:
            self._head_armed = True
            sim.push_at(arrival, seq, self._deliver_head)

    def _deliver_head(self) -> None:
        _arrival, _seq, deliver, args = self._pending.popleft()
        if self._pending:
            head = self._pending[0]
            self._sim.push_at(head[0], head[1], self._deliver_head)
        else:
            self._head_armed = False
        deliver(*args)

    def _record_frame(self, start: int, arrival: int, wire_bytes: int, args) -> None:
        obs = self.obs
        if not obs.enabled:
            return
        sid = obs.span_begin(
            "net",
            "frame",
            parent=self._payload_span(args),
            ts=start,
            bytes=wire_bytes,
            link=self.name,
        )
        obs.span_end(sid, ts=arrival)

    def queue_delay_ns(self) -> int:
        """Backlog currently ahead of a new frame."""
        return max(0, self._busy_until - self._sim.now)

    def utilization(self) -> float:
        """Bytes sent divided by capacity of elapsed time."""
        if self._sim.now == 0:
            return 0.0
        return self.bytes_sent / (self.bandwidth * self._sim.now / 1e9)
