"""Network substrate: links, switch, IP fragmentation, UDP, hosts."""

from .host import Host
from .ip import fragment_count, fragment_sizes
from .link import Link
from .packet import Datagram, Fragment
from .switch import Port, Switch
from .udp import UdpSocket, UdpStack

__all__ = [
    "Host",
    "Link",
    "Switch",
    "Port",
    "Datagram",
    "Fragment",
    "UdpStack",
    "UdpSocket",
    "fragment_sizes",
    "fragment_count",
]
