"""Wire units: datagrams and the IP fragments they travel as."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Datagram", "Fragment"]


@dataclass(slots=True)
class Datagram:
    """A UDP datagram addressed host-to-host.

    ``payload`` is the simulated message object (e.g. an RPC call);
    ``size`` is the UDP payload size in bytes, which drives wire timing.
    """

    src: str
    src_port: int
    dst: str
    dst_port: int
    payload: Any
    size: int
    dgram_id: int = 0


@dataclass(slots=True)
class Fragment:
    """One IP fragment of a datagram, as it appears on the wire."""

    dgram: Datagram
    index: int
    count: int
    wire_bytes: int

    @property
    def is_last(self) -> bool:
        return self.index == self.count - 1
