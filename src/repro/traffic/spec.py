"""Declarative arrival-process specs for open-loop traffic.

An :class:`ArrivalSpec` describes *when* sessions arrive (Poisson or
two-state MMPP, optionally modulated by a diurnal load curve), *how
big* they are (:class:`SizeSpec`: fixed, lognormal, or Pareto draws),
and *what* each one runs (:class:`MixEntry`: a weighted mix of
registered workload names).  Specs are frozen, picklable, and
JSON-round-trippable, so they ride inside :class:`FleetJobSpec`
fingerprints and chaos scenario files unchanged.

Specs carry no randomness themselves — all draws happen at plan time
(:func:`repro.traffic.openloop.plan_sessions`) on named seeded streams.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

from ..errors import ConfigError
from ..units import KIB, MIB, PAGE_SIZE, ms, seconds

__all__ = ["SizeSpec", "MixEntry", "ArrivalSpec", "parse_arrivals"]

_PROCESSES = ("poisson", "mmpp")
_SIZE_DISTS = ("fixed", "lognormal", "pareto")


@dataclass(frozen=True)
class SizeSpec:
    """How many bytes one session asks for.

    ``bytes`` is the exact size for ``fixed``, the *median* for
    ``lognormal`` (``sigma`` the log-space spread), and the scale
    (minimum) for ``pareto`` (``alpha`` the tail index — lower is
    heavier).  Draws clamp to ``[min_bytes, max_bytes]``.
    """

    dist: str = "fixed"
    bytes: int = 256 * KIB
    sigma: float = 1.0
    alpha: float = 1.5
    min_bytes: int = PAGE_SIZE
    max_bytes: int = 64 * MIB

    def __post_init__(self):
        if self.dist not in _SIZE_DISTS:
            raise ConfigError(
                f"size dist must be one of {_SIZE_DISTS}, got {self.dist!r}"
            )
        if self.bytes <= 0:
            raise ConfigError("size bytes must be positive")
        if self.sigma <= 0:
            raise ConfigError("lognormal sigma must be positive")
        if self.alpha <= 0:
            raise ConfigError("pareto alpha must be positive")
        if not 0 < self.min_bytes <= self.max_bytes:
            raise ConfigError("need 0 < min_bytes <= max_bytes")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dist": self.dist,
            "bytes": self.bytes,
            "sigma": self.sigma,
            "alpha": self.alpha,
            "min_bytes": self.min_bytes,
            "max_bytes": self.max_bytes,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SizeSpec":
        return cls(**_known(cls, data, "sizes"))


@dataclass(frozen=True)
class MixEntry:
    """One weighted entry of a per-client workload mix.

    ``params`` pins workload parameters for every session of this
    entry; parameters the entry leaves open are filled at plan time
    (drawn ``file_bytes``, per-session file names and seeds).
    """

    workload: str = "sequential-write"
    weight: float = 1.0
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self):
        if not self.workload:
            raise ConfigError("mix entry needs a workload name")
        if self.weight <= 0:
            raise ConfigError("mix weight must be positive")
        if not isinstance(self.params, tuple):
            object.__setattr__(
                self, "params", tuple(sorted(dict(self.params).items()))
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "weight": self.weight,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MixEntry":
        data = _known(cls, data, "mix entry")
        params = data.get("params", ())
        if isinstance(params, dict):
            data["params"] = tuple(sorted(params.items()))
        return cls(**data)


@dataclass(frozen=True)
class ArrivalSpec:
    """An open-loop session arrival process for one fleet.

    ``poisson``: homogeneous rate ``rate_per_s``, optionally modulated
    by the ``diurnal`` multiplier curve (stretched over ``duration_ns``
    and applied by thinning, so the draw stream stays identical across
    runs).  ``mmpp``: a two-state Markov-modulated process alternating
    exponentially-distributed idle (rate ``rate_per_s``, mean sojourn
    ``mean_idle_ns``) and burst (``burst_rate_per_s``,
    ``mean_burst_ns``) states.

    Every client in the fleet runs an *independent* copy of this
    process on its own named streams — offered load scales with fleet
    size, which is exactly what an open-loop overload sweep wants.
    """

    process: str = "poisson"
    rate_per_s: float = 10.0
    duration_ns: int = seconds(1)
    sizes: SizeSpec = field(default_factory=SizeSpec)
    mix: Tuple[MixEntry, ...] = (MixEntry(),)
    diurnal: Tuple[float, ...] = ()
    burst_rate_per_s: float = 0.0
    mean_burst_ns: int = ms(20)
    mean_idle_ns: int = ms(80)
    max_sessions: int = 4096

    def __post_init__(self):
        if self.process not in _PROCESSES:
            raise ConfigError(
                f"arrival process must be one of {_PROCESSES}, "
                f"got {self.process!r}"
            )
        if self.rate_per_s <= 0:
            raise ConfigError("rate_per_s must be positive")
        if self.duration_ns <= 0:
            raise ConfigError("duration_ns must be positive")
        if not self.mix:
            raise ConfigError("need at least one mix entry")
        if not isinstance(self.mix, tuple):
            object.__setattr__(self, "mix", tuple(self.mix))
        if not isinstance(self.diurnal, tuple):
            object.__setattr__(self, "diurnal", tuple(self.diurnal))
        if self.diurnal and (
            min(self.diurnal) < 0 or max(self.diurnal) <= 0
        ):
            raise ConfigError(
                "diurnal multipliers must be >= 0 with a positive peak"
            )
        if self.process == "mmpp":
            if self.burst_rate_per_s <= 0:
                raise ConfigError("mmpp needs a positive burst_rate_per_s")
            if self.mean_burst_ns <= 0 or self.mean_idle_ns <= 0:
                raise ConfigError("mmpp sojourn means must be positive")
        if self.max_sessions < 1:
            raise ConfigError("max_sessions must be at least 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "process": self.process,
            "rate_per_s": self.rate_per_s,
            "duration_ns": self.duration_ns,
            "sizes": self.sizes.to_dict(),
            "mix": [entry.to_dict() for entry in self.mix],
            "diurnal": list(self.diurnal),
            "burst_rate_per_s": self.burst_rate_per_s,
            "mean_burst_ns": self.mean_burst_ns,
            "mean_idle_ns": self.mean_idle_ns,
            "max_sessions": self.max_sessions,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArrivalSpec":
        data = _known(cls, data, "arrivals")
        if isinstance(data.get("sizes"), dict):
            data["sizes"] = SizeSpec.from_dict(data["sizes"])
        if "mix" in data:
            data["mix"] = tuple(
                MixEntry.from_dict(e) if isinstance(e, dict) else e
                for e in data["mix"]
            )
        if "diurnal" in data:
            data["diurnal"] = tuple(data["diurnal"])
        return cls(**data)


def _known(cls, data: Dict[str, Any], what: str) -> Dict[str, Any]:
    """Copy ``data``, rejecting keys the spec does not define."""
    fields = {f.name for f in cls.__dataclass_fields__.values()}
    unknown = sorted(set(data) - fields)
    if unknown:
        raise ConfigError(f"unknown {what} key(s): {', '.join(unknown)}")
    return dict(data)


#: Compact-form keys -> how they land on the spec.
_COMPACT_KEYS = {
    "process": ("process", str),
    "rate": ("rate_per_s", float),
    "duration_ms": ("duration_ns", lambda v: ms(float(v))),
    "duration_ns": ("duration_ns", int),
    "burst_rate": ("burst_rate_per_s", float),
    "burst_ms": ("mean_burst_ns", lambda v: ms(float(v))),
    "idle_ms": ("mean_idle_ns", lambda v: ms(float(v))),
    "max_sessions": ("max_sessions", int),
}
_COMPACT_SIZE_KEYS = {
    "dist": ("dist", str),
    "bytes": ("bytes", int),
    "sigma": ("sigma", float),
    "alpha": ("alpha", float),
    "min_bytes": ("min_bytes", int),
    "max_bytes": ("max_bytes", int),
}


def parse_arrivals(text: str) -> ArrivalSpec:
    """Parse an arrival spec from JSON or the compact CLI form.

    JSON: the :meth:`ArrivalSpec.to_dict` shape.  Compact:
    comma- or space-separated ``key=value`` pairs, e.g.
    ``"process=poisson,rate=40,duration_ms=100,dist=lognormal,
    bytes=131072,sigma=1.2,workload=sequential-write,
    diurnal=0.5/1.0/2.0"``.
    """
    text = text.strip()
    if not text:
        raise ConfigError("empty arrival spec")
    if text.startswith("{"):
        try:
            return ArrivalSpec.from_dict(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ConfigError(f"bad arrival spec JSON: {exc}") from None

    spec_kwargs: Dict[str, Any] = {}
    size_kwargs: Dict[str, Any] = {}
    workload = None
    for pair in re.split(r"[,\s]+", text):
        pair = pair.strip()
        if not pair:
            continue
        if "=" not in pair:
            raise ConfigError(f"expected key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        key, value = key.strip(), value.strip()
        try:
            if key in _COMPACT_KEYS:
                dest, conv = _COMPACT_KEYS[key]
                spec_kwargs[dest] = conv(value)
            elif key in _COMPACT_SIZE_KEYS:
                dest, conv = _COMPACT_SIZE_KEYS[key]
                size_kwargs[dest] = conv(value)
            elif key == "workload":
                workload = value
            elif key == "diurnal":
                spec_kwargs["diurnal"] = tuple(
                    float(v) for v in value.split("/") if v
                )
            else:
                raise ConfigError(f"unknown arrival spec key {key!r}")
        except ValueError:
            raise ConfigError(
                f"bad value {value!r} for arrival spec key {key!r}"
            ) from None
    if size_kwargs:
        if "bytes" in size_kwargs:
            size_kwargs.setdefault(
                "max_bytes", max(64 * MIB, size_kwargs["bytes"] * 16)
            )
        spec_kwargs["sizes"] = SizeSpec(**size_kwargs)
    spec = ArrivalSpec(**spec_kwargs)
    if workload is not None:
        spec = replace(spec, mix=(MixEntry(workload=workload),))
    return spec
