"""Open-loop session scheduling onto fleet clients.

The closed-loop fleet asks "how fast does N clients' work finish?";
the open-loop driver asks the production question: "sessions arrive
whether or not the system keeps up — where is the knee?".

:func:`plan_sessions` turns an :class:`ArrivalSpec` into a concrete
per-client session plan (arrival offset, workload name, resolved
params) using only the client's *name* and the fleet seed — so a shard
that owns a client computes exactly the plan the serial run computes,
with no cross-shard routing and no dependence on scheduling order.
The :class:`OpenLoopWorkload` then releases sessions at their planned
times regardless of how the previous ones are doing (the open-loop
property), reporting offered vs completed bytes into the
``traffic/*`` timelines the SLO engine's load-curve and knee machinery
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..bench.latency import LatencyTrace
from ..bench.workloads import (
    Workload,
    WorkloadOutcome,
    _obs,
    get_workload,
    register_workload,
    workload_type,
)
from ..errors import ConfigError
from ..sim import AllOf, RngStreams
from ..units import to_us
from .arrivals import arrival_times, draw_size
from .spec import ArrivalSpec

__all__ = ["Session", "plan_sessions", "OpenLoopWorkload"]


@dataclass(frozen=True)
class Session:
    """One planned open-loop session on one client."""

    index: int
    time_ns: int
    workload: str
    params: Tuple[Tuple[str, Any], ...]


def _session_params(
    index: int, workload: str, entry_params: Dict[str, Any],
    spec: ArrivalSpec, seed: int, size_rng,
) -> Dict[str, Any]:
    """Resolve one session's workload params from the mix entry.

    Open parameters are filled deterministically: ``file_bytes`` from
    the size distribution, per-session file names so concurrent
    sessions never collide, and per-session seeds so repeated sessions
    of a stochastic workload do not replay each other's draws.
    """
    cls = workload_type(workload)
    params = dict(entry_params)
    if "file_bytes" in cls.PARAMS and "file_bytes" not in params:
        params["file_bytes"] = draw_size(spec.sizes, size_rng)
    if "file_name" in cls.PARAMS and "file_name" not in params:
        params["file_name"] = f"session{index}"
    if "file_prefix" in cls.PARAMS and "file_prefix" not in params:
        params["file_prefix"] = f"session{index}/msg"
    if "seed" in cls.PARAMS and "seed" not in params:
        params["seed"] = (seed << 12) ^ index
    return params


def plan_sessions(
    spec: ArrivalSpec, client_name: str, seed: int
) -> Tuple[Session, ...]:
    """The full deterministic session plan for one client.

    Three named streams — ``traffic/<client>/arrivals``, ``.../mix``,
    ``.../sizes`` — keyed by the fleet seed and the client's name.
    Pure: no simulator, no wall clock, no global state.
    """
    streams = RngStreams(seed)
    arrival_rng = streams.stream(f"traffic/{client_name}/arrivals")
    mix_rng = streams.stream(f"traffic/{client_name}/mix")
    size_rng = streams.stream(f"traffic/{client_name}/sizes")

    total_weight = sum(entry.weight for entry in spec.mix)
    sessions: List[Session] = []
    for index, t_ns in enumerate(arrival_times(spec, arrival_rng)):
        pick = mix_rng.random() * total_weight
        entry = spec.mix[-1]
        for candidate in spec.mix:
            pick -= candidate.weight
            if pick < 0:
                entry = candidate
                break
        params = _session_params(
            index, entry.workload, dict(entry.params), spec, seed, size_rng
        )
        sessions.append(
            Session(
                index=index,
                time_ns=t_ns,
                workload=entry.workload,
                params=tuple(sorted(params.items())),
            )
        )
    return tuple(sessions)


@register_workload
class OpenLoopWorkload(Workload):
    """Release planned sessions at their arrival times, open-loop.

    Each session spawns as its own task the moment it arrives — a slow
    system accumulates concurrent sessions instead of slowing the
    arrival process down.  Offered bytes are recorded at arrival,
    completed bytes at session end; the gap between the two timelines
    *is* the overload signature the SLO knee locator reads.
    """

    name = "open-loop"
    PARAMS = {
        "arrivals": Workload.REQUIRED,
        "seed": 1,
    }

    def __init__(self, **params: Any):
        super().__init__(**params)
        arrivals = self.params["arrivals"]
        if isinstance(arrivals, dict):
            self.params["arrivals"] = ArrivalSpec.from_dict(arrivals)
        elif not isinstance(arrivals, ArrivalSpec):
            raise ConfigError(
                "open-loop arrivals must be an ArrivalSpec or its dict form"
            )

    def offered_bytes(self) -> int:
        return 0  # reported per-session at arrival time instead

    def body(self, stack):
        sim = stack.sim
        obs = _obs(stack)
        spec: ArrivalSpec = self.params["arrivals"]
        name = getattr(stack, "name", "client")
        plan = plan_sessions(spec, name, self.params["seed"])

        start = sim.now
        sojourn = LatencyTrace()
        totals = {"offered": 0, "completed_bytes": 0, "completed": 0}
        by_workload: Dict[str, int] = {}

        def session_body(session: Session, workload: Workload):
            arrived = sim.now
            _s, _e, result = yield from workload.body(stack)
            written = _result_bytes(result)
            sojourn.record(arrived, sim.now)
            totals["completed"] += 1
            totals["completed_bytes"] += written
            obs.series_count("traffic/completed_sessions", 1)
            obs.series_count("traffic/completed_bytes", written)
            obs.series_observe(
                "traffic/session_sojourn_us", to_us(sim.now - arrived)
            )

        tasks = []
        for session in plan:
            due = start + session.time_ns
            if due > sim.now:
                yield sim.timeout(due - sim.now)
            workload = get_workload(session.workload, dict(session.params))
            offered = workload.offered_bytes()
            totals["offered"] += offered
            by_workload[session.workload] = (
                by_workload.get(session.workload, 0) + 1
            )
            obs.series_count("traffic/sessions", 1)
            obs.series_count("traffic/offered_bytes", offered)
            tasks.append(
                sim.spawn(
                    session_body(session, workload),
                    name=f"{name}-session{session.index}",
                    daemon=True,
                )
            )
        if tasks:
            yield AllOf(tasks)

        outcome = WorkloadOutcome(
            workload=self.name,
            bytes_written=totals["completed_bytes"],
            ops=totals["completed"],
            trace=sojourn,
            extra={
                "sessions": len(plan),
                "offered_bytes": totals["offered"],
                "by_workload": {
                    k: by_workload[k] for k in sorted(by_workload)
                },
            },
        )
        return (start, sim.now, outcome)


def _result_bytes(result) -> int:
    """Bytes written by one finished session body, whatever its type."""
    if isinstance(result, WorkloadOutcome):
        return result.bytes_written
    return int(getattr(result, "file_bytes", 0) or 0)
