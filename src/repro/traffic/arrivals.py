"""Arrival-time and size draws on named seeded streams.

Pure functions: given the same :class:`ArrivalSpec` and the same
stream, the returned draws are bit-identical — the foundation of the
serial-vs-sharded fingerprint equality for open-loop fleets.

Diurnal modulation uses Lewis–Shedler thinning against the peak rate:
candidates are drawn from a homogeneous Poisson process at
``lambda_max`` and accepted with probability ``lambda(t)/lambda_max``.
Crucially the *number and order* of RNG calls per candidate is fixed
(one exponential + one uniform), so changing only the load curve never
desynchronises the stream.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import List

from .spec import ArrivalSpec, SizeSpec

__all__ = ["arrival_times", "draw_size"]


def _multiplier(diurnal, t_ns: int, duration_ns: int) -> float:
    """The load-curve multiplier at ``t``: the curve is stretched
    uniformly over the spec duration (step function per segment)."""
    if not diurnal:
        return 1.0
    index = min(len(diurnal) - 1, int(t_ns * len(diurnal) / duration_ns))
    return diurnal[index]


def _mmpp_switches(spec: ArrivalSpec, rng) -> List[int]:
    """State-switch times (ns) covering the whole duration.

    The process starts idle; switch ``i`` flips the state, so the state
    at time ``t`` is ``bisect_right(switches, t) % 2`` (0=idle,
    1=burst).  Sojourns are drawn first, before any arrival candidates,
    so the stream layout is independent of how many arrivals land.
    """
    switches: List[int] = []
    t = 0.0
    means = (float(spec.mean_idle_ns), float(spec.mean_burst_ns))
    state = 0
    while t < spec.duration_ns:
        t += rng.expovariate(1.0 / means[state])
        switches.append(int(t))
        state ^= 1
    return switches


def arrival_times(spec: ArrivalSpec, rng) -> List[int]:
    """Session arrival offsets (integer ns, strictly within duration).

    ``rng`` is one named seeded stream; this function is its only
    consumer, so every draw sequence below is reproducible in
    isolation.
    """
    peak_mult = max(spec.diurnal) if spec.diurnal else 1.0
    if spec.process == "mmpp":
        switches = _mmpp_switches(spec, rng)
        state_rates = (spec.rate_per_s / 1e9, spec.burst_rate_per_s / 1e9)
        lam_max = max(state_rates) * peak_mult
    else:
        switches = []
        state_rates = (spec.rate_per_s / 1e9,) * 2
        lam_max = state_rates[0] * peak_mult

    out: List[int] = []
    t = 0.0
    while len(out) < spec.max_sessions:
        t += rng.expovariate(lam_max)
        if t >= spec.duration_ns:
            break
        t_ns = int(t)
        state = bisect_right(switches, t_ns) % 2 if switches else 0
        lam_t = state_rates[state] * _multiplier(
            spec.diurnal, t_ns, spec.duration_ns
        )
        # Always draw the acceptance uniform, even when lam_t == lam_max:
        # a fixed two-draws-per-candidate layout keeps streams aligned
        # across spec variations.
        if rng.random() < lam_t / lam_max:
            out.append(t_ns)
    return out


def draw_size(sizes: SizeSpec, rng) -> int:
    """One session-size draw (bytes), clamped to the spec's bounds."""
    if sizes.dist == "fixed":
        raw = float(sizes.bytes)
    elif sizes.dist == "lognormal":
        raw = rng.lognormvariate(math.log(sizes.bytes), sizes.sigma)
    else:  # pareto
        raw = sizes.bytes * rng.paretovariate(sizes.alpha)
    return max(sizes.min_bytes, min(sizes.max_bytes, int(raw)))
