"""Open-loop traffic generation: arrival processes, size draws, mixes.

The production-traffic layer the ROADMAP calls for: Poisson and bursty
(MMPP) session arrivals with heavy-tailed size draws and diurnal load
curves, planned deterministically per client on named seeded streams
and released open-loop onto fleet clients through the
:class:`~repro.bench.workloads.Workload` registry (the ``"open-loop"``
workload).  See ``docs/workloads.md``.
"""

from .arrivals import arrival_times, draw_size
from .openloop import OpenLoopWorkload, Session, plan_sessions
from .spec import ArrivalSpec, MixEntry, SizeSpec, parse_arrivals

__all__ = [
    "ArrivalSpec",
    "MixEntry",
    "SizeSpec",
    "parse_arrivals",
    "arrival_times",
    "draw_size",
    "Session",
    "plan_sessions",
    "OpenLoopWorkload",
]
