"""Per-frame link faults.

A fault object plugs into :attr:`repro.net.link.Link.fault` and rules on
every frame after it has been serialised onto the wire:
``on_frame(wire_bytes)`` returns a list of extra delays, one entry per
delivered copy — ``[]`` drops the frame, ``[0]`` delivers it untouched,
``[delay]`` delays it (reordering it past later frames), and multiple
entries duplicate it.

Faults that need randomness take a :class:`random.Random`; hand them a
named stream from :class:`repro.sim.RngStreams` and the whole faulted
run stays bit-for-bit deterministic.
"""

from __future__ import annotations

# Typing only: fault models receive already-seeded random.Random streams
# from RngStreams and never construct their own.
import random  # noqa: DET105
from typing import Iterable, List, Sequence

from ..errors import ConfigError

__all__ = [
    "LinkFault",
    "GilbertElliott",
    "DelayJitter",
    "Duplicate",
    "DropFrames",
    "FaultChain",
]


class LinkFault:
    """Base fault: passes every frame through untouched."""

    def on_frame(self, wire_bytes: int) -> List[int]:
        return [0]


class GilbertElliott(LinkFault):
    """Two-state burst-loss channel (Gilbert–Elliott).

    The channel flips between a *good* and a *bad* state with the given
    per-frame transition probabilities; each state drops frames at its
    own rate.  The defaults give rare (~0.5 %/frame) transitions into
    short bursts (mean ~4 frames) of total loss — the bursty reality
    congested switches produce, which independent per-frame loss
    (``NetConfig.loss_probability``) cannot model.
    """

    def __init__(
        self,
        rng: random.Random,
        p_good_to_bad: float = 0.005,
        p_bad_to_good: float = 0.25,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ):
        for label, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"GilbertElliott: {label} must be in [0, 1]")
        self.rng = rng
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.in_bad_state = False
        self.frames_seen = 0
        self.frames_dropped = 0
        self.bursts = 0

    def on_frame(self, wire_bytes: int) -> List[int]:
        self.frames_seen += 1
        if self.in_bad_state:
            if self.rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        elif self.rng.random() < self.p_good_to_bad:
            self.in_bad_state = True
            self.bursts += 1
        loss = self.loss_bad if self.in_bad_state else self.loss_good
        if loss > 0.0 and self.rng.random() < loss:
            self.frames_dropped += 1
            return []
        return [0]


class DelayJitter(LinkFault):
    """Uniform extra per-frame delay in ``[0, max_jitter_ns]``.

    Frames with unlucky draws arrive after frames sent later — at
    fragment granularity this shuffles datagram reassembly order, at
    datagram granularity it reorders RPC replies.
    """

    def __init__(self, rng: random.Random, max_jitter_ns: int):
        if max_jitter_ns < 0:
            raise ConfigError("DelayJitter: max_jitter_ns must be >= 0")
        self.rng = rng
        self.max_jitter_ns = max_jitter_ns

    def on_frame(self, wire_bytes: int) -> List[int]:
        if self.max_jitter_ns == 0:
            return [0]
        return [self.rng.randrange(self.max_jitter_ns + 1)]


class Duplicate(LinkFault):
    """Deliver some frames twice (UDP duplication).

    The copy arrives ``lag_ns`` after the original.  With
    ``probability=1.0`` every datagram of every reply reaches the client
    twice — the regression rig for the transport's duplicate-xid path.
    """

    def __init__(self, rng: random.Random, probability: float, lag_ns: int = 0):
        if not 0.0 <= probability <= 1.0:
            raise ConfigError("Duplicate: probability must be in [0, 1]")
        if lag_ns < 0:
            raise ConfigError("Duplicate: lag_ns must be >= 0")
        self.rng = rng
        self.probability = probability
        self.lag_ns = lag_ns
        self.duplicated = 0

    def on_frame(self, wire_bytes: int) -> List[int]:
        if self.probability >= 1.0 or self.rng.random() < self.probability:
            self.duplicated += 1
            return [0, self.lag_ns]
        return [0]


class DropFrames(LinkFault):
    """Scripted loss: drop exactly the given frame ordinals (0-based).

    Deterministic by construction — no RNG.  Dropping a reply's frames
    forces a retransmit that the server must answer from its duplicate
    request cache, which is how the DRC tests aim their shots.
    """

    def __init__(self, indices: Iterable[int]):
        self.indices = frozenset(indices)
        self.seen = 0
        self.dropped = 0

    def on_frame(self, wire_bytes: int) -> List[int]:
        index = self.seen
        self.seen += 1
        if index in self.indices:
            self.dropped += 1
            return []
        return [0]


class FaultChain(LinkFault):
    """Compose faults: a drop by any link in the chain wins, delays add,
    duplicates multiply."""

    def __init__(self, faults: Sequence[LinkFault]):
        self.faults = list(faults)

    def on_frame(self, wire_bytes: int) -> List[int]:
        deliveries = [0]
        for fault in self.faults:
            next_deliveries: List[int] = []
            for base in deliveries:
                for extra in fault.on_frame(wire_bytes):
                    next_deliveries.append(base + extra)
            if not next_deliveries:
                return []
            deliveries = next_deliveries
        return deliveries
