"""Named chaos scenarios with invariant checks.

Each scenario builds a :class:`~repro.bench.runner.TestBed`, arms a
fault schedule, runs the sequential-write benchmark, and audits
invariants the NFS protocol promises to keep under that fault:

* no acknowledged-stable data is lost across a server crash/restart
  (the NFSv3 write-verifier contract),
* a fixed seed reproduces the run bit for bit (checked by running the
  scenario twice and comparing fingerprints),
* throughput degrades monotonically as network loss rises.

``python -m repro.experiments.cli faults`` runs them from the command
line; CI runs ``lossy-burst`` as a smoke test.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..bench.runner import TestBed
from ..config import MountConfig, NetConfig
from ..errors import ConfigError, EioError
from ..sim import RngStreams
from ..units import MIB, ms, seconds
from .client import SlotStarvation
from .link import GilbertElliott
from .server import ServerFaultSchedule

__all__ = ["SCENARIOS", "Scenario", "ScenarioOutcome", "run_scenario", "run_scenario_payload"]


@dataclass
class Invariant:
    name: str
    ok: bool
    detail: str = ""


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced."""

    name: str
    seed: int
    payload: Dict[str, object]
    invariants: List[Invariant] = field(default_factory=list)
    fingerprint: str = ""
    #: Observers of the beds the first run built (``observe=True`` only).
    observabilities: Optional[List] = None

    @property
    def passed(self) -> bool:
        return all(inv.ok for inv in self.invariants)


class Scenario:
    """A named fault scenario: builder + invariant auditor."""

    def __init__(self, name: str, description: str, fn: Callable):
        self.name = name
        self.description = description
        self._fn = fn

    def run(self, seed: int) -> Tuple[Dict[str, object], List[Invariant]]:
        return self._fn(seed)


SCENARIOS: Dict[str, Scenario] = {}


def _scenario(name: str, description: str):
    def register(fn):
        SCENARIOS[name] = Scenario(name, description, fn)
        return fn

    return register


# -- plumbing ----------------------------------------------------------------


def _fingerprint(payload: Dict[str, object]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def _trace_checksum(result) -> str:
    """Hash of the full write()-latency series: any divergence anywhere
    in the run — not just in the totals — breaks the fingerprint."""
    raw = ",".join(str(v) for v in result.trace.latencies_ns).encode()
    return hashlib.sha256(raw).hexdigest()


def _server_file(bed: TestBed):
    return next(iter(bed.server.files.values()), None)


def _common_payload(bed: TestBed, result) -> Dict[str, object]:
    xs = bed.nfs.xprt.stats
    cs = bed.nfs.stats
    file = _server_file(bed)
    return {
        "write_elapsed_ns": result.write_elapsed_ns,
        "flush_elapsed_ns": result.flush_elapsed_ns,
        "close_elapsed_ns": result.close_elapsed_ns,
        "trace_checksum": _trace_checksum(result),
        "retransmits": xs.retransmits,
        "major_timeouts": xs.major_timeouts,
        "duplicate_replies": xs.duplicate_replies,
        "jukebox_retries": xs.jukebox_retries,
        "backlog_peak": xs.backlog_peak,
        "writes_sent": cs.writes_sent,
        "commits_sent": cs.commits_sent,
        "bytes_acked_stable": cs.bytes_acked_stable,
        "commit_verf_mismatches": cs.commit_verf_mismatches,
        "server_drc_hits": bed.server.rpc.drc_hits,
        "server_bytes_received": bed.server.bytes_received,
        "server_file_size": file.size if file else 0,
        "server_stable_bytes": file.stable_bytes if file else 0,
        "server_dirty_bytes": file.dirty_bytes if file else 0,
    }


def _stability_invariants(payload: Dict[str, object], file_bytes: int) -> List[Invariant]:
    """The end-state every completed run must reach: all data durable."""
    return [
        Invariant(
            "file-complete",
            payload["server_file_size"] == file_bytes,
            f"server size {payload['server_file_size']} != {file_bytes}",
        ),
        Invariant(
            "all-data-stable",
            payload["server_stable_bytes"] >= file_bytes
            and payload["server_dirty_bytes"] == 0,
            f"stable={payload['server_stable_bytes']} "
            f"dirty={payload['server_dirty_bytes']}",
        ),
        Invariant(
            "client-acked-stable",
            payload["bytes_acked_stable"] >= file_bytes,
            f"acked {payload['bytes_acked_stable']} < {file_bytes}",
        ),
    ]


# -- scenarios ----------------------------------------------------------------


@_scenario(
    "lossy-burst",
    "Gilbert-Elliott burst loss on both directions; hard mount rides it out",
)
def _lossy_burst(seed: int):
    file_bytes = 2 * MIB
    bed = TestBed(
        target="netapp",
        client="stock",
        mount=MountConfig(timeo_ns=ms(25), retrans=7),
    )
    rngs = RngStreams(seed)
    down = GilbertElliott(
        rngs.stream("lossy-burst/client-down"), p_good_to_bad=0.02, p_bad_to_good=0.3
    )
    up = GilbertElliott(
        rngs.stream("lossy-burst/server-down"), p_good_to_bad=0.02, p_bad_to_good=0.3
    )
    bed.switch.install_fault("client", downlink=down)
    bed.switch.install_fault(bed.server.name, downlink=up)
    result = bed.run_sequential_write(file_bytes, time_limit_ns=seconds(600))
    payload = _common_payload(bed, result)
    payload["frames_dropped"] = down.frames_dropped + up.frames_dropped
    payload["loss_bursts"] = down.bursts + up.bursts
    invariants = [
        Invariant(
            "loss-injected",
            payload["frames_dropped"] > 0,
            f"{payload['frames_dropped']} frames dropped",
        ),
        Invariant(
            "client-retransmitted",
            payload["retransmits"] > 0,
            f"{payload['retransmits']} retransmits",
        ),
    ]
    invariants += _stability_invariants(payload, file_bytes)
    return payload, invariants


@_scenario(
    "server-restart",
    "knfsd crash (page cache + reply cache lost) and reboot mid-write; "
    "verifier mismatch forces the client to rewrite unstable data",
)
def _server_restart(seed: int):
    file_bytes = 16 * MIB
    bed = TestBed(
        target="linux",
        client="stock",
        mount=MountConfig(timeo_ns=ms(50), retrans=7),
    )
    ServerFaultSchedule(bed.server).crash_at(ms(150)).restart_at(ms(400))
    snapshot: Dict[str, int] = {}

    def snap() -> None:
        file = _server_file(bed)
        snapshot["client_acked_stable"] = bed.nfs.stats.bytes_acked_stable
        snapshot["server_stable"] = file.stable_bytes if file else 0

    bed.sim.schedule_at(ms(150) - 1, snap)  # the instant before the crash
    result = bed.run_sequential_write(file_bytes, time_limit_ns=seconds(600))
    payload = _common_payload(bed, result)
    payload["acked_stable_at_crash"] = snapshot.get("client_acked_stable", 0)
    payload["server_stable_at_crash"] = snapshot.get("server_stable", 0)
    payload["boot_verf"] = bed.server.boot_verf
    invariants = [
        Invariant(
            "verifier-bumped", payload["boot_verf"] == 2, f"verf={payload['boot_verf']}"
        ),
        Invariant(
            "verf-mismatch-detected",
            payload["commit_verf_mismatches"] > 0,
            f"{payload['commit_verf_mismatches']} mismatches",
        ),
        Invariant(
            "no-stable-data-lost",
            payload["server_stable_at_crash"] >= payload["acked_stable_at_crash"],
            f"server had {payload['server_stable_at_crash']} stable, client "
            f"believed {payload['acked_stable_at_crash']}",
        ),
        Invariant(
            "client-retransmitted",
            payload["retransmits"] > 0,
            f"{payload['retransmits']} retransmits",
        ),
    ]
    invariants += _stability_invariants(payload, file_bytes)
    return payload, invariants


@_scenario(
    "soft-timeout",
    "server dies for good under a soft mount; the writer gets EIO instead "
    "of hanging forever",
)
def _soft_timeout(seed: int):
    file_bytes = 4 * MIB
    bed = TestBed(
        target="netapp",
        client="stock",
        mount=MountConfig(timeo_ns=ms(10), retrans=3, soft=True),
    )
    ServerFaultSchedule(bed.server).crash_at(ms(10))
    eio_raised = False
    try:
        bed.run_sequential_write(file_bytes, time_limit_ns=seconds(600))
    except EioError:
        eio_raised = True
    xs = bed.nfs.xprt.stats
    payload = {
        "eio_raised": eio_raised,
        "failed_at_ns": bed.sim.now,
        "major_timeouts": xs.major_timeouts,
        "soft_failures": xs.soft_failures,
        "retransmits": xs.retransmits,
        "write_failures": bed.nfs.stats.write_failures,
        "syscall_eio_errors": bed.syscalls.eio_errors,
    }
    invariants = [
        Invariant("eio-surfaced", eio_raised, "benchmark did not fail with EIO"),
        Invariant(
            "major-timeout-hit",
            payload["major_timeouts"] >= 1,
            f"{payload['major_timeouts']} major timeouts",
        ),
        Invariant(
            "requests-failed-soft",
            payload["soft_failures"] >= 1 and payload["write_failures"] >= 1,
            f"soft={payload['soft_failures']} writes={payload['write_failures']}",
        ),
        Invariant(
            "syscall-saw-eio",
            payload["syscall_eio_errors"] >= 1,
            f"{payload['syscall_eio_errors']} EIO returns",
        ),
    ]
    return payload, invariants


@_scenario(
    "jukebox",
    "server answers NFS3ERR_JUKEBOX for 60 ms; client retries after the "
    "jukebox delay and completes without duplicating data",
)
def _jukebox(seed: int):
    file_bytes = 1 * MIB
    bed = TestBed(
        target="linux",
        client="stock",
        mount=MountConfig(jukebox_delay_ns=ms(20)),
    )
    ServerFaultSchedule(bed.server).jukebox_between(0, ms(60))
    result = bed.run_sequential_write(file_bytes, time_limit_ns=seconds(600))
    payload = _common_payload(bed, result)
    payload["jukebox_injected"] = bed.server.jukebox_injected
    payload["jukebox_replies"] = bed.server.rpc.jukebox_replies
    invariants = [
        Invariant(
            "jukebox-injected",
            payload["jukebox_injected"] >= 1,
            f"{payload['jukebox_injected']} injections",
        ),
        Invariant(
            "client-waited-and-retried",
            payload["jukebox_retries"] >= 1,
            f"{payload['jukebox_retries']} jukebox retries",
        ),
        Invariant(
            "no-duplicate-ingest",
            payload["server_bytes_received"] == file_bytes,
            f"server ingested {payload['server_bytes_received']} for a "
            f"{file_bytes}-byte file",
        ),
    ]
    invariants += _stability_invariants(payload, file_bytes)
    return payload, invariants


@_scenario(
    "slot-starvation",
    "RPC slot table pinched to one slot for 35 ms; backlog absorbs the "
    "write stream and drains afterwards",
)
def _slot_starvation(seed: int):
    file_bytes = 2 * MIB
    bed = TestBed(target="netapp", client="stock")
    starve = SlotStarvation(bed.sim, bed.nfs.xprt, ms(5), ms(40), slots=1)
    result = bed.run_sequential_write(file_bytes, time_limit_ns=seconds(600))
    payload = _common_payload(bed, result)
    payload["starved_at_ns"] = starve.applied_at or 0
    payload["restored_at_ns"] = starve.restored_at or 0
    invariants = [
        Invariant(
            "starvation-applied",
            starve.applied_at is not None and starve.restored_at is not None,
            "window never fired",
        ),
        Invariant(
            "backlog-built-up",
            payload["backlog_peak"] >= 4,
            f"backlog peak {payload['backlog_peak']}",
        ),
    ]
    invariants += _stability_invariants(payload, file_bytes)
    return payload, invariants


@_scenario(
    "monotone-loss",
    "throughput must not improve as per-frame loss rises (0%, 2%, 8%)",
)
def _monotone_loss(seed: int):
    file_bytes = 1 * MIB
    rates = (0.0, 0.02, 0.08)
    payload: Dict[str, object] = {"loss_rates": list(rates)}
    elapsed: List[int] = []
    for rate in rates:
        bed = TestBed(
            target="netapp",
            client="stock",
            net=NetConfig(loss_probability=rate),
            mount=MountConfig(timeo_ns=ms(20), retrans=7),
        )
        result = bed.run_sequential_write(file_bytes, time_limit_ns=seconds(600))
        elapsed.append(result.flush_elapsed_ns)
        payload[f"flush_elapsed_ns@{rate}"] = result.flush_elapsed_ns
        payload[f"retransmits@{rate}"] = bed.nfs.xprt.stats.retransmits
        payload[f"trace_checksum@{rate}"] = _trace_checksum(result)
    monotone = all(a <= b for a, b in zip(elapsed, elapsed[1:]))
    invariants = [
        Invariant(
            "throughput-monotone",
            monotone,
            f"elapsed {elapsed} not non-decreasing",
        ),
        Invariant(
            "loss-cost-visible",
            elapsed[-1] > elapsed[0],
            f"8% loss no slower than clean run ({elapsed})",
        ),
    ]
    return payload, invariants


# -- entry points --------------------------------------------------------------


def run_scenario_payload(name: str, seed: int = 1) -> Dict[str, object]:
    """Pure function: one scenario run's payload (plus its fingerprint).

    Module-level and picklable so determinism tests can replay it in a
    worker process and compare byte-for-byte.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigError(
            f"unknown scenario {name!r} (expected one of {sorted(SCENARIOS)})"
        )
    payload, _ = scenario.run(seed)
    payload = dict(payload)
    payload["fingerprint"] = _fingerprint(payload)
    return payload


def _sanitizer_invariants(session) -> List[Invariant]:
    """Fold a sanitize session's findings into scenario invariants.

    Three rows — locks (ordering/deadlock/FIFO/depth), races (unlocked
    request-list or index mutations), invariants (accounting, durability,
    wait-queue FIFO) — each ok iff its group found nothing.
    """
    groups = session.grouped()
    rows = []
    for key in ("locks", "races", "invariants"):
        findings = groups[key]
        rows.append(
            Invariant(
                f"sanitize-{key}",
                not findings,
                "; ".join(str(f) for f in findings[:3]),
            )
        )
    return rows


def run_scenario(
    name: str,
    seed: int = 1,
    verify_determinism: bool = True,
    sanitize: bool = False,
    observe: bool = False,
) -> ScenarioOutcome:
    """Run one named scenario and audit its invariants.

    With ``verify_determinism`` the scenario runs twice and the two
    fingerprints must match — the repo's bit-for-bit reproducibility
    contract extended to faulted runs.

    With ``sanitize`` the first run executes under the runtime sanitizers
    (:mod:`repro.analysis.sanitize`), adding three invariant rows for
    lock discipline, races, and structural invariants.  With ``observe``
    it runs under an :func:`repro.obs.core.observed` session, collecting
    metrics and causal spans into ``outcome.observabilities``.  Only the
    first run is instrumented; the replay is not, so a matching
    fingerprint also proves neither observer perturbed the simulation.
    """
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigError(
            f"unknown scenario {name!r} (expected one of {sorted(SCENARIOS)})"
        )
    obs_session = None
    with ExitStack() as stack:
        if sanitize:
            from ..analysis.sanitize import sanitized

            san_session = stack.enter_context(sanitized())
        if observe:
            from ..obs.core import observed

            obs_session = stack.enter_context(observed())
        payload, invariants = scenario.run(seed)
    if sanitize:
        invariants.extend(_sanitizer_invariants(san_session))
    fingerprint = _fingerprint(payload)
    if verify_determinism:
        replay, _ = scenario.run(seed)
        replay_fp = _fingerprint(replay)
        invariants.append(
            Invariant(
                "deterministic",
                replay_fp == fingerprint,
                f"{fingerprint[:12]} vs replay {replay_fp[:12]}",
            )
        )
    return ScenarioOutcome(
        name=name,
        seed=seed,
        payload=payload,
        invariants=invariants,
        fingerprint=fingerprint,
        observabilities=(
            obs_session.observabilities if obs_session is not None else None
        ),
    )
