"""Client-side faults: RPC slot-table starvation.

Linux shares one transport (16 slots) per mount; a runaway workload or
a shrunken ``/proc/sys/sunrpc`` slot table throttles everything behind
it.  :class:`SlotStarvation` pinches the slot table down to a few slots
for a window of simulated time, forcing the backlog queue to absorb the
write stream.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..rpc.xprt import UdpTransport
from ..sim import Simulator

__all__ = ["SlotStarvation"]


class SlotStarvation:
    """Temporarily cap a transport's slot table."""

    def __init__(
        self,
        sim: Simulator,
        xprt: UdpTransport,
        start_ns: int,
        end_ns: int,
        slots: int = 1,
    ):
        if end_ns <= start_ns:
            raise ConfigError("starvation window must have positive duration")
        if slots < 1:
            raise ConfigError("cannot starve below one slot")
        self.xprt = xprt
        self.slots = slots
        self.applied_at = None
        self.restored_at = None
        sim.schedule_at(start_ns, self._apply)
        sim.schedule_at(end_ns, self._restore)
        self._sim = sim

    def _apply(self) -> None:
        self.xprt.slot_override = self.slots
        self.applied_at = self._sim.now

    def _restore(self) -> None:
        self.xprt.slot_override = None
        self.restored_at = self._sim.now
        # The window may have been closed for a while: wake rpciod so the
        # backlog starts draining immediately.
        self.xprt._nudge_rpciod()
