"""Deterministic fault injection for the simulated test bed.

Three layers, matching where real NFS deployments hurt:

* :mod:`repro.faults.link` — per-frame network disturbance (burst loss,
  reordering jitter, duplication) plugged into :class:`repro.net.link.Link`
  via :meth:`repro.net.switch.Switch.install_fault`;
* :mod:`repro.faults.server` — timed server pause/crash/restart and
  NFS3ERR_JUKEBOX windows against :class:`repro.server.base.NfsServerBase`;
* :mod:`repro.faults.client` — RPC slot-table starvation.

Everything draws randomness from named :class:`repro.sim.RngStreams`
streams, so a faulted run is exactly as reproducible as a clean one.
:mod:`repro.faults.scenarios` packages full chaos scenarios with
invariant checks (``python -m repro.experiments.cli faults``).
"""

from .client import SlotStarvation
from .link import (
    DelayJitter,
    DropFrames,
    Duplicate,
    FaultChain,
    GilbertElliott,
    LinkFault,
)
from .scenarios import SCENARIOS, ScenarioOutcome, run_scenario, run_scenario_payload
from .server import ServerFaultSchedule

__all__ = [
    "LinkFault",
    "GilbertElliott",
    "DelayJitter",
    "Duplicate",
    "DropFrames",
    "FaultChain",
    "ServerFaultSchedule",
    "SlotStarvation",
    "SCENARIOS",
    "ScenarioOutcome",
    "run_scenario",
    "run_scenario_payload",
]
