"""Timed server faults.

A :class:`ServerFaultSchedule` arms pause/crash/restart/jukebox actions
at absolute simulated times against one
:class:`~repro.server.base.NfsServerBase`.  Scheduling is plain
simulator callbacks, so a faulted run replays identically for a fixed
seed.
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import ConfigError
from ..server.base import NfsServerBase

__all__ = ["ServerFaultSchedule"]


class ServerFaultSchedule:
    """Declarative fault timeline for one server."""

    def __init__(self, server: NfsServerBase):
        self.server = server
        self.sim = server.sim
        #: (time_ns, action) pairs, in firing order, for post-mortems.
        self.log: List[Tuple[int, str]] = []

    def _fire(self, label: str, action) -> None:
        self.log.append((self.sim.now, label))
        action()

    def pause_between(self, start_ns: int, end_ns: int) -> "ServerFaultSchedule":
        """Stop servicing (requests queue) between the two times."""
        if end_ns <= start_ns:
            raise ConfigError("pause window must have positive duration")
        self.sim.schedule_at(start_ns, self._fire, "pause", self.server.pause)
        self.sim.schedule_at(end_ns, self._fire, "resume", self.server.resume)
        return self

    def crash_at(self, at_ns: int, lose_drc: bool = True) -> "ServerFaultSchedule":
        """Crash: drop all traffic, lose volatile state (and the DRC)."""
        self.sim.schedule_at(
            at_ns, self._fire, "crash", lambda: self.server.crash(lose_drc=lose_drc)
        )
        return self

    def restart_at(self, at_ns: int) -> "ServerFaultSchedule":
        """Reboot a crashed server (new write verifier)."""
        self.sim.schedule_at(at_ns, self._fire, "restart", self.server.restart)
        return self

    def jukebox_between(self, start_ns: int, end_ns: int) -> "ServerFaultSchedule":
        """Answer WRITE/COMMIT with NFS3ERR_JUKEBOX in the window."""
        if end_ns <= start_ns:
            raise ConfigError("jukebox window must have positive duration")
        self.sim.schedule_at(
            start_ns,
            self._fire,
            "jukebox",
            lambda: self.server.jukebox_window(end_ns - start_ns),
        )
        return self
