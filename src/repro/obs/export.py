"""Observability exporters.

Three formats:

* **Chrome trace-event JSON** (:func:`chrome_trace`) — loads directly
  in Perfetto / ``chrome://tracing``.  Spans become complete (``"X"``)
  events with the causal ``span``/``parent`` ids in ``args``; samples
  (srtt, backlog depth, dirty bytes) become counter (``"C"``) events.
  Timestamps are simulated microseconds.
* **prometheus-style text** (:func:`prometheus_text`) — one line per
  metric, histograms expanded to cumulative ``_bucket``/``_sum``/
  ``_count`` rows, sorted for bit-stable output.
* **readprofile-style flat profile** (:func:`flat_profile`) — the
  :class:`~repro.sim.profiler.SamplingProfiler` histogram plus the BKL
  ledger and syscall percentiles, in the shape the paper's authors read.

:func:`build_spans` and :func:`validate_chrome_trace` are the schema
checks the CLI and tests share.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "build_spans",
    "chrome_trace",
    "validate_chrome_trace",
    "prometheus_text",
    "flat_profile",
    "span_children",
    "span_descendants",
]


class Span:
    """One reconstructed span from the trace ring."""

    __slots__ = ("sid", "parent", "component", "name", "start", "end", "attrs")

    def __init__(self, sid: int, parent: int, component: str, name: str,
                 start: int, attrs: Dict[str, Any]):
        self.sid = sid
        self.parent = parent
        self.component = component
        self.name = name
        self.start = start
        self.end: Optional[int] = None
        self.attrs = attrs

    @property
    def duration(self) -> int:
        return (self.end if self.end is not None else self.start) - self.start


def build_spans(tracer) -> Dict[int, Span]:
    """Pair span_begin/span_end records into :class:`Span` objects."""
    spans: Dict[int, Span] = {}
    for rec in tracer.records():
        if rec.kind == "span_begin":
            fields = dict(rec.fields)
            sid = fields.pop("span")
            parent = fields.pop("parent", 0)
            name = fields.pop("name", "")
            spans[sid] = Span(sid, parent, rec.component, name, rec.time, fields)
        elif rec.kind == "span_end":
            span = spans.get(rec.fields["span"])
            if span is not None:
                span.end = rec.time
                for key, value in rec.fields.items():
                    if key != "span":
                        span.attrs[key] = value
    return spans


def span_children(spans: Dict[int, Span]) -> Dict[int, List[int]]:
    """``parent sid -> [child sids]`` (0 keys the roots)."""
    children: Dict[int, List[int]] = {}
    for sid in sorted(spans):
        children.setdefault(spans[sid].parent, []).append(sid)
    return children


def span_descendants(spans: Dict[int, Span], root: int) -> List[Span]:
    """Every span causally under ``root`` (excluding the root itself)."""
    children = span_children(spans)
    out: List[Span] = []
    stack = list(children.get(root, []))
    while stack:
        sid = stack.pop()
        span = spans[sid]
        out.append(span)
        stack.extend(children.get(sid, []))
    return out


# -- Chrome trace-event JSON --------------------------------------------------


def _canonical_ids(spans: Dict[int, Span]) -> Dict[int, int]:
    """Renumber spans 1..N by *content*, not by mint order.

    Raw span ids depend on interleaving (serial runs mint from one
    counter; sharded runs carve per-world id bases), so byte-identical
    exports need ids derived from what each span *is*: its times,
    component, name, attributes, and — recursively — its parent's key.
    Two runs that simulate the same history therefore export the same
    ids regardless of how the spans were numbered at record time.
    """
    keys: Dict[int, Tuple] = {}
    # Iterative post-order: a span's key embeds its parent's key, so
    # push unresolved ancestors first and fold back down.
    for start_sid in spans:
        stack = [start_sid]
        while stack:
            sid = stack[-1]
            if sid in keys:
                stack.pop()
                continue
            span = spans[sid]
            if span.parent in spans and span.parent not in keys:
                stack.append(span.parent)
                continue
            keys[sid] = (
                span.start,
                span.end if span.end is not None else span.start,
                span.component,
                span.name,
                json.dumps(span.attrs, sort_keys=True, default=str),
                keys.get(span.parent, ()),
            )
            stack.pop()
    order = sorted(spans, key=lambda sid: keys[sid])
    return {sid: i + 1 for i, sid in enumerate(order)}


def chrome_trace(obs, process_name: str = "repro-nfs") -> Dict[str, Any]:
    """The whole observer as a Chrome trace-event JSON object.

    One pid, one tid per component (assigned in first-seen order over
    the canonical span ordering).  Span ids are canonically renumbered
    (:func:`_canonical_ids`) and counter samples sorted, so a sharded
    fleet exports the same bytes as its serial twin.
    """
    spans = build_spans(obs.tracer)
    canonical = _canonical_ids(spans)
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]

    def tid_for(component: str) -> int:
        tid = tids.get(component)
        if tid is None:
            tid = len(tids) + 1
            tids[component] = tid
            events.append(
                {
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": component},
                }
            )
        return tid

    for sid in sorted(spans, key=lambda s: canonical[s]):
        span = spans[sid]
        end = span.end if span.end is not None else span.start
        args: Dict[str, Any] = {
            "span": canonical[sid],
            "parent": canonical.get(span.parent, 0),
        }
        args.update(span.attrs)
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tid_for(span.component),
                "name": span.name,
                "cat": span.component,
                "ts": span.start / 1000.0,
                "dur": (end - span.start) / 1000.0,
                "args": args,
            }
        )
    samples = sorted(
        obs.tracer.records(kind="sample"),
        key=lambda rec: (
            rec.time,
            rec.component,
            rec.fields["name"],
            repr(rec.fields["value"]),
        ),
    )
    for rec in samples:
        events.append(
            {
                "ph": "C",
                "pid": 1,
                "tid": tid_for(rec.component),
                "name": f"{rec.component}/{rec.fields['name']}",
                "ts": rec.time / 1000.0,
                "args": {"value": rec.fields["value"]},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj: Any) -> Dict[int, Span]:
    """Structural checks on an exported trace; returns its spans.

    Raises :class:`ValueError` on malformed JSON structure, duplicate
    span ids, dangling parents, negative durations, or a parent that
    begins after its child — the "spans nest properly" contract.
    Asynchronous completion spans may *end* after their parent (an RPC
    outlives the syscall that queued it), so only begin-ordering is
    enforced.
    """
    if not isinstance(obj, dict) or not isinstance(obj.get("traceEvents"), list):
        raise ValueError("not a trace-event JSON object")
    spans: Dict[int, Span] = {}
    for event in obj["traceEvents"]:
        if not isinstance(event, dict) or "ph" not in event:
            raise ValueError(f"malformed event {event!r}")
        if event["ph"] != "X":
            continue
        for field in ("name", "ts", "dur", "args"):
            if field not in event:
                raise ValueError(f"span event missing {field!r}: {event!r}")
        if event["dur"] < 0:
            raise ValueError(f"negative duration: {event!r}")
        sid = event["args"].get("span")
        parent = event["args"].get("parent", 0)
        if not isinstance(sid, int) or sid <= 0:
            raise ValueError(f"span event without a positive span id: {event!r}")
        if sid in spans:
            raise ValueError(f"duplicate span id {sid}")
        span = Span(
            sid, parent, event.get("cat", ""), event["name"],
            event["ts"], dict(event["args"]),
        )
        span.end = event["ts"] + event["dur"]
        spans[sid] = span
    for sid in sorted(spans):
        span = spans[sid]
        if span.parent:
            parent = spans.get(span.parent)
            if parent is None:
                raise ValueError(f"span {sid} has dangling parent {span.parent}")
            if parent.start > span.start:
                raise ValueError(
                    f"span {sid} begins before its parent {span.parent}"
                )
    # A self-check that the object round-trips as JSON.
    json.dumps(obj)
    return spans


# -- prometheus-style text ----------------------------------------------------


def _prom_name(key: str) -> Tuple[str, Optional[str]]:
    """``component/name[/label]`` -> (metric name, optional label)."""
    parts = key.split("/")
    if len(parts) > 2:
        name, label = "_".join(parts[:2]), "/".join(parts[2:])
    else:
        name, label = "_".join(parts), None
    safe = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{safe}", label


def prometheus_text(registry) -> str:
    """The registry as prometheus exposition-format text."""
    lines: List[str] = []
    for key, metric in registry.items():
        name, label = _prom_name(key)
        suffix = f'{{label="{label}"}}' if label is not None else ""
        if metric.kind == "histogram":
            for le, cumulative in metric.cumulative():
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{name}_sum {metric.total}")
            lines.append(f"{name}_count {metric.count}")
        elif metric.kind == "gauge":
            lines.append(f"{name}{suffix} {metric.value}")
            lines.append(f"{name}_max{suffix} {metric.max_value}")
        else:
            lines.append(f"{name}{suffix} {metric.value}")
    return "\n".join(lines) + "\n"


# -- readprofile-style flat profile ------------------------------------------


def flat_profile(
    profiler,
    registry=None,
    trace=None,
    top: int = 30,
) -> str:
    """A readprofile-style report unifying the sampling profiler with the
    metrics ledger and (optionally) syscall latency percentiles."""
    lines: List[str] = []
    if profiler is not None and profiler.total_samples:
        lines.append("samples  fraction  label")
        for label, count in profiler.top(top, include_idle=True):
            frac = count / profiler.total_samples
            lines.append(f"{count:7d}  {frac:7.2%}  {label}")
    else:
        lines.append("(no profiler samples)")
    if trace is not None and len(trace):
        pcts = trace.percentiles_ns()
        lines.append("")
        lines.append("write() latency (us)")
        lines.append(
            f"  mean {trace.mean_ns() / 1000:.1f}"
            f"  p50 {pcts[50] / 1000:.1f}"
            f"  p90 {pcts[90] / 1000:.1f}"
            f"  p99 {pcts[99] / 1000:.1f}"
            f"  max {trace.max_ns() / 1000:.1f}"
        )
    if registry is not None and len(registry):
        lines.append("")
        lines.append("value      metric")
        for key, metric in registry.items():
            if metric.kind == "histogram":
                lines.append(f"{metric.count:>10} {key} (events)")
            else:
                lines.append(f"{metric.value:>10} {key}")
    return "\n".join(lines) + "\n"
