"""Unified observability: metrics registry + causal span tracing.

See :mod:`repro.obs.core` for the span model and attach machinery,
:mod:`repro.obs.export` for the Chrome-trace / prometheus / flat-profile
exporters, and :mod:`repro.obs.bundle` for per-run bundles and the
``repro-nfs trace`` trace points.  ``docs/observability.md`` has the
full metric catalogue.
"""

from .core import (
    DISABLED,
    Observability,
    ObsSession,
    active_session,
    attach,
    attach_if_active,
    observed,
)
from .export import (
    build_spans,
    chrome_trace,
    flat_profile,
    prometheus_text,
    span_children,
    span_descendants,
    validate_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import render_ascii, render_html, sparkline
from .slo import DEFAULT_SLOS, SLO_REPORT_SCHEMA, SloSpec, evaluate_slos
from .timeseries import (
    DEFAULT_RETENTION,
    DEFAULT_WINDOW_NS,
    TIMELINE_SCHEMA,
    LogLinearHistogram,
    TimelineRegistry,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)

__all__ = [
    "DISABLED",
    "Observability",
    "ObsSession",
    "active_session",
    "attach",
    "attach_if_active",
    "observed",
    "build_spans",
    "chrome_trace",
    "flat_profile",
    "prometheus_text",
    "span_children",
    "span_descendants",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_ascii",
    "render_html",
    "sparkline",
    "DEFAULT_SLOS",
    "SLO_REPORT_SCHEMA",
    "SloSpec",
    "evaluate_slos",
    "DEFAULT_RETENTION",
    "DEFAULT_WINDOW_NS",
    "TIMELINE_SCHEMA",
    "LogLinearHistogram",
    "TimelineRegistry",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
]
