"""Dashboard rendering: timelines + SLO verdicts as ASCII or HTML.

Pure string builders over a :class:`~repro.obs.timeseries.
TimelineRegistry` snapshot and an ``slo-report@1`` dict — file I/O
stays in the CLI/bundle layer.  The ASCII dashboard uses eight-level
sparklines for every timeline, a percentile table per objective, and
one verdict line per SLO; the HTML variant is a dependency-free
standalone page with inline SVG timelines.
"""

from __future__ import annotations

import html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .timeseries import TimelineRegistry

__all__ = ["sparkline", "render_ascii", "render_html"]

_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Eight-level unicode sparkline, downsampled to ``width`` cells."""
    if not values:
        return ""
    if len(values) > width:
        # Bucket-max downsampling keeps spikes visible.
        cells = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            cells.append(max(values[lo:hi]))
    else:
        cells = list(values)
    top = max(cells)
    if top <= 0:
        return _SPARKS[0] * len(cells)
    out = []
    for v in cells:
        level = int(v / top * (len(_SPARKS) - 1) + 0.5)
        out.append(_SPARKS[max(0, min(level, len(_SPARKS) - 1))])
    return "".join(out)


def _series_values(series: Any) -> Tuple[List[int], List[float]]:
    """Dense ``(window starts, values)`` across the series' span."""
    items = series.items()
    if not items:
        return [], []
    first, last = items[0][0], items[-1][0]
    by_window = dict(items)
    starts: List[int] = []
    values: List[float] = []
    for wi in range(first, last + 1):
        starts.append(wi * series.window_ns)
        cell = by_window.get(wi)
        if cell is None:
            values.append(0.0)
        elif series.kind == "windowed_counter":
            values.append(float(cell))
        elif series.kind == "windowed_gauge":
            values.append(float(cell[1]))  # window maximum
        else:
            values.append(float(cell.percentile(99)))
    return starts, values


def _fmt(value: float) -> str:
    if value >= 10_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 10_000:
        return f"{value / 1_000:.1f}k"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def _slo_lines(report: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    for row in report.get("slos", []):
        spec = row["spec"]
        attained = row["attained"]
        attained_s = f"{attained:.4%}" if attained is not None else "n/a"
        lines.append(
            f"  [{row['verdict']:>8}] {spec['name']}: "
            f"{spec['metric']} <= {_fmt(spec['threshold'])} "
            f"target {spec['target']:.2%}, attained {attained_s} "
            f"({row['good']}/{row['samples']})"
        )
        for alert in row.get("alerts", []):
            lines.append(
                f"             burn alert {alert[0] / 1e6:.0f}ms"
                f" - {alert[1] / 1e6:.0f}ms"
            )
        for violation in row.get("violations", []):
            attribution = violation.get("attribution")
            signal = (
                f" <- {attribution['signal']} (z={attribution['z']:+.1f})"
                if attribution
                else ""
            )
            lines.append(
                f"             violated {violation['start_ns'] / 1e6:.0f}ms"
                f" - {violation['end_ns'] / 1e6:.0f}ms"
                f" (bad {violation['bad_fraction']:.1%}){signal}"
            )
    return lines


def _percentile_rows(report: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    for row in report.get("slos", []):
        windows = row.get("windows", [])
        if not windows:
            continue
        lines.append(f"  {row['spec']['metric']} per window:")
        lines.append(
            "    window_ms      count        p50        p99      p99.9"
        )
        for w in windows:
            lines.append(
                f"    {w['start_ns'] / 1e6:>9.0f}  {w['count']:>9}"
                f"  {_fmt(w['p50']):>9}  {_fmt(w['p99']):>9}"
                f"  {_fmt(w['p99.9']):>9}"
            )
    return lines


def render_ascii(
    registry: TimelineRegistry, report: Optional[Dict[str, Any]] = None
) -> str:
    """The dashboard as terminal text."""
    lines: List[str] = ["== timelines =="]
    width = max([len(key) for key, _ in registry.items()] or [0])
    for key, series in registry.items():
        _starts, values = _series_values(series)
        peak = max(values) if values else 0.0
        lines.append(
            f"  {key:<{width}}  {sparkline(values):<60}  peak {_fmt(peak)}"
        )
    if report is not None:
        lines.append("")
        lines.append("== slo verdicts ==")
        lines.extend(_slo_lines(report))
        knee = report.get("knee")
        if knee:
            lines.append(
                f"  knee: p99 {_fmt(knee['p99'])} at "
                f"{_fmt(knee['offered_bytes_per_window'])} bytes/window "
                f"(t={knee['window_start_ns'] / 1e6:.0f}ms)"
            )
        lines.append("")
        lines.append("== percentiles ==")
        lines.extend(_percentile_rows(report))
    return "\n".join(lines) + "\n"


def _svg_polyline(values: Sequence[float], w: int = 600, h: int = 40) -> str:
    if not values:
        return ""
    top = max(values) or 1.0
    step = w / max(1, len(values) - 1) if len(values) > 1 else w
    points = " ".join(
        f"{i * step:.1f},{h - v / top * (h - 2):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}">'
        f'<polyline fill="none" stroke="#369" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def render_html(
    registry: TimelineRegistry,
    report: Optional[Dict[str, Any]] = None,
    title: str = "repro-nfs report",
) -> str:
    """The dashboard as a dependency-free standalone HTML page."""
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>body{font-family:monospace;margin:2em;}"
        "table{border-collapse:collapse;}"
        "td,th{padding:2px 10px;border:1px solid #ccc;text-align:right;}"
        "td.k,th.k{text-align:left;}"
        ".ok{color:#080;}.violated{color:#b00;}.no-data{color:#888;}"
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<h2>Timelines</h2><table>",
        "<tr><th class='k'>series</th><th>shape</th><th>peak</th></tr>",
    ]
    for key, series in registry.items():
        _starts, values = _series_values(series)
        peak = max(values) if values else 0.0
        parts.append(
            f"<tr><td class='k'>{html.escape(key)}</td>"
            f"<td>{_svg_polyline(values)}</td>"
            f"<td>{_fmt(peak)}</td></tr>"
        )
    parts.append("</table>")
    if report is not None:
        parts.append("<h2>SLO verdicts</h2><table>")
        parts.append(
            "<tr><th class='k'>slo</th><th class='k'>objective</th>"
            "<th>target</th><th>attained</th><th class='k'>verdict</th></tr>"
        )
        for row in report.get("slos", []):
            spec = row["spec"]
            attained = row["attained"]
            attained_s = f"{attained:.4%}" if attained is not None else "n/a"
            parts.append(
                f"<tr><td class='k'>{html.escape(spec['name'])}</td>"
                f"<td class='k'>{html.escape(spec['metric'])} &le; "
                f"{_fmt(spec['threshold'])}</td>"
                f"<td>{spec['target']:.2%}</td><td>{attained_s}</td>"
                f"<td class='k {row['verdict']}'>{row['verdict']}</td></tr>"
            )
        parts.append("</table>")
        knee = report.get("knee")
        if knee:
            parts.append(
                f"<p>knee: p99 {_fmt(knee['p99'])} at "
                f"{_fmt(knee['offered_bytes_per_window'])} bytes/window</p>"
            )
        parts.append(
            "<details><summary>raw slo-report@1</summary><pre>"
            + html.escape(json.dumps(report, indent=1, sort_keys=True))
            + "</pre></details>"
        )
    parts.append("</body></html>")
    return "\n".join(parts)
