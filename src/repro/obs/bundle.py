"""Per-run observability bundles.

A *bundle* is the on-disk artefact ``repro-nfs trace`` and the
``--obs-dir`` options produce: one directory holding

* ``trace.json`` — Chrome trace-event JSON (Perfetto-loadable),
* ``metrics.prom`` — prometheus-style text dump,
* ``profile.txt`` — readprofile-style flat profile,
* ``timeline.json`` — windowed per-layer timelines (``timeline@1``),
* ``slo.json`` — SLO verdicts over those timelines (``slo-report@1``).

Each experiment id maps to a small single-bed *trace point* — a
representative configuration observed end to end.  Figure sweeps run
dozens of beds (some in worker processes where an observer could not
follow); the trace point reruns one characteristic bed inline with
tracing on, which is what a causal write-path trace is for.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..units import KIB, MIB
from .core import Observability, observed
from .export import chrome_trace, flat_profile, prometheus_text, validate_chrome_trace
from .slo import evaluate_slos

__all__ = ["TRACE_POINTS", "run_traced", "write_bundle", "trace_names"]

#: Experiment id -> (TestBed kwargs, file_bytes) for the observed run.
TRACE_POINTS: Dict[str, Tuple[Dict[str, object], int]] = {
    "fig1": ({"target": "linux", "client": "stock"}, 4 * MIB),
    "fig2": ({"target": "netapp", "client": "stock"}, 8 * MIB),
    "fig3": ({"target": "netapp", "client": "noflush"}, 8 * MIB),
    "fig4": ({"target": "netapp", "client": "hashtable"}, 8 * MIB),
    "fig5": ({"target": "netapp", "client": "stock"}, 8 * MIB),
    "fig6": ({"target": "netapp", "client": "nolock"}, 8 * MIB),
    "tab1": ({"target": "linux", "client": "stock"}, 4 * MIB),
    "fig7": ({"target": "linux", "client": "enhanced"}, 4 * MIB),
    # Multi-client trace point: kwargs carry "clients" and run a fleet.
    "fleet": ({"clients": 4, "target": "netapp"}, 1 * MIB),
    # The scale experiment's observable slice: big enough to queue at
    # the server, small enough to trace.
    "scale": ({"clients": 16, "target": "netapp"}, 256 * KIB),
}


def trace_names() -> List[str]:
    """Everything ``repro-nfs trace`` accepts: experiments + scenarios."""
    from ..faults import SCENARIOS

    return sorted(TRACE_POINTS) + sorted(SCENARIOS)


def run_traced(name: str, seed: int = 1):
    """Run one observed trace-point or fault scenario.

    Returns ``(observabilities, result, outcome)``: the per-bed
    observers, the benchmark result for experiment trace points (else
    None), and the scenario outcome for fault names (else None).
    """
    from ..faults import SCENARIOS, run_scenario

    if name in TRACE_POINTS:
        from ..bench.runner import TestBed

        kwargs, file_bytes = TRACE_POINTS[name]
        if "clients" in kwargs:
            from ..topology import FleetWorkload, ServerSpec, Topology

            with observed() as session:
                topo = Topology(
                    clients=kwargs["clients"],
                    servers=(ServerSpec(kwargs["target"]),),
                )
                fleet = FleetWorkload(topo, file_bytes).run()
            for stack in topo.clients:
                # Through the scoped view: lock stats land under
                # "client{i}/bkl".
                stack.obs.harvest_lock(stack.nfs.bkl)
            obs = session.observabilities[0]
            obs.latency_trace = fleet.clients[0].result.trace
            return session.observabilities, fleet.clients[0].result, None
        with observed() as session:
            bed = TestBed(profile=True, **kwargs)
            result = bed.run_sequential_write(file_bytes)
        obs = session.observabilities[0]
        if bed.nfs is not None:
            obs.harvest_lock(bed.nfs.bkl)
        obs.profiler = bed.profiler
        obs.latency_trace = result.trace
        return session.observabilities, result, None
    if name in SCENARIOS:
        outcome = run_scenario(name, seed=seed, verify_determinism=True, observe=True)
        return outcome.observabilities or [], None, outcome
    raise ConfigError(
        f"unknown trace target {name!r} (expected one of {', '.join(trace_names())})"
    )


def write_bundle(
    obs: Observability,
    out_dir: str,
    name: str,
    profiler=None,
    trace=None,
    index: Optional[int] = None,
    force: bool = False,
) -> List[str]:
    """Write one observer's bundle into ``out_dir``; returns the paths.

    Multi-bed runs (e.g. the monotone-loss scenario) pass ``index`` to
    suffix the files per bed.  Refuses to clobber an existing bundle
    file unless ``force`` is set (``--force`` on the CLI).
    """
    os.makedirs(out_dir, exist_ok=True)
    suffix = "" if index is None else f"-{index}"
    names = [
        f"trace{suffix}.json",
        f"metrics{suffix}.prom",
        f"profile{suffix}.txt",
        f"timeline{suffix}.json",
        f"slo{suffix}.json",
    ]
    paths = [os.path.join(out_dir, n) for n in names]
    if not force:
        clobbered = [p for p in paths if os.path.exists(p)]
        if clobbered:
            raise ConfigError(
                f"refusing to overwrite {', '.join(clobbered)} "
                "(pass --force to replace an existing bundle)"
            )
    trace_path, metrics_path, profile_path, timeline_path, slo_path = paths

    trace_obj = chrome_trace(obs, process_name=f"repro-nfs {name}")
    validate_chrome_trace(trace_obj)
    with open(trace_path, "w") as f:
        json.dump(trace_obj, f, indent=1, sort_keys=True)

    with open(metrics_path, "w") as f:
        f.write(prometheus_text(obs.metrics))

    if profiler is None:
        profiler = obs.profiler
    if trace is None:
        trace = obs.latency_trace
    with open(profile_path, "w") as f:
        f.write(flat_profile(profiler, registry=obs.metrics, trace=trace))

    with open(timeline_path, "w") as f:
        json.dump(obs.timelines.snapshot(), f, indent=1, sort_keys=True)

    with open(slo_path, "w") as f:
        json.dump(evaluate_slos(obs.timelines), f, indent=1, sort_keys=True)
    return paths
