"""Declarative SLOs evaluated post-run from the timelines.

An :class:`SloSpec` names an objective — a windowed-histogram timeline
(e.g. ``syscall/write_latency_us``), a threshold that separates good
events from bad, and a target good fraction — plus the SRE-style
multi-window burn-rate alerting policy (a short and a long window must
*both* burn error budget faster than ``burn_factor`` before an alert
fires, the classic 1h/6h pairing scaled to simulated time).

:func:`evaluate_slos` turns a :class:`~repro.obs.timeseries.
TimelineRegistry` (live, or rebuilt from a ``timeline.json``) into a
versioned ``slo-report@1`` dict containing:

* per-window p50/p99/p99.9 of every objective,
* attainment, verdict, burn-rate series and alert spans per SLO,
* goodput-vs-offered-load timelines (client write bytes vs server
  ingest bytes),
* knee detection — max discrete curvature on the latency-vs-offered-
  load curve (:func:`repro.analysis.stats.knee_point`),
* violation spans, each attributed to the dominant per-layer signal
  (the timeline with the largest z-score against its own run-wide
  distribution during the span).

Everything is integer/float arithmetic over the snapshot — evaluation
runs after the simulation, never inside it, and two registries with
identical contents produce byte-identical reports (dict keys are
sorted, floats come from identical operations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.stats import knee_point, mean, stddev
from ..errors import ConfigError
from .timeseries import TimelineRegistry, WindowedHistogram

__all__ = [
    "SloSpec",
    "SLO_REPORT_SCHEMA",
    "DEFAULT_SLOS",
    "evaluate_slos",
    "matching_series",
]

#: Version tag carried by SLO reports; bump when the format changes.
SLO_REPORT_SCHEMA = "repro-nfs/slo-report@1"

#: Percentiles every objective reports per window.
REPORT_PERCENTILES = (50.0, 99.0, 99.9)


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over a windowed-histogram timeline."""

    #: Report label, e.g. ``"write-p99"``.
    name: str
    #: Objective timeline key.  A series matches when its key equals
    #: ``metric`` or ends with ``"/" + metric`` — so client-scoped fleet
    #: keys (``client3/syscall/write_latency_us``) merge into one
    #: fleet-wide objective.
    metric: str
    #: Good-event threshold in the metric's own unit (µs for the write
    #: latency timelines): a sample is *good* when ``value <= threshold``.
    threshold: float
    #: Target good fraction, e.g. 0.99 for a three-nines-ish objective.
    target: float = 0.99
    #: Multi-window burn-rate windows in simulated ns (short, long, ...).
    #: Scaled stand-ins for SRE's 1h/6h pair.
    burn_windows_ns: Tuple[int, ...] = (50_000_000, 250_000_000)
    #: Alert when every burn window exceeds this budget-burn multiple.
    burn_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.target < 1:
            raise ConfigError(f"slo {self.name!r}: target must be in (0, 1)")
        if self.threshold < 0:
            raise ConfigError(f"slo {self.name!r}: negative threshold")
        if not self.burn_windows_ns or any(
            w <= 0 for w in self.burn_windows_ns
        ):
            raise ConfigError(
                f"slo {self.name!r}: burn windows must be positive"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "threshold": self.threshold,
            "target": self.target,
            "burn_windows_ns": list(self.burn_windows_ns),
            "burn_factor": self.burn_factor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SloSpec":
        known = {
            "name",
            "metric",
            "threshold",
            "target",
            "burn_windows_ns",
            "burn_factor",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(f"slo: unknown key(s) {', '.join(unknown)}")
        kwargs = dict(data)
        if "burn_windows_ns" in kwargs:
            kwargs["burn_windows_ns"] = tuple(kwargs["burn_windows_ns"])
        return SloSpec(**kwargs)


#: The out-of-the-box objective `repro-nfs report` evaluates when a run
#: carries no explicit specs: writes should complete within 50 simulated
#: milliseconds (spikes past that are the paper's §3.3 pathology).
DEFAULT_SLOS = (
    SloSpec(
        name="write-latency",
        metric="syscall/write_latency_us",
        threshold=50_000.0,
        target=0.95,
    ),
)


def matching_series(
    registry: TimelineRegistry, metric: str
) -> List[Tuple[str, Any]]:
    """Timelines whose key is ``metric`` or ends with ``"/" + metric``."""
    suffix = "/" + metric
    return [
        (key, series)
        for key, series in registry.items()
        if key == metric or key.endswith(suffix)
    ]


def _merged_objective(
    registry: TimelineRegistry, metric: str
) -> Optional[WindowedHistogram]:
    """All matching histogram timelines folded into one (fleet-wide)."""
    matches = [
        (key, series)
        for key, series in matching_series(registry, metric)
        if series.kind == "windowed_histogram"
    ]
    if not matches:
        return None
    first = matches[0][1]
    merged = WindowedHistogram(
        metric,
        first.window_ns,
        first.retention,
        subbucket_bits=first.subbucket_bits,
        max_value=first.max_value,
    )
    for _key, series in matches:
        merged.absorb_windowed_histogram(
            (wi, hist.snapshot_log_linear()) for wi, hist in series.items()
        )
    return merged


def _sum_windows(
    registry: TimelineRegistry, metric: str
) -> Dict[int, int]:
    """Per-window sums of every matching windowed counter."""
    out: Dict[int, int] = {}
    for _key, series in matching_series(registry, metric):
        if series.kind != "windowed_counter":
            continue
        for wi, n in series.items():
            out[wi] = out.get(wi, 0) + n
    return out


def _gauge_window_value(cell: Any) -> float:
    """A gauge window's scalar for attribution: its maximum."""
    return cell[1]


def _signal_windows(series: Any) -> Dict[int, float]:
    """Per-window scalar view of a counter or gauge timeline."""
    if series.kind == "windowed_counter":
        return {wi: float(n) for wi, n in series.items()}
    if series.kind == "windowed_gauge":
        return {wi: float(_gauge_window_value(c)) for wi, c in series.items()}
    return {}


def _attribute(
    registry: TimelineRegistry,
    span_windows: Sequence[int],
    objective_metric: str,
) -> Optional[Dict[str, Any]]:
    """Dominant per-layer signal during a violation span.

    For every counter/gauge timeline (the objective itself excluded),
    compare its mean level across the span's windows against its
    run-wide mean in units of its run-wide standard deviation; the
    largest z-score wins, ties broken by key order.
    """
    best: Optional[Tuple[float, str]] = None
    suffix = "/" + objective_metric
    for key, series in registry.items():
        if key == objective_metric or key.endswith(suffix):
            continue
        values = _signal_windows(series)
        if len(values) < 2:
            continue
        all_values = [values[wi] for wi in sorted(values)]
        sigma = stddev(all_values)
        if sigma == 0:
            continue
        in_span = [values.get(wi, 0.0) for wi in span_windows]
        z = (mean(in_span) - mean(all_values)) / sigma
        # Strictly-greater keeps the first (lexicographically smallest)
        # key on ties, because registry.items() is sorted.
        if best is None or z > best[0]:
            best = (z, key)
    if best is None:
        return None
    return {"signal": best[1], "z": round(best[0], 6)}


def _contiguous_spans(windows: Sequence[int]) -> List[List[int]]:
    spans: List[List[int]] = []
    for wi in windows:
        if spans and wi == spans[-1][-1] + 1:
            spans[-1].append(wi)
        else:
            spans.append([wi])
    return spans


def _burn_series(
    window_stats: Dict[int, Tuple[int, int]],
    window_ns: int,
    burn_window_ns: int,
    target: float,
) -> List[Tuple[int, float]]:
    """``(coarse window start index, burn rate)`` for one burn window.

    Burn rate is the span's bad fraction divided by the error budget
    ``1 - target`` — a rate of 1.0 spends budget exactly at the
    sustainable pace, >1 burns it faster.
    """
    group = max(1, -(-burn_window_ns // window_ns))  # ceil division
    buckets: Dict[int, List[int]] = {}
    for wi in window_stats:
        buckets.setdefault(wi // group, []).append(wi)
    out: List[Tuple[int, float]] = []
    budget = 1.0 - target
    for bucket in sorted(buckets):
        count = sum(window_stats[wi][0] for wi in buckets[bucket])
        good = sum(window_stats[wi][1] for wi in buckets[bucket])
        bad_fraction = (count - good) / count if count else 0.0
        out.append((bucket * group, bad_fraction / budget))
    return out


def _evaluate_one(
    registry: TimelineRegistry, spec: SloSpec
) -> Dict[str, Any]:
    window_ns = registry.window_ns
    objective = _merged_objective(registry, spec.metric)
    row: Dict[str, Any] = {
        "spec": spec.to_dict(),
        "samples": 0,
        "good": 0,
        "attained": None,
        "verdict": "no-data",
        "windows": [],
        "burn": [],
        "alerts": [],
        "violations": [],
    }
    if objective is None or not len(objective):
        return row

    window_stats: Dict[int, Tuple[int, int]] = {}
    for wi, hist in objective.items():
        good = hist.count_le(spec.threshold)
        window_stats[wi] = (hist.count, good)
        pcts = hist.percentiles(REPORT_PERCENTILES)
        row["windows"].append(
            {
                "start_ns": wi * window_ns,
                "count": hist.count,
                "good": good,
                "p50": pcts[50.0],
                "p99": pcts[99.0],
                "p99.9": pcts[99.9],
            }
        )
    samples = sum(c for c, _ in window_stats.values())
    good = sum(g for _, g in window_stats.values())
    row["samples"] = samples
    row["good"] = good
    row["attained"] = good / samples if samples else None
    row["verdict"] = (
        "ok" if samples and good / samples >= spec.target else "violated"
    )

    # Multi-window burn rates + the all-windows-burning alert spans.
    burn_rows = []
    alerting: Optional[set] = None
    for burn_window_ns in spec.burn_windows_ns:
        series = _burn_series(
            window_stats, window_ns, burn_window_ns, spec.target
        )
        group = max(1, -(-burn_window_ns // window_ns))
        burn_rows.append(
            {
                "window_ns": burn_window_ns,
                "rates": [
                    [start_wi * window_ns, round(rate, 6)]
                    for start_wi, rate in series
                ],
            }
        )
        # Base windows covered by a coarse window burning too fast.
        hot = set()
        for start_wi, rate in series:
            if rate > spec.burn_factor:
                hot.update(range(start_wi, start_wi + group))
        alerting = hot if alerting is None else (alerting & hot)
    row["burn"] = burn_rows
    observed = sorted(set(window_stats) & (alerting or set()))
    row["alerts"] = [
        [span[0] * window_ns, (span[-1] + 1) * window_ns]
        for span in _contiguous_spans(observed)
    ]

    # Violation spans: contiguous windows whose good fraction misses the
    # target, attributed to the dominant concurrent per-layer signal.
    violating = [
        wi
        for wi in sorted(window_stats)
        if window_stats[wi][0]
        and window_stats[wi][1] / window_stats[wi][0] < spec.target
    ]
    for span in _contiguous_spans(violating):
        count = sum(window_stats[wi][0] for wi in span)
        good_in_span = sum(window_stats[wi][1] for wi in span)
        violation = {
            "start_ns": span[0] * window_ns,
            "end_ns": (span[-1] + 1) * window_ns,
            "windows": len(span),
            "bad_fraction": round((count - good_in_span) / count, 6),
        }
        attribution = _attribute(registry, span, spec.metric)
        if attribution is not None:
            violation["attribution"] = attribution
        row["violations"].append(violation)
    return row


def _offered_windows(registry: TimelineRegistry) -> Dict[int, int]:
    """Per-window offered bytes.

    Open-loop runs record the arrival process's intent as
    ``traffic/offered_bytes`` — the true offered load, independent of
    how fast the system absorbs it.  Closed-loop runs have no arrival
    process, so the syscall layer's accepted writes stand in for it.
    """
    offered = _sum_windows(registry, "traffic/offered_bytes")
    if offered:
        return offered
    return _sum_windows(registry, "syscall/write_bytes")


def _load_curves(
    registry: TimelineRegistry,
) -> Tuple[List[List[int]], List[List[int]]]:
    """Offered-load and goodput timelines (bytes per window)."""
    window_ns = registry.window_ns
    offered = _offered_windows(registry)
    goodput = _sum_windows(registry, "ingest_bytes")
    return (
        [[wi * window_ns, n] for wi, n in sorted(offered.items())],
        [[wi * window_ns, n] for wi, n in sorted(goodput.items())],
    )


def _knee(
    registry: TimelineRegistry, objective_metric: str
) -> Optional[Dict[str, Any]]:
    """Knee of the latency-vs-offered-load curve, if one exists."""
    objective = _merged_objective(registry, objective_metric)
    if objective is None:
        return None
    offered = _offered_windows(registry)
    points = []
    for wi, hist in objective.items():
        if hist.count and wi in offered:
            points.append((offered[wi], hist.percentile(99), wi))
    points.sort()
    if len(points) < 3:
        return None
    index = knee_point(
        [p[0] for p in points], [p[1] for p in points]
    )
    if index is None:
        return None
    load, p99, wi = points[index]
    return {
        "offered_bytes_per_window": load,
        "p99": p99,
        "window_start_ns": wi * registry.window_ns,
    }


def evaluate_slos(
    registry: TimelineRegistry,
    specs: Sequence[SloSpec] = DEFAULT_SLOS,
) -> Dict[str, Any]:
    """Evaluate every spec against the timelines; the ``slo-report@1``."""
    slos = [_evaluate_one(registry, spec) for spec in specs]
    offered, goodput = _load_curves(registry)
    report: Dict[str, Any] = {
        "schema": SLO_REPORT_SCHEMA,
        "window_ns": registry.window_ns,
        "slos": slos,
        "load": {"offered_bytes": offered, "goodput_bytes": goodput},
        "timelines": {
            key: {"kind": series.kind, "windows": len(series)}
            for key, series in registry.items()
        },
    }
    knee = _knee(registry, specs[0].metric) if specs else None
    report["knee"] = knee
    return report
