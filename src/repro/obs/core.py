"""The observability core: one passive observer per TestBed.

An :class:`Observability` bundles a :class:`~repro.obs.metrics.
MetricsRegistry` with a :class:`~repro.sim.trace.Tracer` used as the
span sink.  Components hold a reference (``self.obs``) that defaults to
the module-level :data:`DISABLED` singleton, so the disabled hot path
costs one attribute load plus a boolean check.

Spans form a causal tree: an id is minted at each ``write()``/
``fsync()`` syscall and propagated page → request → RPC xid → frame →
server op → reply → completion.  Span ids are a plain counter — fully
deterministic — and recording never schedules events, draws randomness,
or touches component state, so an instrumented run's fingerprint is
bit-identical to an uninstrumented one (the obs test suite replays runs
to prove it).

Usage mirrors the sanitizers (:mod:`repro.analysis.sanitize.runtime`)::

    with observed() as session:
        bed = TestBed(target="netapp", client="stock")
        bed.run_sequential_write(2 * MIB)
    obs = session.observabilities[0]

or explicitly: ``TestBed(..., observe=True)``.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from ..sim.trace import Tracer
from .metrics import MetricsRegistry
from .timeseries import DEFAULT_WINDOW_NS, TimelineRegistry

__all__ = [
    "Observability",
    "ScopedObservability",
    "DISABLED",
    "ObsSession",
    "observed",
    "active_session",
    "attach",
    "attach_if_active",
]

#: Default span/sample ring capacity per observed bed.
DEFAULT_CAPACITY = 1_000_000


class Observability:
    """Metrics + causal span tracing for one simulation."""

    __slots__ = (
        "sim",
        "enabled",
        "metrics",
        "timelines",
        "tracer",
        "profiler",
        "latency_trace",
        "_next_span",
        "_task_spans",
    )

    def __init__(
        self,
        sim=None,
        enabled: bool = False,
        capacity: int = DEFAULT_CAPACITY,
        window_ns: int = DEFAULT_WINDOW_NS,
    ):
        self.sim = sim
        self.enabled = bool(enabled) and sim is not None
        self.metrics = MetricsRegistry()
        self.timelines = TimelineRegistry(window_ns=window_ns)
        self.tracer: Optional[Tracer] = (
            Tracer(sim, capacity=capacity, enabled=self.enabled)
            if sim is not None
            else None
        )
        #: Optional companions carried for bundle export (set by the
        #: trace runner, not by the hot path).
        self.profiler = None
        self.latency_trace = None
        self._next_span = 0
        #: Root span of the syscall each task is currently executing,
        #: keyed by the task object itself (never iterated, so object
        #: keys stay deterministic).
        self._task_spans: Dict[Any, int] = {}

    def set_span_namespace(self, base: int) -> None:
        """Start span ids at ``base`` — DES shards carve disjoint id
        ranges so per-world spans merge without collisions."""
        self._next_span = base

    # -- metrics ------------------------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(key).inc(n)

    def gauge(self, key: str, value) -> None:
        if self.enabled:
            self.metrics.gauge(key).set(value)

    def observe(self, key: str, value, bounds=None) -> None:
        if self.enabled:
            self.metrics.histogram(key, bounds).observe(value)

    # -- timelines (windowed by simulated time) ------------------------------

    def series_count(self, key: str, n: int = 1) -> None:
        """Add to ``key``'s count in the current time window."""
        if self.enabled:
            self.timelines.windowed_counter(key).record_windowed_count(
                self.sim.now, n
            )

    def series_gauge(self, key: str, value) -> None:
        """Sample a level (queue depth, dirty bytes) into the window."""
        if self.enabled:
            self.timelines.windowed_gauge(key).record_windowed_gauge(
                self.sim.now, value
            )

    def series_observe(self, key: str, value) -> None:
        """Record a latency/size sample into the window's histogram."""
        if self.enabled:
            self.timelines.windowed_histogram(key).record_windowed_value(
                self.sim.now, value
            )

    # -- samples (time series; exported as Chrome counter events) -----------

    def sample(self, component: str, name: str, value) -> None:
        if self.enabled:
            self.tracer.record(component, "sample", name=name, value=value)

    # -- spans ---------------------------------------------------------------

    def span_begin(
        self,
        component: str,
        name: str,
        parent: int = 0,
        ts: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        """Mint a span id and record its opening edge; 0 when disabled."""
        if not self.enabled:
            return 0
        self._next_span += 1
        sid = self._next_span
        self.tracer.record_at(
            self.sim.now if ts is None else ts,
            component,
            "span_begin",
            span=sid,
            parent=parent,
            name=name,
            **attrs,
        )
        return sid

    def span_end(self, span_id: int, ts: Optional[int] = None, **attrs: Any) -> None:
        if not self.enabled or not span_id:
            return
        self.tracer.record_at(
            self.sim.now if ts is None else ts, "", "span_end", span=span_id, **attrs
        )

    def span_point(
        self, component: str, name: str, parent: int = 0, **attrs: Any
    ) -> int:
        """A zero-duration span: an instant in the causal tree."""
        sid = self.span_begin(component, name, parent=parent, **attrs)
        self.span_end(sid)
        return sid

    # -- per-task syscall context --------------------------------------------
    #
    # The write path runs in the writer's task; the root span minted at
    # the syscall boundary is stashed per task so code deeper in the
    # stack (nfs_updatepage) can parent to it without threading an
    # argument through every layer.

    def task_span(self) -> int:
        if not self.enabled:
            return 0
        return self._task_spans.get(self.sim.current_task, 0)

    def set_task_span(self, span_id: int) -> None:
        if self.enabled and span_id:
            self._task_spans[self.sim.current_task] = span_id

    def clear_task_span(self) -> None:
        if self.enabled:
            self._task_spans.pop(self.sim.current_task, None)

    # -- end-of-run harvesting ----------------------------------------------

    def harvest_lock(self, lock, component: str = "bkl") -> None:
        """Fold a :class:`~repro.sim.sync.MonitoredLock`'s stats into the
        registry — called at export time, never on the hot path."""
        if not self.enabled:
            return
        stats = lock.stats
        self.metrics.counter(f"{component}/acquisitions").value = stats.acquisitions
        self.metrics.counter(f"{component}/contended").value = stats.contended
        self.metrics.counter(f"{component}/wait_ns").value = stats.total_wait_ns
        self.metrics.counter(f"{component}/hold_ns").value = stats.total_hold_ns
        for label in sorted(stats.hold_by_label):
            self.metrics.counter(
                f"{component}/hold_ns/{label}"
            ).value = stats.hold_by_label[label]
        for label in sorted(stats.wait_by_label):
            self.metrics.counter(
                f"{component}/wait_ns/{label}"
            ).value = stats.wait_by_label[label]


#: Shared no-op observer: components point here until a real one attaches.
DISABLED = Observability()


class ScopedObservability:
    """A client-scoped view of one :class:`Observability`.

    Multi-client topologies share a single observer per simulation (the
    span tree crosses clients at the switch and the server), but each
    client stack's components see a scoped facade: metric keys gain a
    ``<client>/`` prefix and every span carries a ``client`` attribute —
    the client-id dimension of fleet metrics.  All recording delegates
    to the root, so span ids stay globally unique and causal edges
    across clients resolve in one tree.
    """

    __slots__ = ("root", "client", "_prefix", "_keys")

    def __init__(self, root: Observability, client: str):
        self.root = root
        self.client = client
        self._prefix = f"{client}/"
        # Prefixed-key cache: instrument call sites pass a small fixed
        # vocabulary of literals, so building (and re-hashing) the
        # f"{client}/{key}" string on every count() is pure overhead.
        # Interned cached keys also make the registry probe pointer-fast.
        self._keys: Dict[str, str] = {}

    def _scoped(self, key: str) -> str:
        scoped = self._keys.get(key)
        if scoped is None:
            scoped = sys.intern(self._prefix + key)
            self._keys[key] = scoped
        return scoped

    @property
    def enabled(self) -> bool:
        return self.root.enabled

    @property
    def sim(self):
        return self.root.sim

    @property
    def metrics(self) -> MetricsRegistry:
        return self.root.metrics

    @property
    def timelines(self) -> TimelineRegistry:
        return self.root.timelines

    @property
    def tracer(self) -> Optional[Tracer]:
        return self.root.tracer

    # -- metrics (key-prefixed) ---------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        self.root.count(self._scoped(key), n)

    def gauge(self, key: str, value) -> None:
        self.root.gauge(self._scoped(key), value)

    def observe(self, key: str, value, bounds=None) -> None:
        self.root.observe(self._scoped(key), value, bounds)

    # -- timelines (key-prefixed) --------------------------------------------

    def series_count(self, key: str, n: int = 1) -> None:
        self.root.series_count(self._scoped(key), n)

    def series_gauge(self, key: str, value) -> None:
        self.root.series_gauge(self._scoped(key), value)

    def series_observe(self, key: str, value) -> None:
        self.root.series_observe(self._scoped(key), value)

    def sample(self, component: str, name: str, value) -> None:
        self.root.sample(component, self._scoped(name), value)

    # -- spans (client-attributed, globally numbered) ------------------------

    def span_begin(
        self,
        component: str,
        name: str,
        parent: int = 0,
        ts: Optional[int] = None,
        **attrs: Any,
    ) -> int:
        if not self.root.enabled:
            return 0
        return self.root.span_begin(
            component, name, parent=parent, ts=ts, client=self.client, **attrs
        )

    def span_end(self, span_id: int, ts: Optional[int] = None, **attrs: Any) -> None:
        self.root.span_end(span_id, ts=ts, **attrs)

    def span_point(
        self, component: str, name: str, parent: int = 0, **attrs: Any
    ) -> int:
        sid = self.span_begin(component, name, parent=parent, **attrs)
        self.span_end(sid)
        return sid

    # -- per-task syscall context (shared with the root) ---------------------

    def task_span(self) -> int:
        return self.root.task_span()

    def set_task_span(self, span_id: int) -> None:
        self.root.set_task_span(span_id)

    def clear_task_span(self) -> None:
        self.root.clear_task_span()

    def harvest_lock(self, lock, component: str = "bkl") -> None:
        self.root.harvest_lock(lock, component=self._prefix + component)


class ObsSession:
    """Collects the observers of every TestBed built while active."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        window_ns: int = DEFAULT_WINDOW_NS,
    ):
        self.capacity = capacity
        self.window_ns = window_ns
        self.observabilities: List[Observability] = []


_session: Optional[ObsSession] = None


def active_session() -> Optional[ObsSession]:
    return _session


@contextmanager
def observed(
    capacity: int = DEFAULT_CAPACITY, window_ns: int = DEFAULT_WINDOW_NS
):
    """Context manager: observe every TestBed built inside."""
    global _session
    previous = _session
    _session = ObsSession(capacity, window_ns=window_ns)
    try:
        yield _session
    finally:
        _session = previous


def attach(bed, obs: Observability) -> None:
    """Point every component of an assembled TestBed at ``obs``."""
    bed.syscalls.obs = obs
    bed.pagecache.obs = obs
    nfs = getattr(bed, "nfs", None)
    if nfs is not None:
        nfs.obs = obs
        nfs.xprt.obs = obs
    server = getattr(bed, "server", None)
    if server is not None:
        server.obs = obs
        server.rpc.obs = obs
    switch = getattr(bed, "switch", None)
    if switch is not None:
        switch.obs = obs
        for port in switch.ports():
            port.uplink.obs = obs
            port.downlink.obs = obs


def attach_if_active(bed, observe: bool = False) -> Observability:
    """Called by ``TestBed.__init__``; returns :data:`DISABLED` unless
    ``observe`` is set or an ``observed()`` session is active."""
    session = _session
    if not observe and session is None:
        return DISABLED
    obs = Observability(
        bed.sim,
        enabled=True,
        capacity=session.capacity if session is not None else DEFAULT_CAPACITY,
        window_ns=session.window_ns if session is not None else DEFAULT_WINDOW_NS,
    )
    attach(bed, obs)
    if session is not None:
        session.observabilities.append(obs)
    return obs


def attach_topology(topology, obs: Observability) -> None:
    """Point every component of an assembled Topology at ``obs``.

    Single-client topologies attach the root observer directly (metric
    keys identical to the historical ``TestBed`` surface); fleets give
    each client stack a :class:`ScopedObservability` keyed by its host
    name, adding the client-id dimension without splitting the span
    tree.
    """
    switch = topology.switch
    switch.obs = obs
    for port in switch.ports():
        port.uplink.obs = obs
        port.downlink.obs = obs
    for server in topology.servers:
        if server is not None:
            server.obs = obs
            server.rpc.obs = obs
    scoped = len(topology.clients) > 1
    for stack in topology.clients:
        view = ScopedObservability(obs, stack.name) if scoped else obs
        stack.obs = view
        stack.syscalls.obs = view
        stack.pagecache.obs = view
        if stack.nfs is not None:
            stack.nfs.obs = view
            stack.nfs.xprt.obs = view


def attach_topology_if_active(topology, observe: bool = False) -> Observability:
    """Called by ``Topology.__init__``; mirrors :func:`attach_if_active`."""
    session = _session
    if not observe and session is None:
        return DISABLED
    obs = Observability(
        topology.sim,
        enabled=True,
        capacity=session.capacity if session is not None else DEFAULT_CAPACITY,
        window_ns=session.window_ns if session is not None else DEFAULT_WINDOW_NS,
    )
    attach_topology(topology, obs)
    if session is not None:
        session.observabilities.append(obs)
    return obs
