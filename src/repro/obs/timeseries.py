"""Windowed time-series telemetry: log-linear histograms + timelines.

Whole-run aggregates (:mod:`repro.obs.metrics`) answer *how much*; the
paper's §3 diagnosis needs *when*.  This module adds the time axis with
bounded memory and without perturbing the simulation:

* :class:`LogLinearHistogram` — an HDR-style fixed-bucket histogram.
  Values map to buckets by a pure function of the value (a linear range
  of ``2**subbucket_bits`` buckets, then ``2**subbucket_bits``
  sub-buckets per power of two), so the relative error is bounded by
  ``2**-subbucket_bits`` (~3% at the default of 5 bits) and two
  histograms with the same scheme merge by plain bucket addition —
  across windows, across fleet clients, and across DES shards.
* :class:`WindowedCounter` / :class:`WindowedGauge` /
  :class:`WindowedHistogram` — per-layer timelines keyed by the window
  index ``sim_now // window_ns`` (simulated time only: no wall clocks,
  no RNG), retaining at most ``retention`` windows by evicting the
  oldest.
* :class:`TimelineRegistry` — a get-or-create store with a versioned,
  JSON-serialisable :meth:`~TimelineRegistry.snapshot` (schema
  ``repro-nfs/timeline@1``) and a deterministic
  :meth:`~TimelineRegistry.merge_snapshot` used to fold shard-side
  collections back into the hub's registry bit-identically.

Everything here is integer/dict arithmetic updated inline by the
instrumented code — recording never schedules events, draws randomness,
or touches component state, preserving the pure-observer contract.
"""

from __future__ import annotations

import sys
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..analysis.stats import percentile_of_sorted
from ..errors import ConfigError

__all__ = [
    "LogLinearHistogram",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "TimelineRegistry",
    "TIMELINE_SCHEMA",
    "DEFAULT_WINDOW_NS",
    "DEFAULT_RETENTION",
    "DEFAULT_SUBBUCKET_BITS",
    "DEFAULT_MAX_VALUE",
]

#: Version tag carried by timeline snapshots; bump when the format changes.
TIMELINE_SCHEMA = "repro-nfs/timeline@1"

#: Default timeline window width: 10 simulated milliseconds.
DEFAULT_WINDOW_NS = 10_000_000

#: Default per-series window retention (ring semantics: oldest evicted).
DEFAULT_RETENTION = 4096

#: 32 sub-buckets per power of two => <= ~3.1% relative bucket error.
DEFAULT_SUBBUCKET_BITS = 5

#: Default value ceiling (2**40 ~ 18 simulated minutes in ns).
DEFAULT_MAX_VALUE = 1 << 40


class _BucketView:
    """A sorted-sequence facade over a histogram's samples.

    Exposes ``len``/``__getitem__`` so the *same* percentile
    implementation (:func:`repro.analysis.stats.percentile_of_sorted`)
    serves raw latency traces and bucketed histograms: index ``i``
    resolves (via bisect over the cumulative counts) to the
    representative value of the bucket holding the ``i``-th smallest
    sample.
    """

    __slots__ = ("_reps", "_cumulative", "_total")

    def __init__(self, reps: List[int], cumulative: List[int]):
        self._reps = reps
        self._cumulative = cumulative
        self._total = cumulative[-1] if cumulative else 0

    def __len__(self) -> int:
        return self._total

    def __getitem__(self, i: int) -> int:
        if i < 0:
            i += self._total
        if not 0 <= i < self._total:
            raise IndexError(i)
        return self._reps[bisect_left(self._cumulative, i + 1)]


class LogLinearHistogram:
    """HDR-style histogram: fixed scheme, sparse counts, mergeable."""

    __slots__ = ("subbucket_bits", "max_value", "buckets", "count", "total")

    def __init__(
        self,
        subbucket_bits: int = DEFAULT_SUBBUCKET_BITS,
        max_value: int = DEFAULT_MAX_VALUE,
    ):
        if subbucket_bits < 1:
            raise ConfigError("log-linear histogram needs >= 1 subbucket bit")
        if max_value < (1 << subbucket_bits):
            raise ConfigError("log-linear max_value below the linear range")
        self.subbucket_bits = subbucket_bits
        self.max_value = max_value
        #: Sparse ``{bucket index: count}``; indices are a pure function
        #: of the recorded value, so equal-scheme histograms add.
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0

    # -- the bucket scheme --------------------------------------------------

    def bucket_index(self, value: int) -> int:
        """Bucket index for ``value`` (clamped to [0, max_value])."""
        value = int(value)
        if value < 0:
            value = 0
        elif value > self.max_value:
            value = self.max_value
        bits = self.subbucket_bits
        if value < (1 << bits):
            return value
        exp = value.bit_length() - 1 - bits
        return ((exp + 1) << bits) + ((value >> exp) - (1 << bits))

    def bucket_lower(self, index: int) -> int:
        """Inclusive lower bound of bucket ``index``."""
        bits = self.subbucket_bits
        sub = 1 << bits
        if index < sub:
            return index
        octave, pos = divmod(index, sub)
        return (sub + pos) << (octave - 1)

    def bucket_representative(self, index: int) -> int:
        """Deterministic representative: the bucket's integer midpoint."""
        lo = self.bucket_lower(index)
        hi = self.bucket_lower(index + 1)
        return (lo + hi - 1) // 2

    # -- recording / merging ------------------------------------------------

    def record_log_linear(self, value: int, n: int = 1) -> None:
        """Add ``n`` samples of ``value``."""
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += n
        self.total += int(value) * n

    def merge_log_linear(self, other: "LogLinearHistogram") -> None:
        """Fold ``other`` in; schemes must match exactly."""
        if (
            other.subbucket_bits != self.subbucket_bits
            or other.max_value != self.max_value
        ):
            raise ConfigError("cannot merge histograms with different schemes")
        for index, n in sorted(other.buckets.items()):
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total

    # -- statistics ---------------------------------------------------------

    def _view(self) -> _BucketView:
        reps: List[int] = []
        cumulative: List[int] = []
        running = 0
        for index in sorted(self.buckets):
            running += self.buckets[index]
            reps.append(self.bucket_representative(index))
            cumulative.append(running)
        return _BucketView(reps, cumulative)

    def percentile(self, p: float, method: str = "nearest-rank") -> int:
        """Percentile over bucket representatives — same interpolation
        core as the raw latency traces."""
        return percentile_of_sorted(self._view(), p, method=method)

    def percentiles(
        self, pcts: Tuple[float, ...] = (50, 99, 99.9)
    ) -> Dict[float, int]:
        view = self._view()
        return {
            p: percentile_of_sorted(view, p, method="nearest-rank")
            for p in pcts
        }

    def count_le(self, threshold: Union[int, float]) -> int:
        """Samples in buckets whose representative is <= ``threshold``."""
        good = 0
        for index, n in self.buckets.items():
            if self.bucket_representative(index) <= threshold:
                good += n
        return good

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # -- snapshots ----------------------------------------------------------

    def snapshot_log_linear(self) -> Dict[str, Any]:
        return {
            "subbucket_bits": self.subbucket_bits,
            "max_value": self.max_value,
            "count": self.count,
            "total": self.total,
            "buckets": [[i, self.buckets[i]] for i in sorted(self.buckets)],
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "LogLinearHistogram":
        hist = LogLinearHistogram(
            subbucket_bits=snap["subbucket_bits"], max_value=snap["max_value"]
        )
        hist.count = snap["count"]
        hist.total = snap["total"]
        hist.buckets = {int(i): int(n) for i, n in snap["buckets"]}
        return hist


class _WindowedSeries:
    """Shared window bookkeeping: index mapping + ring retention."""

    __slots__ = ("key", "window_ns", "retention", "windows")

    def __init__(self, key: str, window_ns: int, retention: int):
        if window_ns <= 0:
            raise ConfigError("window_ns must be positive")
        if retention <= 0:
            raise ConfigError("retention must be positive")
        self.key = key
        self.window_ns = window_ns
        self.retention = retention
        self.windows: Dict[int, Any] = {}

    def window_index(self, now: int) -> int:
        return now // self.window_ns

    def evict_stale_windows(self) -> None:
        # Ring retention: evicting the *smallest* index is deterministic
        # regardless of insertion order (merges may arrive out of order).
        while len(self.windows) > self.retention:
            del self.windows[min(self.windows)]

    def items(self) -> List[Tuple[int, Any]]:
        """``(window index, cell)`` pairs in window order."""
        return sorted(self.windows.items())

    def __len__(self) -> int:
        return len(self.windows)


class WindowedCounter(_WindowedSeries):
    """Per-window event/byte counts (e.g. retransmits, ingest bytes)."""

    __slots__ = ()
    kind = "windowed_counter"

    def record_windowed_count(self, now: int, n: int = 1) -> None:
        wi = now // self.window_ns
        windows = self.windows
        if wi in windows:
            windows[wi] += n
        else:
            windows[wi] = n
            self.evict_stale_windows()

    def absorb_windowed_counter(self, rows: Iterable[Tuple[int, int]]) -> None:
        windows = self.windows
        for wi, n in rows:
            wi = int(wi)
            windows[wi] = windows.get(wi, 0) + n
        self.evict_stale_windows()

    def snapshot_windowed(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "windows": [[wi, n] for wi, n in self.items()],
        }


class WindowedGauge(_WindowedSeries):
    """Per-window level samples: last value + max (e.g. queue depth)."""

    __slots__ = ()
    kind = "windowed_gauge"

    def record_windowed_gauge(self, now: int, value: Union[int, float]) -> None:
        wi = now // self.window_ns
        windows = self.windows
        cell = windows.get(wi)
        if cell is None:
            windows[wi] = (value, value)
            self.evict_stale_windows()
        else:
            windows[wi] = (value, cell[1] if cell[1] > value else value)

    def absorb_windowed_gauge(
        self, rows: Iterable[Tuple[int, Union[int, float], Union[int, float]]]
    ) -> None:
        # Gauge keys are single-writer by construction (client-scoped or
        # hub-owned), so overlap only happens if that contract is broken;
        # resolve it deterministically: incoming last wins, maxima join.
        windows = self.windows
        for wi, last, mx in rows:
            wi = int(wi)
            cell = windows.get(wi)
            if cell is None:
                windows[wi] = (last, mx)
            else:
                windows[wi] = (last, cell[1] if cell[1] > mx else mx)
        self.evict_stale_windows()

    def snapshot_windowed(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "windows": [[wi, cell[0], cell[1]] for wi, cell in self.items()],
        }


class WindowedHistogram(_WindowedSeries):
    """Per-window log-linear latency distributions."""

    __slots__ = ("subbucket_bits", "max_value")
    kind = "windowed_histogram"

    def __init__(
        self,
        key: str,
        window_ns: int,
        retention: int,
        subbucket_bits: int = DEFAULT_SUBBUCKET_BITS,
        max_value: int = DEFAULT_MAX_VALUE,
    ):
        super().__init__(key, window_ns, retention)
        self.subbucket_bits = subbucket_bits
        self.max_value = max_value

    def record_windowed_value(self, now: int, value: int) -> None:
        wi = now // self.window_ns
        hist = self.windows.get(wi)
        if hist is None:
            hist = LogLinearHistogram(self.subbucket_bits, self.max_value)
            self.windows[wi] = hist
            self.evict_stale_windows()
        hist.record_log_linear(value)

    def absorb_windowed_histogram(
        self, rows: Iterable[Tuple[int, Dict[str, Any]]]
    ) -> None:
        for wi, snap in rows:
            wi = int(wi)
            hist = self.windows.get(wi)
            if hist is None:
                self.windows[wi] = LogLinearHistogram.from_snapshot(snap)
            else:
                hist.merge_log_linear(LogLinearHistogram.from_snapshot(snap))
        self.evict_stale_windows()

    def merged(self) -> LogLinearHistogram:
        """All windows folded into one run-wide distribution."""
        out = LogLinearHistogram(self.subbucket_bits, self.max_value)
        for _, hist in self.items():
            out.merge_log_linear(hist)
        return out

    def snapshot_windowed(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "subbucket_bits": self.subbucket_bits,
            "max_value": self.max_value,
            "windows": [
                [wi, hist.snapshot_log_linear()] for wi, hist in self.items()
            ],
        }


class TimelineRegistry:
    """Get-or-create store of windowed series, keyed ``component/name``."""

    __slots__ = ("window_ns", "retention", "_series")

    def __init__(
        self,
        window_ns: int = DEFAULT_WINDOW_NS,
        retention: int = DEFAULT_RETENTION,
    ):
        if window_ns <= 0:
            raise ConfigError("timeline window_ns must be positive")
        self.window_ns = window_ns
        self.retention = retention
        self._series: Dict[
            str, Union[WindowedCounter, WindowedGauge, WindowedHistogram]
        ] = {}

    # Explicit per-kind get-or-create (rather than a cls-factory) keeps
    # construction statically resolvable for the flow analyzer.

    def windowed_counter(self, key: str) -> WindowedCounter:
        series = self._series.get(key)
        if series is None:
            key = sys.intern(key)
            series = WindowedCounter(key, self.window_ns, self.retention)
            self._series[key] = series
        elif series.kind != "windowed_counter":
            raise TypeError(
                f"timeline {key!r} already registered as {series.kind}"
            )
        return series

    def windowed_gauge(self, key: str) -> WindowedGauge:
        series = self._series.get(key)
        if series is None:
            key = sys.intern(key)
            series = WindowedGauge(key, self.window_ns, self.retention)
            self._series[key] = series
        elif series.kind != "windowed_gauge":
            raise TypeError(
                f"timeline {key!r} already registered as {series.kind}"
            )
        return series

    def windowed_histogram(self, key: str) -> WindowedHistogram:
        series = self._series.get(key)
        if series is None:
            key = sys.intern(key)
            series = WindowedHistogram(key, self.window_ns, self.retention)
            self._series[key] = series
        elif series.kind != "windowed_histogram":
            raise TypeError(
                f"timeline {key!r} already registered as {series.kind}"
            )
        return series

    def get(
        self, key: str
    ) -> Optional[Union[WindowedCounter, WindowedGauge, WindowedHistogram]]:
        return self._series.get(key)

    def items(
        self,
    ) -> List[Tuple[str, Union[WindowedCounter, WindowedGauge, WindowedHistogram]]]:
        """Series in deterministic (sorted-key) order."""
        return sorted(self._series.items())

    def __len__(self) -> int:
        return len(self._series)

    # -- snapshots / cross-shard merging ------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as a versioned JSON-serialisable dict."""
        return {
            "schema": TIMELINE_SCHEMA,
            "window_ns": self.window_ns,
            "retention": self.retention,
            "series": {
                key: series.snapshot_windowed() for key, series in self.items()
            },
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold a snapshot in (shard results merged in shard order).

        Counters add, gauges join (single-writer keys by convention),
        histogram windows merge bucket-wise — so merging every shard's
        snapshot into the hub registry reproduces the serial timelines
        bit-for-bit.
        """
        if snap.get("schema") != TIMELINE_SCHEMA:
            raise ConfigError(
                f"timeline snapshot schema {snap.get('schema')!r} "
                f"!= {TIMELINE_SCHEMA!r}"
            )
        if snap["window_ns"] != self.window_ns:
            raise ConfigError(
                f"timeline window mismatch: {snap['window_ns']} != "
                f"{self.window_ns}"
            )
        for key in sorted(snap["series"]):
            row = snap["series"][key]
            kind = row["kind"]
            if kind == "windowed_counter":
                self.windowed_counter(key).absorb_windowed_counter(
                    row["windows"]
                )
            elif kind == "windowed_gauge":
                self.windowed_gauge(key).absorb_windowed_gauge(row["windows"])
            elif kind == "windowed_histogram":
                series = self.windowed_histogram(key)
                series.subbucket_bits = row["subbucket_bits"]
                series.max_value = row["max_value"]
                series.absorb_windowed_histogram(row["windows"])
            else:
                raise ConfigError(f"unknown timeline kind {kind!r}")

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "TimelineRegistry":
        """Rebuild a registry from :meth:`snapshot` output (e.g. a
        ``timeline.json`` written by a previous run)."""
        registry = TimelineRegistry(
            window_ns=snap["window_ns"],
            retention=snap.get("retention", DEFAULT_RETENTION),
        )
        registry.merge_snapshot(snap)
        return registry
