"""Deterministic metrics registry: counters, gauges, histograms.

Metrics are keyed ``component/name`` (optionally with a trailing label
segment, e.g. ``rpc/retransmits/WRITE``).  All state is plain integer
arithmetic updated inline by the instrumented code — no events, no
clocks, no randomness — so an instrumented run stays bit-for-bit
identical to an uninstrumented one.

Histograms use fixed bucket bounds chosen at creation: recording is a
short linear scan, and exports are reproducible because the bounds
never adapt to the data.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Generic power-of-two bounds; good for counts (pages, queue depths).
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("key", "value")
    kind = "counter"

    def __init__(self, key: str):
        self.key = key
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; remembers its maximum for reports."""

    __slots__ = ("key", "value", "max_value")
    kind = "gauge"

    def __init__(self, key: str):
        self.key = key
        self.value = 0
        self.max_value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value


class Histogram:
    """Fixed-bucket histogram (cumulative export, prometheus-style)."""

    __slots__ = ("key", "bounds", "counts", "count", "total")
    kind = "histogram"

    def __init__(self, key: str, bounds: Tuple[Union[int, float], ...]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"{key}: histogram bounds must be sorted and non-empty")
        self.key = key
        self.bounds = tuple(bounds)
        #: One count per bound plus the overflow (+Inf) bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[Union[int, float, str], int]]:
        """``(le, cumulative_count)`` rows, ending with ``+Inf``."""
        rows: List[Tuple[Union[int, float, str], int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            rows.append((bound, running))
        rows.append(("+Inf", self.count))
        return rows


class MetricsRegistry:
    """Get-or-create store of metrics, keyed ``component/name``."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, key: str, cls, *args):
        metric = self._metrics.get(key)
        if metric is None:
            # Intern on first registration: instrument keys are a small
            # fixed vocabulary hit millions of times, so interned keys
            # dedupe storage and make later dict probes pointer-fast.
            key = sys.intern(key)
            metric = cls(key, *args)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, key: str) -> Counter:
        return self._get(key, Counter)

    def gauge(self, key: str) -> Gauge:
        return self._get(key, Gauge)

    def histogram(
        self, key: str, bounds: Optional[Tuple[Union[int, float], ...]] = None
    ) -> Histogram:
        return self._get(key, Histogram, bounds or DEFAULT_BUCKETS)

    def get(self, key: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        return self._metrics.get(key)

    def items(self) -> Iterable[Tuple[str, Union[Counter, Gauge, Histogram]]]:
        """Metrics in deterministic (sorted-key) order."""
        return sorted(self._metrics.items())

    def snapshot(self) -> Dict[str, Union[int, float]]:
        """Flat ``{key: scalar}`` view for tests and quick summaries."""
        out: Dict[str, Union[int, float]] = {}
        for key, metric in self.items():
            if metric.kind == "histogram":
                out[f"{key}_count"] = metric.count
                out[f"{key}_sum"] = metric.total
            else:
                out[key] = metric.value
        return out

    def __len__(self) -> int:
        return len(self._metrics)

    # -- cross-process shipping (DES shard merge) ----------------------------

    def dump_state(self) -> List[tuple]:
        """Picklable rows a worker ships home; see :meth:`merge_state`."""
        out: List[tuple] = []
        for key, metric in self.items():
            if metric.kind == "counter":
                out.append((key, "counter", metric.value))
            elif metric.kind == "gauge":
                out.append((key, "gauge", metric.value, metric.max_value))
            else:
                out.append(
                    (
                        key,
                        "histogram",
                        metric.bounds,
                        tuple(metric.counts),
                        metric.count,
                        metric.total,
                    )
                )
        return out

    def merge_state(self, state: Iterable[tuple]) -> None:
        """Fold a :meth:`dump_state` payload in.

        Counters and histograms add (commutative, so shard order never
        matters for them); gauges join maxima and take the incoming
        value — sound because fleet gauge keys are client-scoped, i.e.
        single-writer per shard.
        """
        for row in state:
            key, mkind = row[0], row[1]
            if mkind == "counter":
                self.counter(key).inc(row[2])
            elif mkind == "gauge":
                gauge = self.gauge(key)
                gauge.value = row[2]
                if row[3] > gauge.max_value:
                    gauge.max_value = row[3]
            elif mkind == "histogram":
                hist = self.histogram(key, tuple(row[2]))
                if hist.bounds != tuple(row[2]):
                    raise TypeError(
                        f"metric {key!r}: mismatched histogram bounds"
                    )
                for i, n in enumerate(row[3]):
                    hist.counts[i] += n
                hist.count += row[4]
                hist.total += row[5]
            else:
                raise TypeError(f"metric {key!r}: unknown kind {mkind!r}")
