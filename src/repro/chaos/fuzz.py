"""Seeded generative fault-schedule fuzzer.

Each *draw* samples a random scenario — bed, workload, link faults
(Gilbert–Elliott loss, jitter, duplication), timed server
pause/crash/restart, client slot starvation, over single-client or
fleet topologies — from a named RNG stream derived from the fuzz seed,
then runs it under the full invariant suite: durability checks, the
runtime sanitizers, the determinism replay, and (fleet draws, when
``shards >= 2``) serial equivalence under the parallel engine.

Any violation becomes a finding: the schedule is delta-debug shrunk
(:mod:`repro.chaos.shrink`) to a minimal reproducer preserving the
exact failure signature, re-validated, and — when a corpus root is
given — auto-saved as a regression scenario carrying its fuzz seed,
draw index, and shrink trace.

Everything is a pure function of ``(seed, draw index)``: per-draw RNG
streams mean draw *k* samples the same scenario no matter how many
draws run, and :meth:`FuzzReport.payload` hashes to the same
fingerprint on every machine — ``repro-nfs fuzz`` is bit-reproducible.
"""

from __future__ import annotations

import random  # noqa: DET105 - typing only; draws come from named RngStreams
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..faults.scenarios import ScenarioOutcome, _fingerprint
from ..sim import RngStreams
from ..units import ms
from .corpus import save_regression
from .runner import failure_signature, run_spec
from .shrink import ShrinkResult, shrink
from .spec import (
    BedSpec,
    CheckSpec,
    ClientEventSpec,
    LinkFaultSpec,
    ScenarioSpec,
    ServerEventSpec,
    WorkloadSpec,
)

__all__ = ["FuzzFinding", "FuzzReport", "draw_spec", "fuzz"]

_TARGETS = ("netapp", "linux")
_TIMEO_MS = (10, 15, 20, 25, 50)
_RETRANS = (3, 5, 7)
_FILE_KIB = (256, 512, 1024)
_LINK_KINDS = ("gilbert-elliott", "gilbert-elliott", "jitter", "duplicate")


def _draw_link_fault(rng: random.Random, hosts: Tuple[str, ...]) -> LinkFaultSpec:
    kind = rng.choice(_LINK_KINDS)
    attach = rng.choice(hosts)
    direction = rng.choice(("uplink", "downlink"))
    if kind == "gilbert-elliott":
        params: Tuple[Tuple[str, Any], ...] = (
            ("p_bad_to_good", round(rng.uniform(0.2, 0.5), 3)),
            ("p_good_to_bad", round(rng.uniform(0.005, 0.03), 4)),
        )
    elif kind == "jitter":
        params = (("max_jitter_ns", rng.randrange(100_000, 2_000_000)),)
    else:
        params = (("probability", round(rng.uniform(0.005, 0.05), 4)),)
    return LinkFaultSpec(
        kind=kind, attach=attach, direction=direction, params=params
    )


def _draw_server_events(
    rng: random.Random, mount: Dict[str, Any]
) -> Tuple[ServerEventSpec, ...]:
    roll = rng.random()
    if roll < 0.30:
        crash = rng.randrange(ms(5), ms(100))
        restart = crash + rng.randrange(ms(50), ms(300))
        return (
            ServerEventSpec(op="crash", at_ns=crash),
            ServerEventSpec(op="restart", at_ns=restart),
        )
    if roll < 0.50:
        start = rng.randrange(0, ms(50))
        return (
            ServerEventSpec(
                op="pause",
                start_ns=start,
                end_ns=start + rng.randrange(ms(10), ms(120)),
            ),
        )
    if roll < 0.62:
        mount["jukebox_delay_ns"] = ms(rng.choice((10, 20, 40)))
        start = rng.randrange(0, ms(20))
        return (
            ServerEventSpec(
                op="jukebox",
                start_ns=start,
                end_ns=start + rng.randrange(ms(20), ms(80)),
            ),
        )
    return ()


def draw_spec(rng: random.Random, name: str) -> ScenarioSpec:
    """Sample one random scenario from ``rng`` (pure; no I/O)."""
    clients = rng.choice((2, 3)) if rng.random() < 0.25 else 1
    target = rng.choice(_TARGETS)
    mount: Dict[str, Any] = {
        "timeo_ns": ms(rng.choice(_TIMEO_MS)),
        "retrans": rng.choice(_RETRANS),
    }
    if rng.random() < 0.25:
        mount["adaptive_timeo"] = True
    file_bytes = rng.choice(_FILE_KIB) * 1024

    if clients == 1:
        hosts: Tuple[str, ...] = ("client", "server")
    else:
        hosts = tuple(f"client{i}" for i in range(clients)) + ("server",)
    link_faults = tuple(
        _draw_link_fault(rng, hosts)
        for _ in range(rng.choice((0, 1, 1, 2)))
    )
    server_events = _draw_server_events(rng, mount)
    client_events: Tuple[ClientEventSpec, ...] = ()
    if rng.random() < 0.30:
        start = rng.randrange(0, ms(20))
        client_events = (
            ClientEventSpec(
                client=rng.randrange(clients),
                start_ns=start,
                end_ns=start + rng.randrange(ms(5), ms(50)),
                slots=1,
            ),
        )
    checks = (
        (CheckSpec("fleet-files-durable"),)
        if clients > 1
        else (CheckSpec("stability"),)
    )
    return ScenarioSpec(
        name=name,
        description="fuzzer draw",
        bed=BedSpec(
            target=target,
            client="stock",
            clients=clients,
            mount=tuple(sorted(mount.items())),
        ),
        workload=WorkloadSpec(file_bytes=file_bytes),
        link_faults=link_faults,
        server_events=server_events,
        client_events=client_events,
        checks=checks,
    )


@dataclass
class FuzzFinding:
    """One violating draw, with its shrunk minimal reproducer."""

    draw: int
    spec: ScenarioSpec
    outcome: ScenarioOutcome
    signature: Tuple[str, ...]
    shrunk: ScenarioSpec
    shrunk_outcome: ScenarioOutcome
    shrink: ShrinkResult
    saved_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Everything one ``fuzz(seed, draws)`` campaign produced."""

    seed: int
    draws: int
    #: Per-draw verdict rows, in draw order (JSON-safe).
    rows: List[Dict[str, Any]] = field(default_factory=list)
    findings: List[FuzzFinding] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.findings

    def payload(self) -> Dict[str, Any]:
        """The campaign's JSON-safe outcome — hashed for the
        bit-reproducibility contract (same seed → same payload)."""
        return {
            "seed": self.seed,
            "draws": self.draws,
            "scenarios": self.rows,
            "findings": [
                {
                    "draw": f.draw,
                    "name": f.spec.name,
                    "signature": list(f.signature),
                    "shrink_steps": f.shrink.steps,
                    "shrink_trace": list(f.shrink.trace),
                    "shrunk_faults": f.shrunk.fault_count(),
                    "shrunk_fingerprint": f.shrunk_outcome.fingerprint,
                }
                for f in self.findings
            ],
        }

    def fingerprint(self) -> str:
        return _fingerprint(self.payload())


def fuzz(
    seed: int,
    draws: int,
    sanitize: bool = True,
    shards: int = 0,
    corpus_root: Optional[str] = None,
    max_shrink_attempts: int = 80,
) -> FuzzReport:
    """Run one fuzz campaign: ``draws`` seeded draws, shrink failures.

    ``shards >= 2`` adds the serial-equivalence invariant to fleet
    draws.  With ``corpus_root``, every shrunk finding is auto-saved
    under ``<corpus_root>/regressions/`` with pinned expectations and
    full provenance.
    """
    report = FuzzReport(seed=seed, draws=draws)
    for i in range(draws):
        rng = RngStreams(seed).stream(f"fuzz/draw{i}")
        spec = draw_spec(rng, f"fuzz-{seed}-{i:03d}")
        outcome = run_spec(spec, sanitize=sanitize, shards=shards)
        signature = failure_signature(outcome.invariants)
        report.rows.append(
            {
                "draw": i,
                "name": spec.name,
                "clients": spec.bed.clients,
                "faults": spec.fault_count(),
                "passed": outcome.passed,
                "failed": list(signature),
                "fingerprint": outcome.fingerprint,
            }
        )
        if not signature:
            continue
        # The oracle re-runs candidates under the same instrumentation
        # that produced the failure; the determinism replay is only
        # paid when the signature itself involves it.
        verify = "deterministic" in signature

        def oracle(candidate: ScenarioSpec) -> Tuple[str, ...]:
            result = run_spec(
                candidate,
                sanitize=sanitize,
                shards=shards,
                verify_determinism=verify,
            )
            return failure_signature(result.invariants)

        shrunk = shrink(
            spec, oracle, signature=signature, max_attempts=max_shrink_attempts
        )
        shrunk_outcome = run_spec(shrunk.spec, sanitize=sanitize, shards=shards)
        saved = None
        if corpus_root is not None:
            saved = save_regression(
                shrunk.spec,
                shrunk_outcome,
                corpus_root,
                provenance=(
                    ("draw", i),
                    ("fuzz_seed", seed),
                    ("shrink_steps", shrunk.steps),
                    ("shrink_trace", tuple(shrunk.trace)),
                ),
            )
        report.findings.append(
            FuzzFinding(
                draw=i,
                spec=spec,
                outcome=outcome,
                signature=signature,
                shrunk=shrunk.spec,
                shrunk_outcome=shrunk_outcome,
                shrink=shrunk,
                saved_path=saved,
            )
        )
    return report
