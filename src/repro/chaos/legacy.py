"""The six hand-written chaos scenarios, re-expressed declaratively.

Each builder returns the :class:`~repro.chaos.spec.ScenarioSpec` whose
run is bit-identical — same payload, same fingerprint — to its scripted
twin in :mod:`repro.faults.scenarios`.  ``scripts/regen_scenarios.py``
serialises these into the ``scenarios/`` corpus; the equivalence tests
replay both forms and compare fingerprints, so the corpus can never
drift from the scripted originals unnoticed.

RNG stream names are pinned explicitly (``lossy-burst/client-down``)
rather than derived, because the legacy scenarios named their streams
before the declarative format existed.
"""

from __future__ import annotations

from typing import Dict

from ..units import MIB, ms
from .spec import (
    BedSpec,
    CheckSpec,
    ClientEventSpec,
    LinkFaultSpec,
    ProbeSpec,
    ScenarioSpec,
    ServerEventSpec,
    WorkloadSpec,
)

__all__ = ["legacy_specs"]


def _gilbert(attach: str, stream: str) -> LinkFaultSpec:
    return LinkFaultSpec(
        kind="gilbert-elliott",
        attach=attach,
        direction="downlink",
        rng=stream,
        params=(("p_bad_to_good", 0.3), ("p_good_to_bad", 0.02)),
    )


def _lossy_burst() -> ScenarioSpec:
    return ScenarioSpec(
        name="lossy-burst",
        description=(
            "Gilbert-Elliott burst loss on both directions; hard mount "
            "rides it out"
        ),
        bed=BedSpec(
            target="netapp",
            client="stock",
            mount=(("retrans", 7), ("timeo_ns", ms(25))),
        ),
        workload=WorkloadSpec(file_bytes=2 * MIB),
        link_faults=(
            _gilbert("client", "lossy-burst/client-down"),
            _gilbert("server", "lossy-burst/server-down"),
        ),
        checks=(
            CheckSpec("loss-injected"),
            CheckSpec("client-retransmitted"),
            CheckSpec("stability"),
        ),
    )


def _server_restart() -> ScenarioSpec:
    return ScenarioSpec(
        name="server-restart",
        description=(
            "knfsd crash (page cache + reply cache lost) and reboot "
            "mid-write; verifier mismatch forces the client to rewrite "
            "unstable data"
        ),
        bed=BedSpec(
            target="linux",
            client="stock",
            mount=(("retrans", 7), ("timeo_ns", ms(50))),
        ),
        workload=WorkloadSpec(file_bytes=16 * MIB),
        server_events=(
            ServerEventSpec(op="crash", at_ns=ms(150)),
            ServerEventSpec(op="restart", at_ns=ms(400)),
        ),
        probes=(ProbeSpec(at_ns=ms(150) - 1),),
        checks=(
            CheckSpec("verifier-bumped", params=(("expected", 2),)),
            CheckSpec("verf-mismatch-detected"),
            CheckSpec("no-stable-data-lost"),
            CheckSpec("client-retransmitted"),
            CheckSpec("stability"),
        ),
    )


def _soft_timeout() -> ScenarioSpec:
    return ScenarioSpec(
        name="soft-timeout",
        description=(
            "server dies for good under a soft mount; the writer gets EIO "
            "instead of hanging forever"
        ),
        bed=BedSpec(
            target="netapp",
            client="stock",
            mount=(("retrans", 3), ("soft", True), ("timeo_ns", ms(10))),
        ),
        workload=WorkloadSpec(file_bytes=4 * MIB, expect="eio"),
        server_events=(ServerEventSpec(op="crash", at_ns=ms(10)),),
        checks=(
            CheckSpec("eio-surfaced"),
            CheckSpec("major-timeout-hit"),
            CheckSpec("requests-failed-soft"),
            CheckSpec("syscall-saw-eio"),
        ),
    )


def _jukebox() -> ScenarioSpec:
    return ScenarioSpec(
        name="jukebox",
        description=(
            "server answers NFS3ERR_JUKEBOX for 60 ms; client retries "
            "after the jukebox delay and completes without duplicating data"
        ),
        bed=BedSpec(
            target="linux",
            client="stock",
            mount=(("jukebox_delay_ns", ms(20)),),
        ),
        workload=WorkloadSpec(file_bytes=1 * MIB),
        server_events=(
            ServerEventSpec(op="jukebox", start_ns=0, end_ns=ms(60)),
        ),
        checks=(
            CheckSpec("jukebox-injected"),
            CheckSpec("client-waited-and-retried"),
            CheckSpec("no-duplicate-ingest"),
            CheckSpec("stability"),
        ),
    )


def _slot_starvation() -> ScenarioSpec:
    return ScenarioSpec(
        name="slot-starvation",
        description=(
            "RPC slot table pinched to one slot for 35 ms; backlog absorbs "
            "the write stream and drains afterwards"
        ),
        bed=BedSpec(target="netapp", client="stock"),
        workload=WorkloadSpec(file_bytes=2 * MIB),
        client_events=(
            ClientEventSpec(start_ns=ms(5), end_ns=ms(40), slots=1),
        ),
        checks=(
            CheckSpec("starvation-applied"),
            CheckSpec("backlog-built-up", params=(("min", 4),)),
            CheckSpec("stability"),
        ),
    )


def _monotone_loss() -> ScenarioSpec:
    return ScenarioSpec(
        name="monotone-loss",
        description=(
            "throughput must not improve as per-frame loss rises "
            "(0%, 2%, 8%)"
        ),
        bed=BedSpec(
            target="netapp",
            client="stock",
            mount=(("retrans", 7), ("timeo_ns", ms(20))),
        ),
        workload=WorkloadSpec(file_bytes=1 * MIB),
        sweep_loss_rates=(0.0, 0.02, 0.08),
        checks=(
            CheckSpec("throughput-monotone"),
            CheckSpec("loss-cost-visible"),
        ),
    )


def legacy_specs() -> Dict[str, ScenarioSpec]:
    """Name → declarative spec for every scripted chaos scenario."""
    specs = [
        _lossy_burst(),
        _server_restart(),
        _soft_timeout(),
        _jukebox(),
        _slot_starvation(),
        _monotone_loss(),
    ]
    return {spec.name: spec for spec in specs}


def _fleet_crash_commit() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-crash-commit",
        description=(
            "knfsd crashes and reboots under three concurrent writers; "
            "every client must detect the verifier mismatch at COMMIT, "
            "re-dirty its unstable pages, and still reach durability"
        ),
        bed=BedSpec(
            target="linux",
            client="stock",
            clients=3,
            mount=(("retrans", 7), ("timeo_ns", ms(50))),
        ),
        workload=WorkloadSpec(file_bytes=2 * MIB),
        server_events=(
            ServerEventSpec(op="crash", at_ns=ms(60)),
            ServerEventSpec(op="restart", at_ns=ms(200)),
        ),
        checks=(
            CheckSpec("fleet-files-durable"),
            CheckSpec("fleet-clients-redirtied"),
        ),
    )


def _fleet_starved_client() -> ScenarioSpec:
    return ScenarioSpec(
        name="fleet-starved-client",
        description=(
            "one of three fleet clients loses its RPC slots for 35 ms; "
            "every file still lands complete and stable"
        ),
        bed=BedSpec(target="netapp", client="stock", clients=3),
        workload=WorkloadSpec(file_bytes=1 * MIB),
        client_events=(
            ClientEventSpec(client=1, start_ns=ms(5), end_ns=ms(40), slots=1),
        ),
        checks=(CheckSpec("fleet-files-durable"),),
    )


def corpus_specs() -> Dict[str, ScenarioSpec]:
    """Everything ``scripts/regen_scenarios.py`` serialises: the six
    legacy re-expressions plus the fleet chaos scenarios that only
    exist declaratively."""
    specs = dict(legacy_specs())
    for spec in (_fleet_crash_commit(), _fleet_starved_client()):
        specs[spec.name] = spec
    return specs
