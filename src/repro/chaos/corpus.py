"""The versioned ``scenarios/`` corpus: discovery, replay, regression save.

Corpus layout (conventions documented in ``docs/scenarios.md``):

* ``scenarios/*.json`` — strict replay files.  Each carries an
  ``expect`` block (pass verdict, failed-invariant names, payload
  fingerprint) pinned when the file was generated; CI replays every one
  and fails on any drift.
* ``scenarios/templates/*.json`` — parameterised scenarios with
  ``{{ PLACEHOLDER }}`` markers.  They need environment variables to
  load, so strict replay skips them; tests exercise them with explicit
  ``env`` dicts.
* ``scenarios/regressions/*.json`` — shrunk fuzzer findings, auto-saved
  with provenance (fuzz seed, draw index, shrink trace).  Replayed
  strictly like the top level.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError
from ..faults.scenarios import ScenarioOutcome
from .runner import failure_signature, run_spec
from .spec import ExpectSpec, ScenarioSpec, load_scenario

__all__ = [
    "TEMPLATE_DIR",
    "REGRESSION_DIR",
    "CorpusReplay",
    "corpus_files",
    "replay_file",
    "replay_corpus",
    "pin_expectations",
    "save_scenario",
    "save_regression",
]

TEMPLATE_DIR = "templates"
REGRESSION_DIR = "regressions"


def corpus_files(root: str, include_regressions: bool = True) -> List[str]:
    """Every strict-replay scenario file under ``root``, sorted.

    Templates are excluded — they cannot load without an environment —
    and regressions are included unless asked otherwise.
    """
    if not os.path.isdir(root):
        raise ConfigError(f"no scenario corpus at {root!r}")
    out = [
        os.path.join(root, name)
        for name in sorted(os.listdir(root))
        if name.endswith(".json")
    ]
    regressions = os.path.join(root, REGRESSION_DIR)
    if include_regressions and os.path.isdir(regressions):
        out.extend(
            os.path.join(regressions, name)
            for name in sorted(os.listdir(regressions))
            if name.endswith(".json")
        )
    return out


@dataclass
class CorpusReplay:
    """One corpus file's replay: the outcome plus any contract drift."""

    path: str
    spec: ScenarioSpec
    outcome: ScenarioOutcome
    #: Human-readable expectation mismatches; empty means the file's
    #: ``expect`` block still holds.
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def verdict_ok(self) -> bool:
        """The CI gate: expectations hold — and, for files that pin no
        verdict at all, the run itself must pass."""
        if self.spec.expect.passed is None and not self.spec.expect.failed:
            return self.ok and self.outcome.passed
        return self.ok


def _check_expectations(
    spec: ScenarioSpec, outcome: ScenarioOutcome
) -> List[str]:
    expect = spec.expect
    mismatches: List[str] = []
    if expect.passed is not None and outcome.passed != expect.passed:
        failed = ", ".join(failure_signature(outcome.invariants)) or "none"
        mismatches.append(
            f"expected pass={expect.passed}, got pass={outcome.passed} "
            f"(failed: {failed})"
        )
    if expect.failed:
        got = failure_signature(outcome.invariants)
        want = tuple(sorted(expect.failed))
        if got != want:
            mismatches.append(
                f"expected failed invariants {list(want)}, got {list(got)}"
            )
    if expect.fingerprint is not None and outcome.fingerprint != expect.fingerprint:
        mismatches.append(
            f"fingerprint drift: pinned {expect.fingerprint[:12]}, "
            f"got {outcome.fingerprint[:12]}"
        )
    return mismatches


def replay_file(
    path: str,
    env: Optional[Dict[str, str]] = None,
    verify_determinism: bool = True,
    sanitize: bool = False,
    shards: int = 0,
) -> CorpusReplay:
    """Load one scenario file, run it, and audit its ``expect`` block."""
    spec = load_scenario(path, env)
    outcome = run_spec(
        spec,
        verify_determinism=verify_determinism,
        sanitize=sanitize,
        shards=shards,
    )
    return CorpusReplay(
        path=path,
        spec=spec,
        outcome=outcome,
        mismatches=_check_expectations(spec, outcome),
    )


def replay_corpus(
    root: str,
    env: Optional[Dict[str, str]] = None,
    verify_determinism: bool = True,
    sanitize: bool = False,
) -> Iterable[CorpusReplay]:
    """Replay every strict corpus file under ``root``, lazily."""
    for path in corpus_files(root):
        yield replay_file(
            path,
            env=env,
            verify_determinism=verify_determinism,
            sanitize=sanitize,
        )


def pin_expectations(
    spec: ScenarioSpec, outcome: ScenarioOutcome
) -> ScenarioSpec:
    """Bake the run's verdicts into the spec's ``expect`` block."""
    return spec.replace(
        expect=ExpectSpec(
            passed=outcome.passed,
            failed=failure_signature(outcome.invariants),
            fingerprint=outcome.fingerprint,
        )
    )


def save_scenario(spec: ScenarioSpec, root: str, subdir: str = "") -> str:
    """Serialise one spec into the corpus; returns the file path."""
    directory = os.path.join(root, subdir) if subdir else root
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{spec.name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json())
    return path


def save_regression(
    spec: ScenarioSpec,
    outcome: ScenarioOutcome,
    root: str,
    provenance: Tuple[Tuple[str, object], ...] = (),
) -> str:
    """Auto-save one shrunk fuzzer finding as a regression scenario."""
    pinned = pin_expectations(spec, outcome)
    if provenance:
        pinned = pinned.replace(provenance=provenance)
    return save_scenario(pinned, root, subdir=REGRESSION_DIR)
