"""Materialise and run one :class:`~repro.chaos.spec.ScenarioSpec`.

The runner is the declarative twin of the hand-written scenarios in
:mod:`repro.faults.scenarios`: given a spec it assembles the same beds,
arms the same fault objects, runs the same benchmark, and produces the
same payload keys — so the six legacy scenarios re-expressed as corpus
files fingerprint identically to their scripted originals.

Three execution shapes, chosen by the spec:

* **single** (``bed.clients == 1``): one :class:`TestBed`, link faults
  on the switch, server schedules, slot starvation, probes;
* **fleet** (``bed.clients > 1``): a :class:`Topology` of identical
  clients driven through :class:`FleetFaults` — the same routing object
  the sharded engine uses, so ``shards >= 2`` can replay the identical
  fault set under the parallel engine and assert serial equivalence;
* **sweep** (``sweep.loss_rates``): the bed re-runs once per loss rate
  (the monotone-loss shape).

Faults are rebuilt from scratch on every run with RNG streams derived
from the seed by *name*, so a spec can be run, replayed, and shrunk
without state leaking between runs — the determinism contract extends
to every fuzz draw.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Any, Dict, List, Optional, Tuple

from ..bench.runner import TestBed
from ..config import MountConfig, NetConfig
from ..errors import ConfigError, EioError, ReproError
from ..faults.link import (
    DelayJitter,
    DropFrames,
    Duplicate,
    FaultChain,
    GilbertElliott,
)
from ..faults.scenarios import (
    Invariant,
    ScenarioOutcome,
    _common_payload,
    _fingerprint,
    _sanitizer_invariants,
    _server_file,
    _trace_checksum,
)
from ..faults.server import ServerFaultSchedule
from ..sim import RngStreams
from .checks import CheckContext, run_checks
from .spec import ScenarioSpec

__all__ = ["run_spec", "failure_signature"]


def _mount(spec: ScenarioSpec) -> Optional[MountConfig]:
    return MountConfig(**spec.bed.mount_dict()) if spec.bed.mount else None


def _net(spec: ScenarioSpec) -> Optional[NetConfig]:
    p = spec.bed.loss_probability
    return NetConfig(loss_probability=p) if p else None


def _build_link_fault(lf, rngs: RngStreams, scenario_name: str):
    """One live fault object from its spec, with a named RNG stream."""
    params = dict(lf.params)
    if lf.kind == "drop-frames":
        return DropFrames(params.get("indices", ()))
    rng = rngs.stream(lf.rng or f"{scenario_name}/{lf.attach}-{lf.direction}")
    if lf.kind == "gilbert-elliott":
        return GilbertElliott(rng, **params)
    if lf.kind == "jitter":
        return DelayJitter(rng, params.get("max_jitter_ns", 0))
    return Duplicate(
        rng, params.get("probability", 1.0), params.get("lag_ns", 0)
    )


class _BuiltFaults:
    """The live fault objects one run armed, grouped for bookkeeping."""

    def __init__(self) -> None:
        self.ge: List[GilbertElliott] = []
        self.dup: List[Duplicate] = []
        self.drop: List[DropFrames] = []
        self.by_port: Dict[Tuple[str, str], List[Any]] = {}

    def add(self, host: str, direction: str, fault: Any) -> None:
        if isinstance(fault, GilbertElliott):
            self.ge.append(fault)
        elif isinstance(fault, Duplicate):
            self.dup.append(fault)
        elif isinstance(fault, DropFrames):
            self.drop.append(fault)
        self.by_port.setdefault((host, direction), []).append(fault)

    def port_faults(self) -> Dict[Tuple[str, str], Any]:
        """One fault per (host, direction): chained when several stack."""
        return {
            key: (faults[0] if len(faults) == 1 else FaultChain(faults))
            for key, faults in self.by_port.items()
        }


def _group_server_ops(events) -> List[Tuple[int, Tuple[Tuple[str, tuple], ...]]]:
    """Per-server (method, args) lists, preserving event order."""
    ops: Dict[int, List[Tuple[str, tuple]]] = {}
    order: List[int] = []
    for event in events:
        if event.server not in ops:
            ops[event.server] = []
            order.append(event.server)
        ops[event.server].append(event.schedule_ops())
    return [(index, tuple(ops[index])) for index in order]


def _arm_server_events(spec: ScenarioSpec, servers) -> List[ServerFaultSchedule]:
    out = []
    for index, ops in _group_server_ops(spec.server_events):
        if index >= len(servers) or servers[index] is None:
            raise ConfigError(
                f"server event targets server {index}; scenario has "
                f"{len(servers)} server(s)"
            )
        schedule = ServerFaultSchedule(servers[index])
        for method, args in ops:
            getattr(schedule, method)(*args)
        out.append(schedule)
    return out


def _arm_probes(spec: ScenarioSpec, bed: TestBed) -> List[Dict[str, int]]:
    snapshots: List[Dict[str, int]] = []
    for probe in spec.probes:
        snap: Dict[str, int] = {}

        def take(snap: Dict[str, int] = snap) -> None:
            file = _server_file(bed)
            snap["client_acked_stable"] = bed.nfs.stats.bytes_acked_stable
            snap["server_stable"] = file.stable_bytes if file else 0

        bed.sim.schedule_at(probe.at_ns, take)
        snapshots.append(snap)
    return snapshots


def _fault_extras(
    payload: Dict[str, Any], spec: ScenarioSpec, built: _BuiltFaults
) -> None:
    """Per-fault-kind counters, added only when that kind is armed, so a
    fault-free spec's payload matches the legacy clean-run shape."""
    if built.ge:
        payload["frames_dropped"] = sum(f.frames_dropped for f in built.ge)
        payload["loss_bursts"] = sum(f.bursts for f in built.ge)
    if built.dup:
        payload["frames_duplicated"] = sum(f.duplicated for f in built.dup)
    if built.drop:
        payload["frames_scripted_dropped"] = sum(f.dropped for f in built.drop)


def _starvation_extras(payload: Dict[str, Any], starvations) -> None:
    for i, starve in enumerate(starvations):
        suffix = "" if i == 0 else str(i)
        payload[f"starved_at_ns{suffix}"] = starve.applied_at or 0
        payload[f"restored_at_ns{suffix}"] = starve.restored_at or 0


def _probe_extras(payload: Dict[str, Any], snapshots) -> None:
    for i, snap in enumerate(snapshots):
        suffix = "_at_crash" if i == 0 else f"_at_probe{i}"
        payload[f"acked_stable{suffix}"] = snap.get("client_acked_stable", 0)
        payload[f"server_stable{suffix}"] = snap.get("server_stable", 0)


# -- single-bed execution ------------------------------------------------------


def _single_attach(attach: str, bed: TestBed) -> str:
    if attach in ("client", "client0"):
        return "client"
    if attach == "server":
        return bed.server.name
    return attach


def _execute_single(spec: ScenarioSpec, seed: int):
    bed = TestBed(
        target=spec.bed.target,
        client=spec.bed.client,
        net=_net(spec),
        mount=_mount(spec),
    )
    rngs = RngStreams(seed)
    built = _BuiltFaults()
    for lf in spec.link_faults:
        built.add(
            _single_attach(lf.attach, bed),
            lf.direction,
            _build_link_fault(lf, rngs, spec.name),
        )
    for (host, direction), fault in built.port_faults().items():
        bed.switch.install_fault(host, **{direction: fault})
    schedules = _arm_server_events(spec, [bed.server])
    from ..faults.client import SlotStarvation

    starvations = [
        SlotStarvation(bed.sim, bed.nfs.xprt, e.start_ns, e.end_ns, slots=e.slots)
        for e in spec.client_events
    ]
    snapshots = _arm_probes(spec, bed)
    wl = spec.workload

    if wl.expect == "eio":
        eio_raised = False
        try:
            bed.run_sequential_write(
                wl.file_bytes,
                chunk_bytes=wl.chunk_bytes,
                do_fsync=wl.do_fsync,
                time_limit_ns=wl.time_limit_ns,
            )
        except EioError:
            eio_raised = True
        xs = bed.nfs.xprt.stats
        payload: Dict[str, Any] = {
            "eio_raised": eio_raised,
            "failed_at_ns": bed.sim.now,
            "major_timeouts": xs.major_timeouts,
            "soft_failures": xs.soft_failures,
            "retransmits": xs.retransmits,
            "write_failures": bed.nfs.stats.write_failures,
            "syscall_eio_errors": bed.syscalls.eio_errors,
        }
    else:
        result = bed.run_sequential_write(
            wl.file_bytes,
            chunk_bytes=wl.chunk_bytes,
            do_fsync=wl.do_fsync,
            time_limit_ns=wl.time_limit_ns,
        )
        payload = _common_payload(bed, result)
        _fault_extras(payload, spec, built)
        _probe_extras(payload, snapshots)
        if any(e.op in ("crash", "restart") for e in spec.server_events):
            payload["boot_verf"] = bed.server.boot_verf
        if any(e.op == "jukebox" for e in spec.server_events):
            payload["jukebox_injected"] = bed.server.jukebox_injected
            payload["jukebox_replies"] = bed.server.rpc.jukebox_replies
        _starvation_extras(payload, starvations)

    return payload, CheckContext(
        spec, payload, bed=bed, starvations=starvations, schedules=schedules
    )


# -- fleet execution -----------------------------------------------------------


def _fleet_job(spec: ScenarioSpec, seed: int):
    from ..topology import ClientSpec, ServerSpec
    from ..topology.fleet import FleetJobSpec
    from ..units import seconds

    wl = spec.workload
    client = ClientSpec(
        client=spec.bed.client, net=_net(spec), mount=_mount(spec)
    )
    workload = None
    if wl is not None and wl.name is not None and spec.arrivals is None:
        workload = (wl.name, wl.params)
    return FleetJobSpec(
        clients=client.replicate(spec.bed.clients),
        servers=(ServerSpec(kind=spec.bed.target),),
        file_bytes=(wl.file_bytes if wl is not None and wl.file_bytes else 1 << 20),
        chunk_bytes=wl.chunk_bytes if wl is not None else 8192,
        do_fsync=wl.do_fsync if wl is not None else True,
        stagger_ns=spec.bed.stagger_ns,
        time_limit_ns=(
            wl.time_limit_ns if wl is not None else seconds(600)
        ),
        workload=workload,
        arrivals=spec.arrivals,
        seed=seed,
    )


def _fleet_attach(attach: str, names: List[str], server_names: List[str]) -> str:
    if attach == "server":
        return server_names[0]
    if attach == "client" and len(names) > 1:
        raise ConfigError(
            'link fault attach "client" is ambiguous in a fleet; use '
            '"client<i>"'
        )
    if attach == "client":
        return names[0]
    return attach


def _fleet_faults(spec: ScenarioSpec, seed: int, job):
    """A fresh FleetFaults (live fault objects, new RNG streams)."""
    from ..parallel.des.plan import FleetFaults, client_names
    from ..topology.build import _named_server_specs

    names = client_names(job)
    server_names = [s.name for s in _named_server_specs(job.servers)]
    rngs = RngStreams(seed)
    built = _BuiltFaults()
    for lf in spec.link_faults:
        built.add(
            _fleet_attach(lf.attach, names, server_names),
            lf.direction,
            _build_link_fault(lf, rngs, spec.name),
        )
    for event in spec.server_events:
        if event.server >= len(job.servers):
            raise ConfigError(
                f"server event targets server {event.server}; scenario "
                f"has {len(job.servers)} server(s)"
            )
    faults = FleetFaults(
        server_schedules=tuple(_group_server_ops(spec.server_events)),
        client_events=tuple(
            (e.client, (e.start_ns, e.end_ns, e.slots))
            for e in spec.client_events
        ),
    )
    for (host, direction), fault in built.port_faults().items():
        getattr(faults, direction)[host] = fault
    return faults, built


def _execute_fleet(spec: ScenarioSpec, seed: int):
    from ..topology.build import Topology
    from ..topology.fleet import FleetWorkload, reduce_fleet

    if spec.probes:
        raise ConfigError("stability-snapshot probes are single-client only")
    if spec.workload is not None and spec.workload.expect == "eio":
        raise ConfigError("eio expectation is single-client only")
    job = _fleet_job(spec, seed)
    faults, built = _fleet_faults(spec, seed, job)
    topo = Topology(clients=job.clients, servers=job.servers, switch=job.switch)
    schedules = faults.apply_serial(topo)
    workload = FleetWorkload(
        topo,
        job.file_bytes,
        chunk_bytes=job.chunk_bytes,
        do_fsync=job.do_fsync,
        stagger_ns=job.stagger_ns,
        workload=job.workload,
        arrivals=job.arrivals,
        seed=job.seed,
    )
    fleet = workload.run(time_limit_ns=job.time_limit_ns)
    point = reduce_fleet(fleet)
    payload: Dict[str, Any] = {
        "clients": point.clients,
        "servers": point.servers,
    }
    _fault_extras(payload, spec, built)
    if any(e.op in ("crash", "restart") for e in spec.server_events):
        payload["boot_verf"] = [
            s.boot_verf for s in topo.servers if s is not None
        ]
    ctx = CheckContext(
        spec,
        payload,
        topology=topo,
        point=point,
        starvations=getattr(faults, "starvations", []),
        schedules=schedules,
    )
    ctx.fleet_job = job
    return payload, ctx


# -- sweep execution -----------------------------------------------------------


def _execute_sweep(spec: ScenarioSpec, seed: int):
    if spec.fault_count() or spec.probes:
        raise ConfigError("loss-rate sweeps take no fault schedule")
    if spec.bed.clients != 1:
        raise ConfigError("loss-rate sweeps are single-client only")
    if spec.workload is not None and spec.workload.name is not None:
        raise ConfigError("loss-rate sweeps drive the sequential writer only")
    wl = spec.workload
    rates = spec.sweep_loss_rates
    payload: Dict[str, Any] = {"loss_rates": list(rates)}
    elapsed: List[int] = []
    for rate in rates:
        bed = TestBed(
            target=spec.bed.target,
            client=spec.bed.client,
            net=NetConfig(loss_probability=rate),
            mount=_mount(spec),
        )
        result = bed.run_sequential_write(
            wl.file_bytes,
            chunk_bytes=wl.chunk_bytes,
            do_fsync=wl.do_fsync,
            time_limit_ns=wl.time_limit_ns,
        )
        elapsed.append(result.flush_elapsed_ns)
        payload[f"flush_elapsed_ns@{rate}"] = result.flush_elapsed_ns
        payload[f"retransmits@{rate}"] = bed.nfs.xprt.stats.retransmits
        payload[f"trace_checksum@{rate}"] = _trace_checksum(result)
    return payload, CheckContext(spec, payload, sweep_elapsed=elapsed)


# -- experiment execution ------------------------------------------------------


def _round_floats(value):
    """Stabilise experiment curves for fingerprinting: floats carry
    platform-independent deterministic arithmetic already, but rounding
    keeps the payload JSON readable and cheap to diff."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, list):
        return [_round_floats(v) for v in value]
    if isinstance(value, dict):
        return {k: _round_floats(v) for k, v in sorted(value.items())}
    return value


def _execute_experiment(spec: ScenarioSpec, seed: int):
    """Replay one registered paper experiment under pinned knobs.

    The payload is the experiment's raw data (curves, sizes) plus its
    verdict; every shape criterion becomes one invariant row, so a
    corpus file gates both the figures' numbers (fingerprint) and the
    paper's qualitative claims (failed-invariant names)."""
    from ..experiments import get_experiment

    exp = spec.experiment
    experiment = get_experiment(exp.id)
    result = experiment.run(scale=exp.scale, quick=exp.quick)
    payload: Dict[str, Any] = {
        "experiment": exp.id,
        "scale": exp.scale,
        "quick": exp.quick,
        "criteria_passed": result.passed,
    }
    for name, value in sorted(result.data.items()):
        if isinstance(value, (int, float, str, bool, list)):
            payload[name] = _round_floats(value)
    ctx = CheckContext(spec, payload)
    ctx.experiment_result = result
    return payload, ctx


# -- entry point ---------------------------------------------------------------


def _execute(spec: ScenarioSpec, seed: int):
    """One full run → (payload, ctx, error).

    Build-phase problems (bad spec references) raise; run-phase failures
    (wedged simulation, unexpected EIO) are captured as ``error`` so the
    fuzzer can treat them as findings and shrink them.
    """
    try:
        if spec.experiment is not None:
            payload, ctx = _execute_experiment(spec, seed)
        elif spec.sweep_loss_rates:
            payload, ctx = _execute_sweep(spec, seed)
        elif (
            spec.bed.clients > 1
            or spec.arrivals is not None
            or (spec.workload is not None and spec.workload.name is not None)
        ):
            # Fleets, open-loop arrivals, and registry-named workloads
            # all run through the topology path (a one-client fleet is
            # just a fleet of one).
            payload, ctx = _execute_fleet(spec, seed)
        else:
            payload, ctx = _execute_single(spec, seed)
        return payload, ctx, None
    except ConfigError:
        raise
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
        return {"error": error}, None, error


def failure_signature(invariants: List[Invariant]) -> Tuple[str, ...]:
    """The sorted names of every failed invariant — the shrinker's
    'same bug' predicate."""
    return tuple(sorted(inv.name for inv in invariants if not inv.ok))


def run_spec(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    verify_determinism: bool = True,
    sanitize: bool = False,
    shards: int = 0,
    shard_transport: str = "inline",
) -> ScenarioOutcome:
    """Run one declarative scenario and audit its selected checks.

    Mirrors :func:`repro.faults.scenarios.run_scenario`: with
    ``verify_determinism`` the spec executes twice and both payload
    fingerprints must match; with ``sanitize`` the first run executes
    under the runtime sanitizers, adding the three ``sanitize-*`` rows.

    ``shards >= 2`` (fleet specs only) additionally replays the same
    spec — same seed, fresh faults — under the sharded parallel engine
    and appends a ``serial-equivalence`` row comparing the two reduced
    fleet fingerprints.
    """
    seed = spec.seed if seed is None else seed
    san_session = None
    obs_sess = None
    with ExitStack() as stack:
        if sanitize:
            from ..analysis.sanitize import sanitized

            san_session = stack.enter_context(sanitized())
        if spec.slos:
            # SLO gating needs timelines, so the first execution runs
            # observed.  The determinism replay below stays unobserved,
            # so its fingerprint match doubles as a pure-observer proof.
            from ..obs.core import observed

            obs_sess = stack.enter_context(observed())
        payload, ctx, error = _execute(spec, seed)
    invariants: List[Invariant] = []
    if error is not None:
        invariants.append(Invariant("completed", False, error))
    else:
        invariants.extend(run_checks(ctx))
        exp_result = getattr(ctx, "experiment_result", None)
        if exp_result is not None:
            # Each paper shape criterion gates as its own invariant row.
            invariants.extend(
                Invariant(check.name, check.passed, check.measured)
                for check in exp_result.comparison.checks
            )
        if obs_sess is not None and obs_sess.observabilities:
            from ..obs.slo import evaluate_slos

            report = evaluate_slos(
                obs_sess.observabilities[0].timelines, spec.slos
            )
            for row in report["slos"]:
                attained = row["attained"]
                detail = (
                    f"{row['verdict']}: attained "
                    + (f"{attained:.6f}" if attained is not None else "n/a")
                    + f" target {row['spec']['target']}"
                )
                invariants.append(
                    Invariant(
                        f"slo-{row['spec']['name']}",
                        row["verdict"] == "ok",
                        detail,
                    )
                )
    if san_session is not None:
        invariants.extend(_sanitizer_invariants(san_session))
    fingerprint = _fingerprint(payload)
    if verify_determinism:
        replay, _, _ = _execute(spec, seed)
        replay_fp = _fingerprint(replay)
        invariants.append(
            Invariant(
                "deterministic",
                replay_fp == fingerprint,
                f"{fingerprint[:12]} vs replay {replay_fp[:12]}",
            )
        )
    if shards >= 2 and spec.bed.clients > 1 and error is None:
        from ..parallel.des import run_sharded_fleet

        job = ctx.fleet_job
        faults, _ = _fleet_faults(spec, seed, job)
        sharded = run_sharded_fleet(
            job, shards=shards, transport=shard_transport, faults=faults
        )
        serial_fp = ctx.point.run_fingerprint()
        sharded_fp = sharded.point.run_fingerprint()
        invariants.append(
            Invariant(
                "serial-equivalence",
                sharded_fp == serial_fp,
                f"serial {serial_fp[:12]} vs {shards}-shard {sharded_fp[:12]}",
            )
        )
    return ScenarioOutcome(
        name=spec.name,
        seed=seed,
        payload=payload,
        invariants=invariants,
        fingerprint=fingerprint,
    )
