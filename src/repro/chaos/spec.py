"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the in-memory form of one ``scenario.json``
file: plain frozen-ish dataclasses describing the bed (target, client
variant, mount options, client count), the workload, the fault schedule
(link faults, timed server events, client-side events), probes, and the
invariant checks to audit afterwards.  Specs round-trip losslessly
through :meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`,
which is what the fuzzer's shrinker and the corpus replay lean on.

Everything is data: no live simulator objects, no RNGs — those are
materialised per run by :mod:`repro.chaos.runner`, so one spec can be
run, re-run, shrunk, and serialised without state leaking between runs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..obs.slo import SloSpec
from ..traffic.spec import ArrivalSpec
from ..units import seconds
from .schema import (
    SCENARIO_SCHEMA,
    SCHEMA_VERSION,
    substitute_placeholders,
    validate,
)

__all__ = [
    "LinkFaultSpec",
    "ServerEventSpec",
    "ClientEventSpec",
    "ProbeSpec",
    "CheckSpec",
    "BedSpec",
    "WorkloadSpec",
    "ExperimentSpec",
    "ExpectSpec",
    "ScenarioSpec",
    "load_scenario",
    "loads_scenario",
]

#: Parameters each link-fault kind accepts (see repro.faults.link).
_LINK_KIND_PARAMS = {
    "gilbert-elliott": ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"),
    "jitter": ("max_jitter_ns",),
    "duplicate": ("probability", "lag_ns"),
    "drop-frames": ("indices",),
}


def _prune(d: Dict[str, Any]) -> Dict[str, Any]:
    """Drop None values so serialised specs stay minimal."""
    return {k: v for k, v in d.items() if v is not None}


@dataclass(frozen=True)
class LinkFaultSpec:
    """One per-frame fault on one direction of one host's link."""

    kind: str
    attach: str  # "client", "client<i>", "server", or a host name
    direction: str  # "uplink" | "downlink"
    rng: Optional[str] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _LINK_KIND_PARAMS:
            raise ConfigError(f"unknown link fault kind {self.kind!r}")
        if self.direction not in ("uplink", "downlink"):
            raise ConfigError(f"bad link fault direction {self.direction!r}")
        allowed = _LINK_KIND_PARAMS[self.kind]
        for key, _ in self.params:
            if key not in allowed:
                raise ConfigError(
                    f"{self.kind} link fault does not take {key!r} "
                    f"(expected a subset of {allowed})"
                )

    def param_dict(self) -> Dict[str, Any]:
        return {k: (list(v) if isinstance(v, tuple) else v) for k, v in self.params}

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "attach": self.attach,
            "direction": self.direction,
        }
        if self.rng is not None:
            out["rng"] = self.rng
        out.update(self.param_dict())
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "LinkFaultSpec":
        params = tuple(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in sorted(d.items())
            if k not in ("kind", "attach", "direction", "rng")
        )
        return cls(
            kind=d["kind"],
            attach=d["attach"],
            direction=d["direction"],
            rng=d.get("rng"),
            params=params,
        )


@dataclass(frozen=True)
class ServerEventSpec:
    """One timed server fault: pause/crash/restart/jukebox."""

    op: str
    server: int = 0
    at_ns: Optional[int] = None  # crash / restart
    start_ns: Optional[int] = None  # pause / jukebox windows
    end_ns: Optional[int] = None
    lose_drc: bool = True

    def __post_init__(self) -> None:
        if self.op in ("crash", "restart"):
            if self.at_ns is None:
                raise ConfigError(f"server {self.op} event needs at_ns")
        elif self.op in ("pause", "jukebox"):
            if self.start_ns is None or self.end_ns is None:
                raise ConfigError(f"server {self.op} event needs start_ns/end_ns")
        else:
            raise ConfigError(f"unknown server fault op {self.op!r}")

    def to_dict(self) -> Dict[str, Any]:
        out = _prune(
            {
                "op": self.op,
                "at_ns": self.at_ns,
                "start_ns": self.start_ns,
                "end_ns": self.end_ns,
            }
        )
        if self.server:
            out["server"] = self.server
        if self.op == "crash" and not self.lose_drc:
            out["lose_drc"] = False
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ServerEventSpec":
        return cls(
            op=d["op"],
            server=d.get("server", 0),
            at_ns=d.get("at_ns"),
            start_ns=d.get("start_ns"),
            end_ns=d.get("end_ns"),
            lose_drc=d.get("lose_drc", True),
        )

    def schedule_ops(self) -> Tuple[str, tuple]:
        """The (method, args) pair a ServerFaultSchedule replays."""
        if self.op == "crash":
            return ("crash_at", (self.at_ns, self.lose_drc))
        if self.op == "restart":
            return ("restart_at", (self.at_ns,))
        if self.op == "pause":
            return ("pause_between", (self.start_ns, self.end_ns))
        return ("jukebox_between", (self.start_ns, self.end_ns))


@dataclass(frozen=True)
class ClientEventSpec:
    """One client-side fault window (RPC slot starvation)."""

    kind: str = "slot-starvation"
    client: int = 0
    start_ns: int = 0
    end_ns: int = 0
    slots: int = 1

    def __post_init__(self) -> None:
        if self.kind != "slot-starvation":
            raise ConfigError(f"unknown client fault kind {self.kind!r}")
        if self.end_ns <= self.start_ns:
            raise ConfigError("client fault window must have positive duration")
        if self.slots < 1:
            raise ConfigError("cannot starve below one slot")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.client:
            out["client"] = self.client
        if self.slots != 1:
            out["slots"] = self.slots
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ClientEventSpec":
        return cls(
            kind=d["kind"],
            client=d.get("client", 0),
            start_ns=d["start_ns"],
            end_ns=d["end_ns"],
            slots=d.get("slots", 1),
        )


@dataclass(frozen=True)
class ProbeSpec:
    """A scheduled payload snapshot (pre-crash durability bookkeeping)."""

    kind: str = "stability-snapshot"
    at_ns: int = 0

    def __post_init__(self) -> None:
        if self.kind != "stability-snapshot":
            raise ConfigError(f"unknown probe kind {self.kind!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "at_ns": self.at_ns}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ProbeSpec":
        return cls(kind=d["kind"], at_ns=d["at_ns"])


@dataclass(frozen=True)
class CheckSpec:
    """One invariant check by registry name, with parameters."""

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CheckSpec":
        return cls(
            kind=d["kind"],
            params=tuple(sorted(d.get("params", {}).items())),
        )


@dataclass(frozen=True)
class BedSpec:
    """The machine assembly one scenario runs on."""

    target: str = "netapp"
    client: str = "stock"
    #: 1 = single TestBed; >1 = a fleet Topology of identical clients.
    clients: int = 1
    mount: Tuple[Tuple[str, Any], ...] = ()
    #: Per-frame switch loss (NetConfig.loss_probability).
    loss_probability: float = 0.0
    stagger_ns: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigError("bed needs at least one client")
        if self.stagger_ns < 0:
            raise ConfigError("stagger_ns must be >= 0")

    def mount_dict(self) -> Dict[str, Any]:
        return dict(self.mount)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"target": self.target, "client": self.client}
        if self.clients != 1:
            out["clients"] = self.clients
        if self.mount:
            out["mount"] = dict(self.mount)
        if self.loss_probability:
            out["loss_probability"] = self.loss_probability
        if self.stagger_ns:
            out["stagger_ns"] = self.stagger_ns
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "BedSpec":
        return cls(
            target=d.get("target", "netapp"),
            client=d.get("client", "stock"),
            clients=d.get("clients", 1),
            mount=tuple(sorted(d.get("mount", {}).items())),
            loss_probability=d.get("loss_probability", 0.0),
            stagger_ns=d.get("stagger_ns", 0),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """What each client runs: the sequential writer, or any registered
    workload by ``name`` + ``params`` (the PR 10 Workload registry)."""

    file_bytes: int = 0
    chunk_bytes: int = 8192
    do_fsync: bool = True
    time_limit_ns: int = seconds(600)
    #: "complete" — the run must finish durably; "eio" — the workload is
    #: expected to fail with EIO (soft-mount scenarios).
    expect: str = "complete"
    #: Registered workload name; ``None`` keeps the classic sequential
    #: writer described by the fields above.
    name: Optional[str] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.name is None and self.file_bytes <= 0:
            raise ConfigError("file_bytes must be positive")
        if self.name is not None and not self.name:
            raise ConfigError("workload name must be non-empty")
        if self.expect not in ("complete", "eio"):
            raise ConfigError(f"unknown workload expectation {self.expect!r}")
        if not isinstance(self.params, tuple):
            object.__setattr__(
                self, "params", tuple(sorted(dict(self.params).items()))
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.name is not None:
            out["name"] = self.name
            if self.params:
                out["params"] = dict(self.params)
        if self.file_bytes:
            out["file_bytes"] = self.file_bytes
        if self.chunk_bytes != 8192:
            out["chunk_bytes"] = self.chunk_bytes
        if not self.do_fsync:
            out["do_fsync"] = False
        if self.time_limit_ns != seconds(600):
            out["time_limit_ns"] = self.time_limit_ns
        if self.expect != "complete":
            out["expect"] = self.expect
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "WorkloadSpec":
        params = d.get("params", ())
        if isinstance(params, dict):
            params = tuple(sorted(params.items()))
        return cls(
            file_bytes=d.get("file_bytes", 0),
            chunk_bytes=d.get("chunk_bytes", 8192),
            do_fsync=d.get("do_fsync", True),
            time_limit_ns=d.get("time_limit_ns", seconds(600)),
            expect=d.get("expect", "complete"),
            name=d.get("name"),
            params=params,
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A paper experiment replayed as a corpus scenario.

    Instead of a bed + workload, the scenario names a figure/table
    experiment by registry id (``fig1``, ``fig2`` …) with the scale and
    quick knobs pinned, so the corpus can gate an experiment's payload
    fingerprint and shape criteria exactly like a chaos run.
    """

    id: str
    scale: float = 4.0
    quick: bool = False

    def __post_init__(self) -> None:
        if not self.id:
            raise ConfigError("experiment block needs an id")
        if self.scale <= 0:
            raise ConfigError("experiment scale must be positive")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"id": self.id}
        if self.scale != 4.0:
            out["scale"] = self.scale
        if self.quick:
            out["quick"] = True
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExperimentSpec":
        return cls(
            id=d["id"],
            scale=d.get("scale", 4.0),
            quick=d.get("quick", False),
        )


@dataclass(frozen=True)
class ExpectSpec:
    """The corpus contract: what replaying this file must produce."""

    passed: Optional[bool] = None
    failed: Tuple[str, ...] = ()
    fingerprint: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.passed is not None:
            out["pass"] = self.passed
        if self.failed:
            out["failed"] = list(self.failed)
        if self.fingerprint is not None:
            out["fingerprint"] = self.fingerprint
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExpectSpec":
        return cls(
            passed=d.get("pass"),
            failed=tuple(d.get("failed", ())),
            fingerprint=d.get("fingerprint"),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete declarative chaos scenario."""

    name: str
    bed: BedSpec
    workload: Optional[WorkloadSpec] = None
    description: str = ""
    seed: int = 1
    link_faults: Tuple[LinkFaultSpec, ...] = ()
    server_events: Tuple[ServerEventSpec, ...] = ()
    client_events: Tuple[ClientEventSpec, ...] = ()
    probes: Tuple[ProbeSpec, ...] = ()
    checks: Tuple[CheckSpec, ...] = ()
    #: SLO expectations: the run executes observed and each objective
    #: gates as an ``slo-<name>`` invariant row (repro.obs.slo).
    slos: Tuple[SloSpec, ...] = ()
    #: Loss-rate sweep: the bed re-runs once per rate (monotone-loss).
    sweep_loss_rates: Tuple[float, ...] = ()
    #: Paper-experiment replay: mutually exclusive with workload/faults.
    experiment: Optional[ExperimentSpec] = None
    #: Open-loop arrivals (repro.traffic): every bed client releases
    #: sessions per this process instead of one closed-loop workload
    #: body.  The ``workload`` block then (optionally) pins the mix's
    #: default entry via name/params and still owns time_limit/expect.
    arrivals: Optional[ArrivalSpec] = None
    expect: ExpectSpec = field(default_factory=ExpectSpec)
    provenance: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.experiment is None:
            if self.workload is None and self.arrivals is None:
                raise ConfigError("scenario needs a workload or an experiment")
        else:
            if self.workload is not None:
                raise ConfigError(
                    "experiment scenarios take no workload; the experiment "
                    "defines its own sweep"
                )
            if self.arrivals is not None:
                raise ConfigError("experiment scenarios take no arrivals")
            if self.fault_count() or self.probes or self.sweep_loss_rates:
                raise ConfigError("experiment scenarios take no fault schedule")
        if self.arrivals is not None and self.sweep_loss_rates:
            raise ConfigError("arrivals scenarios take no loss sweep")
        if self.slos and (self.experiment is not None or self.sweep_loss_rates):
            raise ConfigError(
                "slo blocks apply to single-run workload scenarios, not "
                "experiments or sweeps"
            )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": f"repro-nfs/scenario@{SCHEMA_VERSION}",
            "name": self.name,
        }
        if self.description:
            out["description"] = self.description
        out["seed"] = self.seed
        out["bed"] = self.bed.to_dict()
        if self.workload is not None:
            out["workload"] = self.workload.to_dict()
        if self.arrivals is not None:
            out["arrivals"] = self.arrivals.to_dict()
        if self.experiment is not None:
            out["experiment"] = self.experiment.to_dict()
        faults: Dict[str, Any] = {}
        if self.link_faults:
            faults["link"] = [f.to_dict() for f in self.link_faults]
        if self.server_events:
            faults["server"] = [e.to_dict() for e in self.server_events]
        if self.client_events:
            faults["client"] = [e.to_dict() for e in self.client_events]
        if faults:
            out["faults"] = faults
        if self.probes:
            out["probes"] = [p.to_dict() for p in self.probes]
        if self.checks:
            out["checks"] = [c.to_dict() for c in self.checks]
        if self.slos:
            out["slo"] = [s.to_dict() for s in self.slos]
        if self.sweep_loss_rates:
            out["sweep"] = {"loss_rates": list(self.sweep_loss_rates)}
        expect = self.expect.to_dict()
        if expect:
            out["expect"] = expect
        if self.provenance:
            out["provenance"] = {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.provenance
            }
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ScenarioSpec":
        validate(d, SCENARIO_SCHEMA)
        faults = d.get("faults", {})
        provenance = tuple(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in sorted(d.get("provenance", {}).items())
        )
        return cls(
            name=d["name"],
            description=d.get("description", ""),
            seed=d.get("seed", 1),
            bed=BedSpec.from_dict(d.get("bed", {})),
            workload=(
                WorkloadSpec.from_dict(d["workload"])
                if "workload" in d
                else None
            ),
            experiment=(
                ExperimentSpec.from_dict(d["experiment"])
                if "experiment" in d
                else None
            ),
            arrivals=(
                ArrivalSpec.from_dict(d["arrivals"])
                if "arrivals" in d
                else None
            ),
            link_faults=tuple(
                LinkFaultSpec.from_dict(f) for f in faults.get("link", ())
            ),
            server_events=tuple(
                ServerEventSpec.from_dict(e) for e in faults.get("server", ())
            ),
            client_events=tuple(
                ClientEventSpec.from_dict(e) for e in faults.get("client", ())
            ),
            probes=tuple(ProbeSpec.from_dict(p) for p in d.get("probes", ())),
            checks=tuple(CheckSpec.from_dict(c) for c in d.get("checks", ())),
            slos=tuple(SloSpec.from_dict(s) for s in d.get("slo", ())),
            sweep_loss_rates=tuple(d.get("sweep", {}).get("loss_rates", ())),
            expect=ExpectSpec.from_dict(d.get("expect", {})),
            provenance=provenance,
        )

    # -- shrinker-facing surgery ----------------------------------------------

    def replace(self, **kwargs: Any) -> "ScenarioSpec":
        return dataclasses.replace(self, **kwargs)

    def fault_count(self) -> int:
        return (
            len(self.link_faults)
            + len(self.server_events)
            + len(self.client_events)
        )


def loads_scenario(
    text: str, env: Optional[Dict[str, str]] = None
) -> ScenarioSpec:
    """Parse one scenario from JSON text: substitute, validate, build."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"scenario is not valid JSON: {exc}") from None
    raw = substitute_placeholders(raw, env)
    return ScenarioSpec.from_dict(raw)


def load_scenario(path: str, env: Optional[Dict[str, str]] = None) -> ScenarioSpec:
    """Load, substitute, validate, and build one ``scenario.json``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ConfigError(f"cannot read scenario {path!r}: {exc}") from None
    try:
        return loads_scenario(text, env)
    except ConfigError as exc:
        raise ConfigError(f"{path}: {exc}") from None
