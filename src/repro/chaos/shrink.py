"""Deterministic delta-debugging shrinker for failing scenarios.

Given a failing :class:`~repro.chaos.spec.ScenarioSpec` and an *oracle*
(spec → failure signature, the sorted tuple of failed invariant names),
the shrinker greedily minimises the schedule while the signature stays
exactly the same — the classic ddmin "same bug" predicate, which stops
a shrink step from trading the original violation for a different one.

The pass order is fixed and every candidate is a pure function of the
current spec, so shrinking the same failure twice produces the same
minimal reproducer — the determinism contract extends to debugging:

1. drop link faults, one at a time;
2. drop server events;
3. drop client events;
4. drop probes;
5. shed clients (fleet specs halve toward one client);
6. halve durations and windows (event times, fault windows, file size).

Passes repeat to a fixpoint: removing one event often makes another
removable.  Every accepted step lands in the trace, which regression
scenarios carry in their ``provenance`` block.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigError
from .spec import ScenarioSpec

__all__ = ["ShrinkResult", "shrink"]

#: spec → sorted failed-invariant names (empty tuple = spec passes).
Oracle = Callable[[ScenarioSpec], Tuple[str, ...]]

#: A candidate: (description, shrunk spec) — or None when inapplicable.
Candidate = Optional[Tuple[str, ScenarioSpec]]


@dataclass
class ShrinkResult:
    """The minimal reproducer one shrink run converged to."""

    spec: ScenarioSpec
    #: The failure signature every accepted step preserved.
    signature: Tuple[str, ...]
    #: Accepted shrink steps (the trace's length).
    steps: int
    #: Total oracle invocations, accepted or not.
    attempts: int
    trace: List[str]


def _drop(seq: tuple, index: int) -> tuple:
    return seq[:index] + seq[index + 1 :]


def _drop_candidates(spec: ScenarioSpec) -> List[Candidate]:
    """Passes 1–4: every single-element removal, in schedule order."""
    out: List[Candidate] = []
    for i, lf in enumerate(spec.link_faults):
        out.append(
            (
                f"drop link fault [{i}] {lf.kind}@{lf.attach}/{lf.direction}",
                spec.replace(link_faults=_drop(spec.link_faults, i)),
            )
        )
    for i, ev in enumerate(spec.server_events):
        out.append(
            (
                f"drop server event [{i}] {ev.op}",
                spec.replace(server_events=_drop(spec.server_events, i)),
            )
        )
    for i, ev in enumerate(spec.client_events):
        out.append(
            (
                f"drop client event [{i}] {ev.kind}",
                spec.replace(client_events=_drop(spec.client_events, i)),
            )
        )
    for i, probe in enumerate(spec.probes):
        out.append(
            (
                f"drop probe [{i}] {probe.kind}",
                spec.replace(probes=_drop(spec.probes, i)),
            )
        )
    return out


def _client_candidates(spec: ScenarioSpec) -> List[Candidate]:
    """Pass 5: halve the fleet toward a single client."""
    out: List[Candidate] = []
    clients = spec.bed.clients
    if clients > 1:
        target = max(1, clients // 2)
        # Events targeting shed clients must retarget or the smaller
        # fleet rejects them; map them all onto the surviving range.
        events = tuple(
            ev if ev.client < target else dataclasses.replace(ev, client=0)
            for ev in spec.client_events
        )
        out.append(
            (
                f"shed clients {clients} -> {target}",
                spec.replace(
                    bed=dataclasses.replace(spec.bed, clients=target),
                    client_events=events,
                ),
            )
        )
    return out


def _halve_candidates(spec: ScenarioSpec) -> List[Candidate]:
    """Pass 6: halve event times, fault windows, and the file size."""
    out: List[Candidate] = []
    for i, ev in enumerate(spec.server_events):
        if ev.at_ns is not None and ev.at_ns > 1:
            out.append(
                (
                    f"halve server event [{i}] at_ns {ev.at_ns} -> {ev.at_ns // 2}",
                    spec.replace(
                        server_events=spec.server_events[:i]
                        + (dataclasses.replace(ev, at_ns=ev.at_ns // 2),)
                        + spec.server_events[i + 1 :]
                    ),
                )
            )
        if ev.start_ns is not None and ev.end_ns is not None:
            duration = ev.end_ns - ev.start_ns
            if duration > 1:
                out.append(
                    (
                        f"halve server event [{i}] window {duration} -> "
                        f"{duration // 2}",
                        spec.replace(
                            server_events=spec.server_events[:i]
                            + (
                                dataclasses.replace(
                                    ev, end_ns=ev.start_ns + duration // 2
                                ),
                            )
                            + spec.server_events[i + 1 :]
                        ),
                    )
                )
    for i, ev in enumerate(spec.client_events):
        duration = ev.end_ns - ev.start_ns
        if duration > 1:
            out.append(
                (
                    f"halve client event [{i}] window {duration} -> "
                    f"{duration // 2}",
                    spec.replace(
                        client_events=spec.client_events[:i]
                        + (
                            dataclasses.replace(
                                ev, end_ns=ev.start_ns + duration // 2
                            ),
                        )
                        + spec.client_events[i + 1 :]
                    ),
                )
            )
    wl = spec.workload
    if wl.file_bytes // 2 >= wl.chunk_bytes:
        out.append(
            (
                f"halve file_bytes {wl.file_bytes} -> {wl.file_bytes // 2}",
                spec.replace(
                    workload=dataclasses.replace(
                        wl, file_bytes=wl.file_bytes // 2
                    )
                ),
            )
        )
    return out


_PASSES = (_drop_candidates, _client_candidates, _halve_candidates)


def shrink(
    spec: ScenarioSpec,
    oracle: Oracle,
    signature: Optional[Tuple[str, ...]] = None,
    max_attempts: int = 200,
) -> ShrinkResult:
    """Minimise ``spec`` while ``oracle`` keeps returning ``signature``.

    ``signature`` defaults to the oracle's verdict on the input spec; a
    passing input (empty signature) is a usage error.  ``max_attempts``
    bounds total oracle invocations so a pathological schedule cannot
    shrink forever; the best spec so far is returned either way.
    """
    if signature is None:
        signature = oracle(spec)
    if not signature:
        raise ConfigError("cannot shrink a passing scenario")
    signature = tuple(sorted(signature))
    attempts = 0
    trace: List[str] = []
    current = spec
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for make_candidates in _PASSES:
            # Restart the pass after every accepted step: indices shift
            # under removal, and candidates are pure functions of the
            # *current* spec.
            accepted = True
            while accepted and attempts < max_attempts:
                accepted = False
                for description, candidate in make_candidates(current):
                    if attempts >= max_attempts:
                        break
                    attempts += 1
                    try:
                        verdict = oracle(candidate)
                    except ConfigError:
                        continue  # candidate invalidated a reference
                    if tuple(sorted(verdict)) == signature:
                        current = candidate
                        trace.append(description)
                        accepted = True
                        improved = True
                        break
    return ShrinkResult(
        spec=current,
        signature=signature,
        steps=len(trace),
        attempts=attempts,
        trace=trace,
    )
