"""Chaos engineering for the simulated write path.

Declarative, schema-validated fault scenarios (:mod:`repro.chaos.spec`,
:mod:`repro.chaos.schema`), a runner that materialises them against the
simulator (:mod:`repro.chaos.runner`), the invariant check registry
(:mod:`repro.chaos.checks`), the versioned ``scenarios/`` corpus loader
(:mod:`repro.chaos.corpus`), and the seeded fault-schedule fuzzer with
its deterministic delta-debugging shrinker (:mod:`repro.chaos.fuzz`,
:mod:`repro.chaos.shrink`).
"""

from .schema import SCENARIO_SCHEMA, SCHEMA_VERSION, SchemaError, validate
from .spec import (
    BedSpec,
    CheckSpec,
    ClientEventSpec,
    ExpectSpec,
    ExperimentSpec,
    LinkFaultSpec,
    ProbeSpec,
    ScenarioSpec,
    ServerEventSpec,
    WorkloadSpec,
    load_scenario,
    loads_scenario,
)
from .checks import CHECKS, CheckContext, check_names, run_checks
from .runner import failure_signature, run_spec
from .corpus import (
    CorpusReplay,
    corpus_files,
    pin_expectations,
    replay_corpus,
    replay_file,
    save_regression,
    save_scenario,
)
from .shrink import ShrinkResult, shrink
from .fuzz import FuzzFinding, FuzzReport, draw_spec, fuzz
from .legacy import legacy_specs

__all__ = [
    "SCENARIO_SCHEMA",
    "SCHEMA_VERSION",
    "SchemaError",
    "validate",
    "BedSpec",
    "CheckSpec",
    "ClientEventSpec",
    "ExpectSpec",
    "ExperimentSpec",
    "LinkFaultSpec",
    "ProbeSpec",
    "ScenarioSpec",
    "ServerEventSpec",
    "WorkloadSpec",
    "load_scenario",
    "loads_scenario",
    "CHECKS",
    "CheckContext",
    "check_names",
    "run_checks",
    "failure_signature",
    "run_spec",
    "CorpusReplay",
    "corpus_files",
    "pin_expectations",
    "replay_corpus",
    "replay_file",
    "save_regression",
    "save_scenario",
    "ShrinkResult",
    "shrink",
    "FuzzFinding",
    "FuzzReport",
    "draw_spec",
    "fuzz",
    "legacy_specs",
]
