"""Invariant checks a scenario file can select by name.

Each check is a small function over the finished run's
:class:`CheckContext` — the payload, the live bed/topology, and any
fault objects the runner installed — returning the same
:class:`~repro.faults.scenarios.Invariant` rows the hand-written chaos
scenarios produce, under the same names.  A ``scenario.json`` lists the
checks it wants in order; unknown names fail at load time.

The registry deliberately mirrors the six legacy scenarios' invariants
one-for-one, so those scenarios re-express as corpus files without the
verdict surface changing shape.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..errors import ConfigError
from ..faults.scenarios import Invariant, _stability_invariants

__all__ = ["CheckContext", "CHECKS", "run_checks", "check_names"]


class CheckContext:
    """Everything a check may inspect after one scenario run."""

    def __init__(
        self,
        spec,
        payload: Dict[str, Any],
        bed=None,
        topology=None,
        point=None,
        starvations: Optional[List[Any]] = None,
        schedules: Optional[List[Any]] = None,
        sweep_elapsed: Optional[List[int]] = None,
    ):
        self.spec = spec
        self.payload = payload
        self.bed = bed
        self.topology = topology
        #: Reduced FleetPointResult (fleet scenarios only).
        self.point = point
        self.starvations = starvations or []
        self.schedules = schedules or []
        self.sweep_elapsed = sweep_elapsed

    @property
    def file_bytes(self) -> int:
        if self.spec.workload is None:
            raise ConfigError(
                "this check needs a workload block with file_bytes"
            )
        return self.spec.workload.file_bytes


CheckFn = Callable[[CheckContext, Dict[str, Any]], List[Invariant]]

CHECKS: Dict[str, CheckFn] = {}


def _check(name: str):
    def register(fn: CheckFn) -> CheckFn:
        CHECKS[name] = fn
        return fn

    return register


def check_names() -> List[str]:
    return sorted(CHECKS)


def run_checks(ctx: CheckContext) -> List[Invariant]:
    """Audit every check the spec selected, in spec order."""
    rows: List[Invariant] = []
    for check in ctx.spec.checks:
        fn = CHECKS.get(check.kind)
        if fn is None:
            raise ConfigError(
                f"unknown check {check.kind!r} (expected one of {check_names()})"
            )
        rows.extend(fn(ctx, check.param_dict()))
    return rows


# -- single-bed checks (the legacy scenario invariants) ------------------------


@_check("loss-injected")
def _loss_injected(ctx, params):
    dropped = ctx.payload.get("frames_dropped", 0)
    return [Invariant("loss-injected", dropped > 0, f"{dropped} frames dropped")]


@_check("client-retransmitted")
def _client_retransmitted(ctx, params):
    n = ctx.payload.get("retransmits", 0)
    return [Invariant("client-retransmitted", n > 0, f"{n} retransmits")]


@_check("stability")
def _stability(ctx, params):
    return _stability_invariants(ctx.payload, ctx.file_bytes)


@_check("verifier-bumped")
def _verifier_bumped(ctx, params):
    expected = params.get("expected", 2)
    verf = ctx.payload.get("boot_verf")
    return [Invariant("verifier-bumped", verf == expected, f"verf={verf}")]


@_check("verf-mismatch-detected")
def _verf_mismatch(ctx, params):
    n = ctx.payload.get("commit_verf_mismatches", 0)
    return [Invariant("verf-mismatch-detected", n > 0, f"{n} mismatches")]


@_check("no-stable-data-lost")
def _no_stable_data_lost(ctx, params):
    server = ctx.payload.get("server_stable_at_crash", 0)
    client = ctx.payload.get("acked_stable_at_crash", 0)
    return [
        Invariant(
            "no-stable-data-lost",
            server >= client,
            f"server had {server} stable, client believed {client}",
        )
    ]


@_check("eio-surfaced")
def _eio_surfaced(ctx, params):
    return [
        Invariant(
            "eio-surfaced",
            bool(ctx.payload.get("eio_raised")),
            "benchmark did not fail with EIO",
        )
    ]


@_check("major-timeout-hit")
def _major_timeout_hit(ctx, params):
    n = ctx.payload.get("major_timeouts", 0)
    return [Invariant("major-timeout-hit", n >= 1, f"{n} major timeouts")]


@_check("requests-failed-soft")
def _requests_failed_soft(ctx, params):
    soft = ctx.payload.get("soft_failures", 0)
    writes = ctx.payload.get("write_failures", 0)
    return [
        Invariant(
            "requests-failed-soft",
            soft >= 1 and writes >= 1,
            f"soft={soft} writes={writes}",
        )
    ]


@_check("syscall-saw-eio")
def _syscall_saw_eio(ctx, params):
    n = ctx.payload.get("syscall_eio_errors", 0)
    return [Invariant("syscall-saw-eio", n >= 1, f"{n} EIO returns")]


@_check("jukebox-injected")
def _jukebox_injected(ctx, params):
    n = ctx.payload.get("jukebox_injected", 0)
    return [Invariant("jukebox-injected", n >= 1, f"{n} injections")]


@_check("client-waited-and-retried")
def _client_waited(ctx, params):
    n = ctx.payload.get("jukebox_retries", 0)
    return [Invariant("client-waited-and-retried", n >= 1, f"{n} jukebox retries")]


@_check("no-duplicate-ingest")
def _no_duplicate_ingest(ctx, params):
    received = ctx.payload.get("server_bytes_received", 0)
    return [
        Invariant(
            "no-duplicate-ingest",
            received == ctx.file_bytes,
            f"server ingested {received} for a {ctx.file_bytes}-byte file",
        )
    ]


@_check("starvation-applied")
def _starvation_applied(ctx, params):
    ok = bool(ctx.starvations) and all(
        s.applied_at is not None and s.restored_at is not None
        for s in ctx.starvations
    )
    return [Invariant("starvation-applied", ok, "window never fired")]


@_check("backlog-built-up")
def _backlog_built_up(ctx, params):
    minimum = params.get("min", 4)
    peak = ctx.payload.get("backlog_peak", 0)
    return [Invariant("backlog-built-up", peak >= minimum, f"backlog peak {peak}")]


@_check("throughput-monotone")
def _throughput_monotone(ctx, params):
    elapsed = ctx.sweep_elapsed or []
    monotone = all(a <= b for a, b in zip(elapsed, elapsed[1:]))
    return [
        Invariant(
            "throughput-monotone", monotone, f"elapsed {elapsed} not non-decreasing"
        )
    ]


@_check("loss-cost-visible")
def _loss_cost_visible(ctx, params):
    elapsed = ctx.sweep_elapsed or []
    ok = len(elapsed) >= 2 and elapsed[-1] > elapsed[0]
    return [
        Invariant(
            "loss-cost-visible",
            ok,
            f"{elapsed and elapsed[-1]} loss no slower than clean run ({elapsed})",
        )
    ]


# -- fleet checks --------------------------------------------------------------


def _fleet_servers(ctx):
    if ctx.topology is None:
        raise ConfigError("fleet checks need a live fleet topology")
    return [s for s in ctx.topology.servers if s is not None]


@_check("fleet-files-durable")
def _fleet_files_durable(ctx, params):
    """Every client's file complete and fully stable, per server."""
    clients = ctx.spec.bed.clients
    rows = []
    for server in _fleet_servers(ctx):
        laggards = sorted(
            f.name
            for f in server.files.values()
            if f.size != ctx.file_bytes or f.stable_bytes < f.size
        )
        rows.append(
            Invariant(
                f"files-complete-durable[{server.name}]",
                len(server.files) == clients and not laggards,
                f"{len(server.files)} files, incomplete: {laggards}",
            )
        )
    return rows


@_check("fleet-clients-redirtied")
def _fleet_clients_redirtied(ctx, params):
    """After a crash/restart verifier mismatch, every client must have
    detected the new verifier at COMMIT and re-dirtied unstable pages."""
    if ctx.topology is None:
        raise ConfigError("fleet-clients-redirtied needs a live fleet topology")
    cold = [
        stack.name
        for stack in ctx.topology.clients
        if stack.nfs is None or stack.nfs.stats.commit_verf_mismatches < 1
    ]
    return [
        Invariant(
            "fleet-clients-redirtied",
            not cold,
            f"no verifier mismatch seen on: {', '.join(cold)}",
        )
    ]


@_check("fleet-fair-share")
def _fleet_fair_share(ctx, params):
    minimum = params.get("min", 0.95)
    if ctx.point is None:
        raise ConfigError("fleet-fair-share needs a reduced fleet point")
    fairness = ctx.point.fairness
    return [
        Invariant(
            "fair-share",
            fairness >= minimum,
            f"Jain {fairness:.4f} < {minimum} for identical clients",
        )
    ]


@_check("open-loop-complete")
def _open_loop_complete(ctx, params):
    """Every planned open-loop session completed, and nothing a server
    ingested was left unstable — the overload-safe completeness bar for
    arrivals scenarios, where per-session sizes vary by design."""
    if ctx.point is None:
        raise ConfigError("open-loop-complete needs a reduced fleet point")
    planned = completed = 0
    for row in ctx.point.clients:
        planned += row.get("extra", {}).get("sessions", 0)
        completed += row.get("ops", 0)
    rows = [
        Invariant(
            "open-loop-complete",
            planned > 0 and completed == planned,
            f"{completed}/{planned} sessions completed",
        )
    ]
    for server in _fleet_servers(ctx):
        laggards = sorted(
            f.name
            for f in server.files.values()
            if f.stable_bytes < f.size
        )
        rows.append(
            Invariant(
                f"open-loop-durable[{server.name}]",
                not laggards,
                f"unstable files: {laggards}",
            )
        )
    return rows


@_check("within-ingest-envelope")
def _within_ingest_envelope(ctx, params):
    slack = params.get("slack", 1.1)
    if ctx.point is None:
        raise ConfigError("within-ingest-envelope needs a reduced fleet point")
    rows = []
    for server in _fleet_servers(ctx):
        bound = slack * server.ingest_bytes_per_sec
        rows.append(
            Invariant(
                f"within-ingest-envelope[{server.name}]",
                ctx.point.aggregate_bytes_per_sec <= bound,
                f"aggregate {ctx.point.aggregate_mbps:.1f} MBps exceeds "
                "the server's ingest rate",
            )
        )
    return rows
