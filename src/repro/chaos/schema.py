"""Scenario-file schema: a stdlib JSON-schema subset + placeholders.

Scenario files (``scenarios/*.json``) are validated against
:data:`SCENARIO_SCHEMA` before anything is built.  The validator
implements the subset of JSON Schema the scenario format needs —
``type``, ``properties``, ``required``, ``additionalProperties``,
``items``, ``enum``, ``minimum``/``maximum``/``exclusiveMinimum``,
``minItems`` and ``oneOf`` — with JSON-path error messages, so a typo'd
scenario fails loudly at load time instead of deep inside a run.

Before validation, ``{{ PLACEHOLDER }}`` markers are substituted from
environment variables (proto2testbed's ``testbed.json`` convention): a
string that is exactly one placeholder takes the variable's value
coerced to int/float/bool when it parses as one, and placeholders
embedded in longer strings substitute textually.  A placeholder with no
matching environment variable aborts the load.
"""

from __future__ import annotations

import os
import re
from typing import Any, Dict, List, Optional

from ..errors import ConfigError

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIO_SCHEMA",
    "SchemaError",
    "validate",
    "substitute_placeholders",
]

#: Version tag scenario files must carry; bump when the format changes.
SCHEMA_VERSION = 1

_PLACEHOLDER = re.compile(r"\{\{\s*([A-Za-z_][A-Za-z0-9_]*)\s*\}\}")


class SchemaError(ConfigError):
    """A scenario file that does not match the schema."""


def _coerce(raw: str) -> Any:
    """Full-string placeholder values become numbers/bools when they
    parse as one (env vars are always strings)."""
    low = raw.strip().lower()
    if low in ("true", "false"):
        return low == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def substitute_placeholders(
    node: Any, env: Optional[Dict[str, str]] = None, path: str = "$"
) -> Any:
    """Replace every ``{{ NAME }}`` in ``node`` from ``env``.

    ``env`` defaults to ``os.environ``.  Missing variables raise a
    :class:`SchemaError` naming the placeholder and its JSON path.
    """
    if env is None:
        env = dict(os.environ)
    if isinstance(node, dict):
        return {
            key: substitute_placeholders(value, env, f"{path}.{key}")
            for key, value in node.items()
        }
    if isinstance(node, list):
        return [
            substitute_placeholders(item, env, f"{path}[{i}]")
            for i, item in enumerate(node)
        ]
    if not isinstance(node, str):
        return node
    full = _PLACEHOLDER.fullmatch(node.strip())
    if full:
        name = full.group(1)
        if name not in env:
            raise SchemaError(
                f"{path}: placeholder {{{{ {name} }}}} has no matching "
                "environment variable"
            )
        return _coerce(env[name])

    def replace(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name not in env:
            raise SchemaError(
                f"{path}: placeholder {{{{ {name} }}}} has no matching "
                "environment variable"
            )
        return env[name]

    return _PLACEHOLDER.sub(replace, node)


# -- validator ----------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, type_name: str) -> bool:
    expected = _TYPES[type_name]
    if type_name in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass; schemas mean real numbers
    return isinstance(value, expected)


def validate(instance: Any, schema: Dict[str, Any], path: str = "$") -> None:
    """Check ``instance`` against the schema subset; raise on mismatch."""
    if "oneOf" in schema:
        errors: List[str] = []
        for i, alt in enumerate(schema["oneOf"]):
            try:
                validate(instance, alt, path)
                return
            except SchemaError as exc:
                errors.append(f"[{i}] {exc}")
        raise SchemaError(f"{path}: matched none of oneOf ({'; '.join(errors)})")
    type_name = schema.get("type")
    if type_name is not None:
        names = type_name if isinstance(type_name, list) else [type_name]
        if not any(_type_ok(instance, n) for n in names):
            raise SchemaError(
                f"{path}: expected {' or '.join(names)}, "
                f"got {type(instance).__name__}"
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(
            f"{path}: {instance!r} not one of {schema['enum']}"
        )
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            raise SchemaError(f"{path}: {instance} < minimum {schema['minimum']}")
        if "exclusiveMinimum" in schema and instance <= schema["exclusiveMinimum"]:
            raise SchemaError(
                f"{path}: {instance} <= exclusiveMinimum "
                f"{schema['exclusiveMinimum']}"
            )
        if "maximum" in schema and instance > schema["maximum"]:
            raise SchemaError(f"{path}: {instance} > maximum {schema['maximum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                raise SchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            unknown = sorted(set(instance) - set(properties))
            if unknown:
                raise SchemaError(
                    f"{path}: unknown key(s) {', '.join(map(repr, unknown))} "
                    f"(expected a subset of {sorted(properties)})"
                )
        for key, sub in properties.items():
            if key in instance:
                validate(instance[key], sub, f"{path}.{key}")
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            raise SchemaError(
                f"{path}: needs at least {schema['minItems']} item(s), "
                f"has {len(instance)}"
            )
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(instance):
                validate(item, items, f"{path}[{i}]")


# -- the scenario schema -------------------------------------------------------

_NONNEG = {"type": "integer", "minimum": 0}
_POS = {"type": "integer", "exclusiveMinimum": 0}
_PROB = {"type": "number", "minimum": 0, "maximum": 1}

_MOUNT_SCHEMA = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "wsize": _POS,
        "rsize": _POS,
        "nfs_version": {"type": "integer", "enum": [2, 3]},
        "timeo_ns": _POS,
        "retrans": _POS,
        "soft": {"type": "boolean"},
        "adaptive_timeo": {"type": "boolean"},
        "jukebox_delay_ns": _NONNEG,
        "readahead_pages": _NONNEG,
    },
}

_LINK_FAULT_SCHEMA = {
    "type": "object",
    "required": ["kind", "attach", "direction"],
    "additionalProperties": False,
    "properties": {
        "kind": {
            "type": "string",
            "enum": ["gilbert-elliott", "jitter", "duplicate", "drop-frames"],
        },
        #: "client" / "client<i>" / "server" / an explicit host name.
        "attach": {"type": "string"},
        "direction": {"type": "string", "enum": ["uplink", "downlink"]},
        #: RNG stream name; defaults to "<scenario>/<attach>-<direction>".
        "rng": {"type": "string"},
        "p_good_to_bad": _PROB,
        "p_bad_to_good": _PROB,
        "loss_good": _PROB,
        "loss_bad": _PROB,
        "max_jitter_ns": _NONNEG,
        "probability": _PROB,
        "lag_ns": _NONNEG,
        "indices": {"type": "array", "items": _NONNEG},
    },
}

_SERVER_EVENT_SCHEMA = {
    "type": "object",
    "required": ["op"],
    "additionalProperties": False,
    "properties": {
        "op": {
            "type": "string",
            "enum": ["pause", "crash", "restart", "jukebox"],
        },
        "server": _NONNEG,
        "at_ns": _NONNEG,
        "start_ns": _NONNEG,
        "end_ns": _NONNEG,
        "lose_drc": {"type": "boolean"},
    },
}

_CLIENT_EVENT_SCHEMA = {
    "type": "object",
    "required": ["kind", "start_ns", "end_ns"],
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string", "enum": ["slot-starvation"]},
        "client": _NONNEG,
        "start_ns": _NONNEG,
        "end_ns": _NONNEG,
        "slots": _POS,
    },
}

_PROBE_SCHEMA = {
    "type": "object",
    "required": ["kind", "at_ns"],
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string", "enum": ["stability-snapshot"]},
        "at_ns": _NONNEG,
    },
}

_SLO_SCHEMA = {
    "type": "object",
    "required": ["name", "metric", "threshold"],
    "additionalProperties": False,
    "properties": {
        "name": {"type": "string"},
        #: Objective timeline key (suffix-matched, so fleet-scoped keys
        #: fold into one objective); see repro.obs.slo.SloSpec.
        "metric": {"type": "string"},
        "threshold": {"type": "number", "minimum": 0},
        "target": {"type": "number", "exclusiveMinimum": 0, "maximum": 1},
        "burn_windows_ns": {"type": "array", "items": _POS, "minItems": 1},
        "burn_factor": {"type": "number", "exclusiveMinimum": 0},
    },
}

_CHECK_SCHEMA = {
    "type": "object",
    "required": ["kind"],
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string"},
        #: Free-form per-check parameters (e.g. {"min": 4}).
        "params": {"type": "object"},
    },
}

SCENARIO_SCHEMA = {
    "type": "object",
    # A scenario carries either a workload (chaos run) or an experiment
    # block (paper-figure replay); the spec layer enforces exactly one.
    "required": ["schema", "name", "bed"],
    "additionalProperties": False,
    "properties": {
        "schema": {"type": "string", "enum": [f"repro-nfs/scenario@{SCHEMA_VERSION}"]},
        "name": {"type": "string"},
        "description": {"type": "string"},
        "seed": _NONNEG,
        "bed": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "target": {
                    "type": "string",
                    "enum": ["netapp", "linux", "linux-100"],
                },
                "client": {"type": "string"},
                "clients": _POS,
                "mount": _MOUNT_SCHEMA,
                "loss_probability": _PROB,
                "stagger_ns": _NONNEG,
            },
        },
        "workload": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "file_bytes": _POS,
                "chunk_bytes": _POS,
                "do_fsync": {"type": "boolean"},
                "time_limit_ns": _POS,
                "expect": {"type": "string", "enum": ["complete", "eio"]},
                "name": {"type": "string"},
                "params": {"type": "object"},
            },
        },
        "arrivals": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "process": {"type": "string", "enum": ["poisson", "mmpp"]},
                "rate_per_s": {"type": "number", "exclusiveMinimum": 0},
                "duration_ns": _POS,
                "sizes": {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": {
                        "dist": {
                            "type": "string",
                            "enum": ["fixed", "lognormal", "pareto"],
                        },
                        "bytes": _POS,
                        "sigma": {"type": "number", "exclusiveMinimum": 0},
                        "alpha": {"type": "number", "exclusiveMinimum": 0},
                        "min_bytes": _POS,
                        "max_bytes": _POS,
                    },
                },
                "mix": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["workload"],
                        "additionalProperties": False,
                        "properties": {
                            "workload": {"type": "string"},
                            "weight": {
                                "type": "number",
                                "exclusiveMinimum": 0,
                            },
                            "params": {"type": "object"},
                        },
                    },
                },
                "diurnal": {
                    "type": "array",
                    "items": {"type": "number", "minimum": 0},
                },
                "burst_rate_per_s": {"type": "number", "minimum": 0},
                "mean_burst_ns": _POS,
                "mean_idle_ns": _POS,
                "max_sessions": _POS,
            },
        },
        "faults": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "link": {"type": "array", "items": _LINK_FAULT_SCHEMA},
                "server": {"type": "array", "items": _SERVER_EVENT_SCHEMA},
                "client": {"type": "array", "items": _CLIENT_EVENT_SCHEMA},
            },
        },
        #: Paper-experiment replay: a registry id plus pinned knobs.
        "experiment": {
            "type": "object",
            "required": ["id"],
            "additionalProperties": False,
            "properties": {
                "id": {"type": "string"},
                "scale": {"type": "number", "exclusiveMinimum": 0},
                "quick": {"type": "boolean"},
            },
        },
        "probes": {"type": "array", "items": _PROBE_SCHEMA},
        "checks": {"type": "array", "items": _CHECK_SCHEMA},
        #: SLO expectations: the run executes observed, each objective
        #: gates as an ``slo-<name>`` invariant row.
        "slo": {"type": "array", "items": _SLO_SCHEMA, "minItems": 1},
        #: monotone sweeps: the whole scenario re-runs per loss rate.
        "sweep": {
            "type": "object",
            "required": ["loss_rates"],
            "additionalProperties": False,
            "properties": {
                "loss_rates": {
                    "type": "array",
                    "items": _PROB,
                    "minItems": 1,
                },
            },
        },
        "expect": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "pass": {"type": "boolean"},
                "failed": {"type": "array", "items": {"type": "string"}},
                "fingerprint": {"type": "string"},
            },
        },
        #: Fuzzer bookkeeping for auto-saved regressions.
        "provenance": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "fuzz_seed": _NONNEG,
                "draw": _NONNEG,
                "shrink_steps": _NONNEG,
                "shrink_trace": {"type": "array", "items": {"type": "string"}},
            },
        },
    },
}
