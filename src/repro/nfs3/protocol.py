"""NFSv3 operations used by the sequential write workload (RFC 1813).

The model carries structured arguments/results plus accurate-enough wire
sizes; actual XDR bytes are never materialised.  ``Stable`` levels drive
the client's page lifecycle: a server that answers ``FILE_SYNC`` (the
filer, thanks to NVRAM) lets the client free pages on the WRITE reply,
while ``UNSTABLE`` replies (Linux knfsd) keep pages pinned until a
COMMIT succeeds — the paper's "additional COMMIT RPC" distinction
(§3.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..rpc.messages import RPC_CALL_HEADER, RPC_REPLY_HEADER

__all__ = [
    "Stable",
    "WriteArgs",
    "WriteResult",
    "ReadArgs",
    "ReadResult",
    "CommitArgs",
    "CommitResult",
    "CreateArgs",
    "CreateResult",
    "LookupArgs",
    "LookupResult",
    "write_call_size",
    "write_reply_size",
    "read_call_size",
    "read_reply_size",
    "commit_call_size",
    "commit_reply_size",
]

#: File handle + offset + count + stable_how on a WRITE call.
WRITE_ARGS_OVERHEAD = 96
#: wcc_data + count + committed + verf on a WRITE reply.
WRITE_RES_BYTES = 88
COMMIT_ARGS_BYTES = 84
COMMIT_RES_BYTES = 80
CREATE_ARGS_BYTES = 128
CREATE_RES_BYTES = 144


class Stable(enum.IntEnum):
    """stable_how / committed levels (RFC 1813 §3.3.7)."""

    UNSTABLE = 0
    DATA_SYNC = 1
    FILE_SYNC = 2


@dataclass
class WriteArgs:
    fileid: int
    offset: int
    count: int
    stable: Stable = Stable.UNSTABLE

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"WRITE of {self.count} bytes")
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")


@dataclass
class WriteResult:
    count: int
    committed: Stable
    verf: int = 0
    #: Post-op attribute: the file's change token after this write, so
    #: clients can keep their attribute cache coherent with their own
    #: traffic (close-to-open without spurious invalidations).
    change_id: int = 0


@dataclass
class ReadArgs:
    fileid: int
    offset: int
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"READ of {self.count} bytes")
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")


@dataclass
class ReadResult:
    count: int
    eof: bool


@dataclass
class CommitArgs:
    fileid: int
    offset: int = 0
    count: int = 0  # 0 = whole file


@dataclass
class CommitResult:
    verf: int = 0


@dataclass
class CreateArgs:
    name: str


@dataclass
class CreateResult:
    fileid: int


@dataclass
class LookupArgs:
    name: str


@dataclass
class LookupResult:
    fileid: int
    size: int
    #: Change-detection token (mtime stand-in) for close-to-open checks.
    change_id: int


def write_call_size(count: int) -> int:
    """UDP payload bytes of a WRITE call carrying ``count`` data bytes."""
    return RPC_CALL_HEADER + WRITE_ARGS_OVERHEAD + count


def write_reply_size() -> int:
    return RPC_REPLY_HEADER + WRITE_RES_BYTES


def read_call_size() -> int:
    """UDP payload bytes of a READ call (handle + offset + count)."""
    return RPC_CALL_HEADER + 92


def read_reply_size(count: int) -> int:
    """UDP payload bytes of a READ reply carrying ``count`` data bytes."""
    return RPC_REPLY_HEADER + 76 + count


def commit_call_size() -> int:
    return RPC_CALL_HEADER + COMMIT_ARGS_BYTES


def commit_reply_size() -> int:
    return RPC_REPLY_HEADER + COMMIT_RES_BYTES
