"""``python -m repro`` — the experiment CLI."""

import sys

from .experiments.cli import main

sys.exit(main())
