"""Local file system substrate (ext2 + bdflush write-back)."""

from .ext2 import Ext2File, Ext2Fs

__all__ = ["Ext2Fs", "Ext2File"]
