"""Local ext2 on the client's IDE disk.

The comparison target of Figs. 1 and 7: local memory writes are the
speed the NFS client should aspire to while memory lasts.  Writes dirty
page-cache pages at memcpy speed; a bdflush-style daemon writes dirty
pages out once the background threshold is crossed; writers throttle at
the dirty limit.  ``close()`` deliberately leaves dirty data cached —
"for many local file systems, dirty data remains in the system's data
cache after the final close()" (§2.3) — while ``fsync()`` forces it out.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

from ..config import LocalFsConfig
from ..hw import Disk
from ..kernel.pagecache import PageCache
from ..kernel.vfs import VfsFile
from ..net.host import Host
from ..sim import Event
from ..units import PAGE_SIZE, ms, seconds

__all__ = ["Ext2Fs", "Ext2File"]

#: Pages written out per write-back burst (1 MiB).
FLUSH_BATCH_PAGES = 256


class Ext2File(VfsFile):
    """An open ext2 file."""

    def __init__(self, fs: "Ext2Fs", fileid: int, name: str):
        super().__init__(fileid, name)
        self.fs = fs
        #: Pages of this file currently dirty in the cache.
        self.dirty_pages: Set[int] = set()
        #: Clean resident pages (written-back or read in).
        self.cached_pages: Set[int] = set()
        self.stable_bytes = 0

    def commit_write(self, page_index: int, offset_in_page: int, nbytes: int):
        yield from self.fs._commit_write(self, page_index, nbytes)

    def has_page(self, page_index: int) -> bool:
        return page_index in self.dirty_pages or page_index in self.cached_pages

    def readpage(self, page_index: int):
        yield from self.fs._readpages(self, page_index)

    def fsync(self):
        yield from self.fs._fsync(self)

    def release(self):
        # ext2 keeps dirty data cached past close.
        return
        yield  # pragma: no cover - generator marker


class Ext2Fs:
    """The file system plus its write-back daemon."""

    def __init__(
        self,
        host: Host,
        pagecache: PageCache,
        config: LocalFsConfig = LocalFsConfig(),
        age_limit_ns: int = seconds(30),
        wakeup_ns: int = ms(500),
    ):
        self.host = host
        self.sim = host.sim
        self.pagecache = pagecache
        self.config = config
        self.disk = Disk(
            self.sim,
            transfer_bytes_per_sec=config.disk_bytes_per_sec,
            seek_ns=config.disk_seek_ns,
            name=f"{config.name}-disk",
        )
        self._files: Dict[int, Ext2File] = {}
        self._next_fileid = 1
        #: Dirty pages in age order: (fileid, page) -> birth time.
        self._dirty: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self.age_limit_ns = age_limit_ns
        self.wakeup_ns = wakeup_ns
        self.pages_written_back = 0
        self._kick = Event(self.sim)
        pagecache.on_pressure(self._on_pressure)
        self.sim.spawn(self._bdflush(), name="bdflush", daemon=True)

    # -- files ------------------------------------------------------------------

    def open_new(self, name: str):
        """Generator: create a fresh local file (instant metadata)."""
        file = Ext2File(self, self._next_fileid, name)
        self._next_fileid += 1
        self._files[file.fileid] = file
        return file
        yield  # pragma: no cover - generator marker

    # -- write path ----------------------------------------------------------------

    def _commit_write(self, file: Ext2File, page_index: int, nbytes: int):
        cost = int(self.host.costs.ext2_page_overhead * nbytes / PAGE_SIZE)
        yield from self.host.cpus.execute(cost, label="ext2_commit_write")
        if page_index not in file.dirty_pages:
            yield from self.pagecache.charge(PAGE_SIZE)
            file.dirty_pages.add(page_index)
            self._dirty[(file.fileid, page_index)] = self.sim.now

    def _readpages(self, file: Ext2File, page_index: int, readahead: int = 32):
        """Generator: fault a page in, reading ahead sequentially."""
        total_pages = -(-file.size // PAGE_SIZE)
        npages = 0
        page = page_index
        while page < total_pages and npages < readahead and not file.has_page(page):
            npages += 1
            page += 1
        if npages == 0:
            return
        yield from self.disk.read(npages * PAGE_SIZE, sequential=True)
        for p in range(page_index, page_index + npages):
            file.cached_pages.add(p)

    def _fsync(self, file: Ext2File):
        while file.dirty_pages:
            batch = []
            for key in self._dirty:
                if key[0] == file.fileid:
                    batch.append(key)
                    if len(batch) >= FLUSH_BATCH_PAGES:
                        break
            if not batch:
                # Pages are being written back concurrently; wait a tick.
                yield self.sim.timeout(self.wakeup_ns)
                continue
            yield from self._writeback(batch)
        while file.dirty_pages:
            batch = []
            for key in self._dirty:
                if key[0] == file.fileid:
                    batch.append(key)
                    if len(batch) >= FLUSH_BATCH_PAGES:
                        break
            if not batch:
                # Pages are being written back concurrently; wait a tick.
                yield self.sim.timeout(self.wakeup_ns)
                continue
            yield from self._writeback(batch)

    # -- write-back ------------------------------------------------------------------

    def _writeback(self, keys):
        """Generator: claim ``keys``, write them out, release memory."""
        claimed = []
        for key in keys:
            if key in self._dirty:
                del self._dirty[key]
                claimed.append(key)
        if not claimed:
            return
        yield from self.disk.write(len(claimed) * PAGE_SIZE, sequential=True)
        for fileid, page_index in claimed:
            file = self._files[fileid]
            file.dirty_pages.discard(page_index)
            file.cached_pages.add(page_index)  # clean but still resident
            file.stable_bytes += PAGE_SIZE
        self.pages_written_back += len(claimed)
        self.pagecache.uncharge(len(claimed) * PAGE_SIZE)

    def _on_pressure(self) -> None:
        if not self._kick.fired:
            self._kick.trigger()

    def _aged_keys(self):
        cutoff = self.sim.now - self.age_limit_ns
        batch = []
        for key, born in self._dirty.items():
            if born > cutoff:
                break
            batch.append(key)
            if len(batch) >= FLUSH_BATCH_PAGES:
                break
        return batch

    def _bdflush(self):
        while True:
            if self.pagecache.over_background and self._dirty:
                batch = [
                    key
                    for i, key in enumerate(self._dirty)
                    if i < FLUSH_BATCH_PAGES
                ]
                yield from self._writeback(batch)
                continue
            aged = self._aged_keys()
            if aged:
                yield from self._writeback(aged)
                continue
            self._kick = Event(self.sim)
            timer = self.sim.schedule(self.wakeup_ns, self._on_pressure)
            yield self._kick
            timer.cancel()
