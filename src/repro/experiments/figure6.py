"""Figure 6: latency histograms after releasing the BKL around sends.

Paper: same 30 MB runs as Fig. 5 with the lock patch.  Max latency and
jitter clearly drop, both means improve (149→127 µs filer, 113→105 µs
Linux), minimum latency hardly changes — evidence the variation was a
lock wait, not a code-path cost.
"""

from __future__ import annotations

from ..analysis import Comparison
from ..bench import latency_histogram
from ..units import to_us
from .base import Experiment
from .figure5 import FILE_MB, run_histogram_pair

__all__ = ["Figure6"]


class Figure6(Experiment):
    id = "fig6"
    title = "Latency histogram with the send-path lock released"
    paper_ref = "Figure 6, §3.5"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        file_mb = 10 if quick else FILE_MB
        before = run_histogram_pair("hashtable", file_mb)
        after = run_histogram_pair("nolock", file_mb)

        def summarize(runs):
            out = {}
            for target, (_bed, result) in runs.items():
                trace = result.trace
                out[target] = {
                    "mean_us": to_us(trace.mean_ns(skip_first=1)),
                    "max_us": to_us(trace.max_ns(skip_first=1)),
                    "min_us": to_us(trace.min_ns()),
                    "jitter_us": trace.jitter_ns() / 1000,
                    "hist": latency_histogram(trace.latencies_ns),
                }
            return out

        b, a = summarize(before), summarize(after)
        data.update(before=b, after=a)

        for target, paper_means in (("netapp", "149 -> 127 us"), ("linux", "113 -> 105 us")):
            comparison.add(
                f"mean latency drops with the lock fix ({target})",
                a[target]["mean_us"] < b[target]["mean_us"],
                paper=paper_means,
                measured=f"{b[target]['mean_us']:.1f} -> {a[target]['mean_us']:.1f} us",
            )
        comparison.add(
            "maximum latency drops (filer)",
            a["netapp"]["max_us"] < b["netapp"]["max_us"],
            paper="381 -> 292 us",
            measured=f"{b['netapp']['max_us']:.0f} -> {a['netapp']['max_us']:.0f} us",
        )
        for target in ("netapp", "linux"):
            comparison.add(
                f"jitter clearly reduced ({target})",
                a[target]["jitter_us"] < 0.7 * b[target]["jitter_us"],
                paper="maximum latency and jitter clearly reduced",
                measured=f"{b[target]['jitter_us']:.1f} -> "
                f"{a[target]['jitter_us']:.1f} us",
            )
            comparison.add(
                f"minimum latency roughly unchanged ({target})",
                abs(a[target]["min_us"] - b[target]["min_us"])
                <= 0.25 * b[target]["min_us"],
                paper="minimum latency remains roughly the same",
                measured=f"{b[target]['min_us']:.1f} -> "
                f"{a[target]['min_us']:.1f} us",
            )
        comparison.add(
            "filer writes still slightly slower than Linux, gap small",
            a["netapp"]["mean_us"] >= a["linux"]["mean_us"]
            and a["netapp"]["mean_us"] <= 1.3 * a["linux"]["mean_us"],
            paper="filer writes still take longer; the difference is small",
            measured=f"{a['netapp']['mean_us']:.1f} vs "
            f"{a['linux']['mean_us']:.1f} us",
        )

        return (
            f"{file_mb} MB runs.\n"
            + a["netapp"]["hist"].render("netapp (lock released)")
            + "\nlatency variation was lock contention, not code path: "
            f"min stayed ~{a['netapp']['min_us']:.0f} us while max fell "
            f"{b['netapp']['max_us']:.0f} -> {a['netapp']['max_us']:.0f} us."
        )
