"""Figure 1: Local vs NFS write throughput, stock 2.4.4 client.

Paper: test files 25-450 MB on a 256 MB client.  Local ext2 shows a
large memory-write peak that NFS files never reach — "NFS memory write
throughput remains constrained to network/server throughput".
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis import Comparison, mean, stddev
from ..parallel import JobSpec
from ..units import MB
from .base import ExecutionContext, Experiment, format_table, scaled_configs

__all__ = ["Figure1"]

#: Paper file sizes (MB), scaled down by the run's scale factor.
PAPER_SIZES_MB = list(range(25, 451, 25))

#: The three systems under test of Figs. 1 and 7.
SWEEP_TARGETS = ("local", "netapp", "linux")


def sweep_sizes(scale: float, quick: bool):
    sizes = PAPER_SIZES_MB[:: 3 if quick else 2]
    if quick:
        sizes = sizes[:5]
    return [max(2, round(s / scale)) for s in sizes]


def sweep_specs(client_variant: str, scale: float, quick: bool):
    """The (target x size) JobSpec grid of one Fig. 1/7-style sweep."""
    hw, filer = scaled_configs(scale)
    sizes_mb = sweep_sizes(scale, quick)
    specs = [
        JobSpec(
            target=target,
            client=client_variant,
            file_bytes=size_mb * MB,
            hw=hw,
            # The scaled filer config only applies to the netapp target;
            # passing it elsewhere is now a ConfigError instead of a
            # silent no-op.
            filer_config=filer if target == "netapp" else None,
        )
        for target in SWEEP_TARGETS
        for size_mb in sizes_mb
    ]
    return sizes_mb, specs


def run_sweep(
    client_variant: str,
    scale: float,
    quick: bool,
    context: Optional[ExecutionContext] = None,
) -> Dict[str, list]:
    """One Fig. 1/7-style sweep.  Returns per-target MBps curves.

    Points run through the ``context``'s :class:`SweepExecutor` —
    serial, pooled, or cache-served, all numerically identical.
    """
    sizes_mb, specs = sweep_specs(client_variant, scale, quick)
    results = (context or ExecutionContext()).executor().map(specs)
    curves: Dict[str, list] = {"sizes_mb": sizes_mb}
    for t, target in enumerate(SWEEP_TARGETS):
        offset = t * len(sizes_mb)
        curves[target] = [
            r.write_mbps for r in results[offset : offset + len(sizes_mb)]
        ]
    return curves


class Figure1(Experiment):
    id = "fig1"
    title = "Local vs NFS write throughput (stock client)"
    paper_ref = "Figure 1, §3.2"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        curves = run_sweep("stock", scale, quick, context=self.context)
        data.update(curves)
        hw, _ = scaled_configs(scale)
        dirty_limit_mb = hw.dirty_limit_bytes / 1e6

        local, netapp, linux = curves["local"], curves["netapp"], curves["linux"]
        sizes = curves["sizes_mb"]
        local_peak = max(local)
        nfs_peak = max(max(netapp), max(linux))

        comparison.add(
            "local memory-write peak dwarfs NFS",
            local_peak >= 3 * nfs_peak,
            paper="~190 vs ~28 MBps (6.8x)",
            measured=f"{local_peak:.0f} vs {nfs_peak:.0f} MBps "
            f"({local_peak / nfs_peak:.1f}x)",
        )
        for name, curve, paper_rate in (("netapp", netapp, 38.0), ("linux", linux, 26.0)):
            # Skip the smallest file: it finishes before the flush/commit
            # pipeline reaches steady state (a warm-up transient).
            steady = curve[1:] if len(curve) > 2 else curve
            flatness = stddev(steady) / mean(steady) if mean(steady) else 1.0
            comparison.add(
                f"NFS curve flat across file sizes ({name})",
                flatness < 0.25,
                paper="no memory peak for NFS files",
                measured=f"cv={flatness:.2f} over {sizes[1]}-{sizes[-1]} MB",
            )
            comparison.add(
                f"NFS throughput pinned to server speed ({name})",
                0.4 * paper_rate <= mean(curve) <= 1.4 * paper_rate,
                paper=f"~{paper_rate:.0f} MBps network throughput",
                measured=f"{mean(curve):.1f} MBps mean",
            )
        big = [t for s, t in zip(sizes, local) if s * 1.0 > dirty_limit_mb * 1.3]
        if big:
            comparison.add(
                "local throughput collapses past client memory",
                min(big) < 0.4 * local_peak,
                paper="local curve falls off beyond RAM",
                measured=f"{min(big):.0f} vs peak {local_peak:.0f} MBps",
            )

        rows = list(zip(sizes, local, netapp, linux))
        table = format_table(["size MB", "local ext2", "netapp", "linux nfsd"], rows)
        return (
            f"Client memory scaled 1/{scale:g} (dirty limit "
            f"{dirty_limit_mb:.0f} MB); sizes scaled to match.\n" + table
        )
