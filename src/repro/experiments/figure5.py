"""Figure 5: latency histograms against two servers — the paradox.

Paper: 30 MB runs with the improved (hash-table) client, BKL still held
over sends.  Both distributions share a minimum, but the *faster*
server (the filer) produces more slow calls — the client buffers writes
more efficiently against a slow server.  §3.5 confirms with a 100 Mbps
server that memory writes get faster still, and profiling shows the
kernel-lock section among the top CPU consumers.
"""

from __future__ import annotations

from ..analysis import Comparison
from ..bench import TestBed, latency_histogram
from ..units import MB, to_us, us
from .base import Experiment

__all__ = ["Figure5", "run_histogram_pair"]

FILE_MB = 30


def run_histogram_pair(variant: str, file_mb: int, profile: bool = False):
    """30 MB runs against the filer and the Linux server.

    Returns {target: (TestBed, BenchmarkResult)}.
    """
    out = {}
    for target in ("netapp", "linux"):
        bed = TestBed(target=target, client=variant, profile=profile)
        result = bed.run_sequential_write(file_mb * MB)
        out[target] = (bed, result)
    return out


class Figure5(Experiment):
    id = "fig5"
    title = "Latency histogram, BKL held: faster server, slower writes"
    paper_ref = "Figure 5, §3.5"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        file_mb = 10 if quick else FILE_MB
        runs = run_histogram_pair("hashtable", file_mb, profile=True)
        stats = {}
        for target, (bed, result) in runs.items():
            trace = result.trace
            stats[target] = {
                "mean_us": to_us(trace.mean_ns(skip_first=1)),
                "min_us": to_us(trace.min_ns()),
                "max_us": to_us(trace.max_ns(skip_first=1)),
                "tail": trace.count_above(us(90)) / max(1, len(trace)),
                "mbps": result.write_mbps,
                "hist": latency_histogram(trace.latencies_ns),
                "bkl_wait_ms": bed.nfs.bkl.stats.total_wait_ns / 1e6,
                "profile_top": bed.profiler.top(8),
            }
        filer, linux = stats["netapp"], stats["linux"]

        # The 100 Mbps verification runs inline with the figure.
        slow_bed = TestBed(target="linux-100", client="hashtable")
        slow_result = slow_bed.run_sequential_write(file_mb * MB)
        data.update(stats=stats, slow_server_mbps=slow_result.write_mbps)

        comparison.add(
            "filer (faster server) writes have the higher mean latency",
            filer["mean_us"] > linux["mean_us"],
            paper="filer run has more slow calls than the Linux run",
            measured=f"{filer['mean_us']:.1f} vs {linux['mean_us']:.1f} us",
        )
        comparison.add(
            "minimum latency about the same on both servers",
            abs(filer["min_us"] - linux["min_us"]) <= 0.25 * max(filer["min_us"], linux["min_us"]),
            paper="both runs share the same minimum",
            measured=f"{filer['min_us']:.1f} vs {linux['min_us']:.1f} us",
        )
        comparison.add(
            "filer histogram has the fatter slow tail",
            filer["tail"] > linux["tail"],
            paper="more slow calls for the filer run",
            measured=f"tail>90us: {100 * filer['tail']:.1f}% vs "
            f"{100 * linux['tail']:.1f}%",
        )
        comparison.add(
            "memory writes faster against the slower gigabit server",
            linux["mbps"] > filer["mbps"],
            paper="115 MBps (filer) vs 138 MBps (Linux)",
            measured=f"{filer['mbps']:.0f} vs {linux['mbps']:.0f} MBps",
        )
        comparison.add(
            "100 Mbps server faster still (slow-server paradox)",
            slow_result.write_mbps > linux["mbps"],
            paper="writes to memory even faster with <10 MBps server",
            measured=f"{slow_result.write_mbps:.0f} MBps vs "
            f"{linux['mbps']:.0f} MBps (gigabit Linux)",
        )
        comparison.add(
            "client waits on the kernel lock more against the filer",
            filer["bkl_wait_ms"] > linux["bkl_wait_ms"],
            paper="lock section 4th largest CPU consumer; contention "
            "behind the filer's extra latency",
            measured=f"BKL wait {filer['bkl_wait_ms']:.1f} vs "
            f"{linux['bkl_wait_ms']:.1f} ms",
        )

        hist_text = stats["netapp"]["hist"].render("netapp (BKL held)")
        return (
            f"{file_mb} MB runs, hash-table client, stock locking.\n"
            f"{hist_text}\n"
            f"linux mean {linux['mean_us']:.1f} us / filer mean "
            f"{filer['mean_us']:.1f} us; 100 Mbps server: "
            f"{slow_result.write_mbps:.0f} MBps memory writes."
        )
