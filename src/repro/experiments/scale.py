"""Scale: the fleet sweep pushed to 1,024 clients.

Two failure modes hide above the 32-client range the ``fleet``
experiment covers, and they live on opposite sides of the stack:

* **Server-side collapse.**  Every client that joins adds its share of
  WRITE backlog to the server's FIFO ingest queue.  Once the queue
  delay crosses the RPC retransmit timeout (``timeo``), clients start
  resending requests the server has merely not answered yet, and the
  duplicates consume ingest the originals already paid for — aggregate
  throughput *falls* below the server bound instead of pinning to it.
  The knfsd, which must push every COMMIT through its single disk,
  diverges further than the filer (whose NVRAM absorbs commits): its
  per-client ingest shares spread measurably wider at 1,024 clients.
  Client-side Jain stays ≈ 1 through all of it — writes absorb into
  each client's page cache at memory speed, so the client-side index
  is blind to a server melting down symmetrically.

* **Client-side fairness collapse.**  With skewed arrivals (a fixed
  stagger between client starts) and files big enough for cache
  pressure to couple write() to the shared server, early clients run
  at near memory speed while late arrivals find a fully backlogged
  server.  The FIFO is instantaneously fair — equal ingest shares —
  but lifetime throughput is not, and Jain's index collapses, deeper
  the larger the fleet.

Both sweeps reuse the cached parallel executor, so ``--jobs``/warm
caches apply; the sharded parallel-DES runner reproduces every one of
these points bit-identically (``tests/parallel/test_des.py``).
"""

from __future__ import annotations

from typing import List

from ..analysis import Comparison
from ..analysis.stats import knee_point
from ..topology import FleetJobSpec
from ..units import KIB, MIB, ms
from .base import Experiment, format_table
from .fleet import TARGET_BOUNDS

__all__ = ["Scale"]

#: Client counts for the ingest-at-scale sweep (fixed file size, so
#: server queue delay grows linearly with the count).
FULL_COUNTS = (1, 8, 64, 256, 1024)
QUICK_COUNTS = (1, 8, 64)

#: Per-client file size for the scale sweep: small enough that a
#: 1,024-client point stays tractable, large enough to keep the
#: server's queue saturated while the fleet drains.
SCALE_FILE_BYTES = 128 * KIB

#: Arrival-skew sweep: cache-pressure files, fixed start stagger.
SKEW_COUNTS = (2, 8, 32)
QUICK_SKEW_COUNTS = (2, 8)
SKEW_FILE_BYTES = 1 * MIB
SKEW_STAGGER_NS = ms(5)

#: Below this, client-side fairness has collapsed (equal clients would
#: each score 1/sqrt(n) of this at total starvation of one half).
JAIN_COLLAPSE = 0.5

#: Aggregate below this fraction of the server bound marks the
#: retransmit-waste regime; within [PIN_LO, PIN_HI] it is pinned.
COLLAPSE_FRACTION = 0.75
PIN_LO, PIN_HI = 0.8, 1.1


class Scale(Experiment):
    id = "scale"
    title = "Fleet scale: ingest collapse and fairness collapse at 1,024 clients"
    paper_ref = "§3.2/§3.5 extrapolated"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        counts = QUICK_COUNTS if quick else FULL_COUNTS
        skew_counts = QUICK_SKEW_COUNTS if quick else SKEW_COUNTS
        targets = sorted(TARGET_BOUNDS)

        specs = [
            FleetJobSpec.homogeneous(
                count, target=target, file_bytes=SCALE_FILE_BYTES
            )
            for target in targets
            for count in counts
        ] + [
            FleetJobSpec.homogeneous(
                count,
                target="netapp",
                file_bytes=SKEW_FILE_BYTES,
                stagger_ns=SKEW_STAGGER_NS,
            )
            for count in skew_counts
        ]
        results = self.context.executor().map(specs)

        data["counts"] = list(counts)
        rows: List[tuple] = []
        spreads = {}
        knees = {}
        for t, target in enumerate(targets):
            points = results[t * len(counts) : (t + 1) * len(counts)]
            aggregate = [p.aggregate_mbps for p in points]
            fairness = [p.fairness for p in points]
            spread = []
            for p in points:
                shares = sorted(p.servers[0]["ingest_shares"].values())
                spread.append(shares[-1] / shares[0] if shares[0] else 1.0)
            spreads[target] = spread
            # Latency-vs-clients: the fleet's completion latency bends
            # where the server's ingest queue starts charging each new
            # client the full serial drain time (and again, harder,
            # where retransmit waste sets in at the full-scale counts).
            completion_ms = [p.span_ns / 1e6 for p in points]
            knee = knee_point(list(counts), completion_ms)
            knees[target] = counts[knee] if knee is not None else None
            data[f"{target}_aggregate_mbps"] = aggregate
            data[f"{target}_jain"] = fairness
            data[f"{target}_share_spread"] = spread
            data[f"{target}_completion_ms"] = completion_ms
            for count, agg, jain, spr in zip(counts, aggregate, fairness, spread):
                rows.append((target, count, agg, jain, spr))

            bound = TARGET_BOUNDS[target]
            pinned = [
                count
                for count, agg in zip(counts, aggregate)
                if count <= 256 and not (PIN_LO * bound <= agg <= PIN_HI * bound)
            ]
            comparison.add(
                f"aggregate pinned to the server bound through 256 clients ({target})",
                not pinned,
                paper=f"~{bound:.0f} MBps bound independent of client count",
                measured=f"off-bound counts: {pinned or 'none'}",
            )
            comparison.add(
                f"client-side Jain is blind to server overload ({target})",
                min(fairness) >= 0.95,
                paper="writes absorb into each client's own page cache",
                measured=f"Jain min {min(fairness):.4f} across the sweep",
            )
            if not quick:
                collapsed = [
                    count
                    for count, agg in zip(counts, aggregate)
                    if agg < COLLAPSE_FRACTION * bound
                ]
                comparison.add(
                    f"retransmit waste collapses aggregate at scale ({target})",
                    bool(collapsed) and min(collapsed) > 256,
                    paper="queue delay crosses timeo; duplicates burn ingest",
                    measured=f"first collapsed count: "
                    f"{min(collapsed) if collapsed else 'none'} "
                    f"({aggregate[-1]:.1f} MBps at {counts[-1]})",
                )
        if not quick:
            comparison.add(
                "knfsd ingest fairness diverges further than the filer's",
                spreads["linux"][-1] > spreads["netapp"][-1] > 1.0,
                paper="NVRAM absorbs commits; the lone disk serialises them",
                measured=f"share spread at {counts[-1]} clients: knfsd "
                f"{spreads['linux'][-1]:.3f}x vs filer "
                f"{spreads['netapp'][-1]:.3f}x",
            )

        data["knee_clients"] = knees
        comparison.add(
            "latency-vs-clients knee detected on every completion curve",
            all(k is not None for k in knees.values()),
            paper="latency bends where the server's ingest saturates",
            measured=", ".join(
                f"{t} at {knees[t]}" for t in sorted(knees)
            ),
        )

        skew_points = results[len(targets) * len(counts) :]
        skew_jain = [p.fairness for p in skew_points]
        data["skew_counts"] = list(skew_counts)
        data["skew_jain"] = skew_jain
        data["skew_aggregate_mbps"] = [p.aggregate_mbps for p in skew_points]
        for count, p in zip(skew_counts, skew_points):
            rows.append(("netapp+skew", count, p.aggregate_mbps, p.fairness, 1.0))

        comparison.add(
            "arrival skew sends Jain's index into collapse, deeper with size",
            all(a > b for a, b in zip(skew_jain, skew_jain[1:])),
            paper="late arrivals inherit the whole fleet's backlog",
            measured=" -> ".join(f"{j:.3f}" for j in skew_jain),
        )
        collapsed_at = [c for c, j in zip(skew_counts, skew_jain) if j < JAIN_COLLAPSE]
        comparison.add(
            f"fairness collapse located (Jain < {JAIN_COLLAPSE})",
            bool(collapsed_at),
            paper="FIFO is instantaneously fair, not lifetime fair",
            measured=f"first collapsed fleet size: "
            f"{min(collapsed_at) if collapsed_at else 'none'}",
        )
        comparison.add(
            "the server bound is indifferent to the fairness collapse",
            all(
                0.8 * TARGET_BOUNDS["netapp"]
                <= p.aggregate_mbps
                <= 1.1 * TARGET_BOUNDS["netapp"]
                for p in skew_points
            ),
            paper="aggregate pins to ingest rate regardless of who gets it",
            measured=f"aggregate {min(p.aggregate_mbps for p in skew_points):.1f}"
            f"-{max(p.aggregate_mbps for p in skew_points):.1f} MBps",
        )

        table = format_table(
            ["sweep", "clients", "aggregate MBps", "Jain", "share spread"],
            rows,
            precision=4,
        )
        return (
            f"Scale sweep: {SCALE_FILE_BYTES // KIB} KiB per client, "
            "synchronized starts.  Skew sweep: "
            f"{SKEW_FILE_BYTES // KIB} KiB per client, "
            f"{SKEW_STAGGER_NS // 1_000_000} ms start stagger.\n" + table
        )
