"""Figure 7: Local vs NFS write throughput with the enhanced client.

Paper: the 25-450 MB sweep re-run with all three fixes.  NFS memory
writes now rival local ext2 while memory lasts; past client RAM the
curves drop to each server's network throughput — except that the filer
"sustains high data throughput longer", its NVRAM acting as an
extension of the client's page cache (§3.6).
"""

from __future__ import annotations

from ..analysis import Comparison
from ..units import MB
from .base import Experiment, format_table, scaled_configs
from .figure1 import run_sweep

__all__ = ["Figure7"]


class Figure7(Experiment):
    id = "fig7"
    title = "Local vs NFS write throughput (enhanced client)"
    paper_ref = "Figure 7, §3.6"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        curves = run_sweep("enhanced", scale, quick, context=self.context)
        data.update(curves)
        hw, filer_cfg = scaled_configs(scale)
        dirty_limit_mb = hw.dirty_limit_bytes / 1e6
        nvram_mb = filer_cfg.nvram_bytes / 1e6

        sizes = curves["sizes_mb"]
        local, netapp, linux = curves["local"], curves["netapp"], curves["linux"]
        small = [i for i, s in enumerate(sizes) if s <= 0.8 * dirty_limit_mb]
        beyond = [i for i, s in enumerate(sizes) if s >= 1.6 * dirty_limit_mb]

        if small:
            i = small[-1]
            comparison.add(
                "NFS memory writes approach local speed while memory lasts",
                netapp[i] >= 0.5 * local[i] and linux[i] >= 0.5 * local[i],
                paper="~140-147 vs ~190 MBps",
                measured=f"local {local[i]:.0f} / netapp {netapp[i]:.0f} / "
                f"linux {linux[i]:.0f} MBps at {sizes[i]} MB",
            )
            comparison.add(
                "max memory write throughput nearly equal on both servers",
                abs(netapp[i] - linux[i]) <= 0.25 * max(netapp[i], linux[i]),
                paper="within ~7 MBps of each other",
                measured=f"{netapp[i]:.0f} vs {linux[i]:.0f} MBps",
            )

        # The NVRAM sustain: sizes clearly past the client's dirty limit
        # but within reach of client memory + filer NVRAM.
        sustain = [
            i
            for i, s in enumerate(sizes)
            if dirty_limit_mb * 1.05 < s <= (dirty_limit_mb + nvram_mb) * 1.3
        ]
        if sustain:
            best = max(sustain, key=lambda i: netapp[i] / max(linux[i], 0.1))
            comparison.add(
                "filer sustains high throughput past client memory (NVRAM)",
                netapp[best] >= 2 * linux[best],
                paper="filer keeps near-memory speed; the Linux server "
                "trails off immediately",
                measured=f"at {sizes[best]} MB: netapp {netapp[best]:.0f} vs "
                f"linux {linux[best]:.0f} MBps (local {local[best]:.0f})",
            )
        if beyond:
            tail_netapp = sum(netapp[i] for i in beyond) / len(beyond)
            tail_linux = sum(linux[i] for i in beyond) / len(beyond)
            tail_local = sum(local[i] for i in beyond) / len(beyond)
            comparison.add(
                "far beyond memory, the filer's throughput wins",
                tail_netapp > tail_linux and tail_netapp > tail_local,
                paper="'the filer sustains greater network write "
                "throughput than the Linux NFS server can' (§3.6)",
                measured=f"netapp {tail_netapp:.0f} vs linux {tail_linux:.0f} "
                f"vs local {tail_local:.0f} MBps",
            )
        # Improvement over Figure 1 is implied by fig4's speedup check;
        # here verify NFS peaks are no longer network-bound.
        comparison.add(
            "NFS throughput no longer tracks network throughput",
            max(netapp) >= 2.5 * 38 and max(linux) >= 2.5 * 26,
            paper="write performance no longer limited to network/server speeds",
            measured=f"netapp peak {max(netapp):.0f} MBps (net 38), "
            f"linux peak {max(linux):.0f} MBps (net 26)",
        )

        rows = list(zip(sizes, local, netapp, linux))
        table = format_table(["size MB", "local ext2", "netapp", "linux nfsd"], rows)
        return (
            f"Client memory scaled 1/{scale:g} (dirty limit "
            f"{dirty_limit_mb:.0f} MB, filer NVRAM {nvram_mb:.0f} MB).\n"
            + table
        )
